//! Parser robustness: arbitrary input must never panic — it either
//! parses or returns a clean error — and valid query skeletons always
//! parse.

use cbqt_sql::{parse_expression, parse_query, parse_statements};
use cbqt_testkit::prop::{
    adversarial_string, any_bool, just, string_of, vec_of, Strategy, ALPHA_LOWER,
};
use cbqt_testkit::{one_of, props};

props! {
    #[cases(256)]
    fn arbitrary_bytes_never_panic(s in adversarial_string(0..=120)) {
        let _ = parse_statements(&s);
        let _ = parse_query(&s);
        let _ = parse_expression(&s);
    }

    #[cases(256)]
    fn sqlish_token_soup_never_panics(
        toks in vec_of(
            one_of![
                just("SELECT"), just("FROM"), just("WHERE"), just("GROUP"), just("BY"),
                just("AND"), just("OR"), just("NOT"), just("IN"), just("EXISTS"),
                just("("), just(")"), just(","), just("="), just("<"), just(">"),
                just("*"), just("+"), just("-"), just("t"), just("a"), just("b"),
                just("1"), just("2.5"), just("'s'"), just("NULL"), just("UNION"),
                just("ALL"), just("ORDER"), just("HAVING"), just("AS"), just("JOIN"),
                just("ON"), just("LEFT"), just("BETWEEN"), just("LIKE"), just("CASE"),
                just("WHEN"), just("THEN"), just("END"), just("DISTINCT"),
            ],
            0..=24,
        )
    ) {
        let s = toks.join(" ");
        let _ = parse_statements(&s);
    }

    fn generated_selects_parse(
        cols in vec_of(string_of(ALPHA_LOWER, 1..=6).prop_map(|s| format!("c_{s}")), 1..=3),
        tbl in string_of(ALPHA_LOWER, 1..=8).prop_map(|s| format!("t_{s}")),
        lit in -1000i64..1000,
        distinct in any_bool(),
        order in any_bool(),
    ) {
        let sql = format!(
            "SELECT {}{} FROM {tbl} WHERE {} > {lit}{}",
            if distinct { "DISTINCT " } else { "" },
            cols.join(", "),
            cols[0],
            if order { format!(" ORDER BY {} DESC", cols[0]) } else { String::new() },
        );
        parse_query(&sql).unwrap();
    }

    fn numeric_literals_roundtrip(v in -1_000_000_000i64..1_000_000_000) {
        let e = parse_expression(&v.to_string()).unwrap();
        match e {
            cbqt_sql::ast::Expr::Literal(cbqt_common::Value::Int(i)) => assert_eq!(i, v),
            other => panic!("unexpected {other:?}"),
        }
    }

    fn string_literals_with_quotes_roundtrip(s in string_of("abcdefghijklmnopqrstuvwxyz' ", 0..=20)) {
        let quoted = format!("'{}'", s.replace('\'', "''"));
        let e = parse_expression(&quoted).unwrap();
        match e {
            cbqt_sql::ast::Expr::Literal(v) => {
                assert_eq!(v.as_str().unwrap(), s.as_str());
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
