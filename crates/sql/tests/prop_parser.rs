//! Parser robustness: arbitrary input must never panic — it either
//! parses or returns a clean error — and valid query skeletons always
//! parse.

use cbqt_sql::{parse_expression, parse_query, parse_statements};
use proptest::prelude::*;

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic(s in "\\PC{0,120}") {
        let _ = parse_statements(&s);
        let _ = parse_query(&s);
        let _ = parse_expression(&s);
    }

    #[test]
    fn sqlish_token_soup_never_panics(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("GROUP"), Just("BY"),
                Just("AND"), Just("OR"), Just("NOT"), Just("IN"), Just("EXISTS"),
                Just("("), Just(")"), Just(","), Just("="), Just("<"), Just(">"),
                Just("*"), Just("+"), Just("-"), Just("t"), Just("a"), Just("b"),
                Just("1"), Just("2.5"), Just("'s'"), Just("NULL"), Just("UNION"),
                Just("ALL"), Just("ORDER"), Just("HAVING"), Just("AS"), Just("JOIN"),
                Just("ON"), Just("LEFT"), Just("BETWEEN"), Just("LIKE"), Just("CASE"),
                Just("WHEN"), Just("THEN"), Just("END"), Just("DISTINCT"),
            ],
            0..24,
        )
    ) {
        let s = toks.join(" ");
        let _ = parse_statements(&s);
    }

    #[test]
    fn generated_selects_parse(
        cols in proptest::collection::vec("c_[a-z]{1,6}", 1..4),
        tbl in "t_[a-z]{1,8}",
        lit in -1000i64..1000,
        distinct in any::<bool>(),
        order in any::<bool>(),
    ) {
        let sql = format!(
            "SELECT {}{} FROM {tbl} WHERE {} > {lit}{}",
            if distinct { "DISTINCT " } else { "" },
            cols.join(", "),
            cols[0],
            if order { format!(" ORDER BY {} DESC", cols[0]) } else { String::new() },
        );
        parse_query(&sql).unwrap();
    }

    #[test]
    fn numeric_literals_roundtrip(v in -1_000_000_000i64..1_000_000_000) {
        let e = parse_expression(&v.to_string()).unwrap();
        match e {
            cbqt_sql::ast::Expr::Literal(cbqt_common::Value::Int(i)) => prop_assert_eq!(i, v),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn string_literals_with_quotes_roundtrip(s in "[a-z' ]{0,20}") {
        let quoted = format!("'{}'", s.replace('\'', "''"));
        let e = parse_expression(&quoted).unwrap();
        match e {
            cbqt_sql::ast::Expr::Literal(v) => {
                prop_assert_eq!(v.as_str().unwrap(), s.as_str());
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }
}
