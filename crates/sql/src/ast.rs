//! Abstract syntax tree for the supported SQL dialect.
//!
//! The AST is deliberately close to SQL text (it is *declarative*, like
//! the paper's query trees); all normalization happens when the AST is
//! lowered into the query-graph model in `cbqt-qgm`.

use cbqt_common::value::Value;
use std::fmt;

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Query(Box<Query>),
    CreateTable(CreateTable),
    CreateIndex(CreateIndex),
    Insert(Insert),
    /// `EXPLAIN [ANALYZE] <query>` — show transformation decisions and
    /// the plan; with ANALYZE, execute the query and interleave actual
    /// per-operator row counts with the estimates.
    Explain {
        query: Box<Query>,
        analyze: bool,
    },
    /// `ANALYZE` — recompute optimizer statistics for all tables.
    Analyze,
    Update(Update),
    Delete(Delete),
    /// `BEGIN [TRANSACTION]` — open an explicit transaction.
    Begin,
    /// `COMMIT` — publish the open transaction.
    Commit,
    /// `ROLLBACK` — discard the open transaction.
    Rollback,
}

/// A query expression plus its (outermost) ORDER BY.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub body: SetExpr,
    pub order_by: Vec<OrderItem>,
}

/// Body of a query: a plain SELECT or a set operation tree.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    Select(Box<Select>),
    SetOp {
        op: SetOp,
        left: Box<SetExpr>,
        right: Box<SetExpr>,
    },
}

/// SQL set operators. `Union`/`Intersect`/`Minus` are duplicate-free;
/// `UnionAll` preserves duplicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOp {
    UnionAll,
    Union,
    Intersect,
    Minus,
}

impl fmt::Display for SetOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetOp::UnionAll => write!(f, "UNION ALL"),
            SetOp::Union => write!(f, "UNION"),
            SetOp::Intersect => write!(f, "INTERSECT"),
            SetOp::Minus => write!(f, "MINUS"),
        }
    }
}

/// A single SELECT query block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Option<GroupBy>,
    pub having: Option<Expr>,
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// GROUP BY clause; `rollup` corresponds to `GROUP BY ROLLUP (...)`,
/// which expands into grouping sets and is the target of the paper's
/// *group pruning* transformation (§2.1.4).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupBy {
    pub rollup: bool,
    pub exprs: Vec<Expr>,
}

/// A FROM-clause table reference.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Table {
        name: String,
        alias: Option<String>,
    },
    /// Inline view (derived table).
    Derived {
        query: Box<Query>,
        alias: String,
    },
    /// ANSI join syntax.
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        on: Option<Expr>,
    },
}

impl TableRef {
    /// The alias (or base name) this reference is known by, when it has
    /// one ("join" nodes do not).
    pub fn binding_name(&self) -> Option<&str> {
        match self {
            TableRef::Table { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Derived { alias, .. } => Some(alias),
            TableRef::Join { .. } => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    LeftOuter,
    RightOuter,
    Cross,
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
    /// NULLS FIRST/LAST; `None` means the dialect default (nulls last for
    /// ascending, first for descending — Oracle's behaviour).
    pub nulls_first: Option<bool>,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Concat,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Concat => "||",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
}

/// Quantifier for `expr op ANY/ALL (subquery)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quant {
    Any,
    All,
}

/// Window specification for `fn(...) OVER (...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSpec {
    pub partition_by: Vec<Expr>,
    pub order_by: Vec<OrderItem>,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Literal(Value),
    /// Positional bind parameter (`?` in SQL text, or a literal site
    /// extracted by [`crate::binds::parameterize`]). The slot indexes
    /// into the statement's bind vector, assigned left-to-right.
    Param(usize),
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Unary {
        op: UnOp,
        expr: Box<Expr>,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `(a[, b...]) [NOT] IN (subquery)`
    InSubquery {
        exprs: Vec<Expr>,
        query: Box<Query>,
        negated: bool,
    },
    Exists {
        query: Box<Query>,
        negated: bool,
    },
    /// `a op ANY|ALL (subquery)`
    Quantified {
        op: BinOp,
        quant: Quant,
        left: Box<Expr>,
        query: Box<Query>,
    },
    ScalarSubquery(Box<Query>),
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    /// Function call: aggregate, scalar, or windowed.
    Func {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
        window: Option<WindowSpec>,
    },
    /// Oracle ROWNUM pseudo-column.
    Rownum,
}

/// SQL-ish rendering, used in error messages (subquery bodies are
/// abbreviated to `(subquery)`).
impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn list(f: &mut fmt::Formatter<'_>, items: &[Expr]) -> fmt::Result {
            for (i, e) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
            Ok(())
        }
        let not = |negated: &bool| if *negated { "NOT " } else { "" };
        match self {
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Param(i) => write!(f, "?{i}"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Unary { op, expr } => match op {
                UnOp::Neg => write!(f, "-{expr}"),
                UnOp::Not => write!(f, "NOT {expr}"),
            },
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", not(negated))
            }
            Expr::InList {
                expr,
                list: items,
                negated,
            } => {
                write!(f, "{expr} {}IN (", not(negated))?;
                list(f, items)?;
                write!(f, ")")
            }
            Expr::InSubquery { exprs, negated, .. } => {
                if let [single] = exprs.as_slice() {
                    write!(f, "{single} {}IN (subquery)", not(negated))
                } else {
                    write!(f, "(")?;
                    list(f, exprs)?;
                    write!(f, ") {}IN (subquery)", not(negated))
                }
            }
            Expr::Exists { negated, .. } => {
                write!(f, "{}EXISTS (subquery)", not(negated))
            }
            Expr::Quantified {
                op, quant, left, ..
            } => {
                let q = match quant {
                    Quant::Any => "ANY",
                    Quant::All => "ALL",
                };
                write!(f, "{left} {op} {q} (subquery)")
            }
            Expr::ScalarSubquery(_) => write!(f, "(subquery)"),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(f, "{expr} {}BETWEEN {low} AND {high}", not(negated)),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(f, "{expr} {}LIKE {pattern}", not(negated)),
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                write!(f, "CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Func {
                name,
                args,
                distinct,
                window,
            } => {
                write!(f, "{name}(")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                list(f, args)?;
                write!(f, ")")?;
                if window.is_some() {
                    write!(f, " OVER (...)")?;
                }
                Ok(())
            }
            Expr::Rownum => write!(f, "ROWNUM"),
        }
    }
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    pub fn qcol(q: &str, name: &str) -> Expr {
        Expr::Column {
            qualifier: Some(q.to_string()),
            name: name.to_string(),
        }
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn binary(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    /// True iff the expression (ignoring subquery bodies) contains an
    /// aggregate function call that is not windowed.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let Expr::Func {
                name, window: None, ..
            } = e
            {
                if is_aggregate_name(name) {
                    found = true;
                }
            }
        });
        found
    }

    /// Calls `f` on this expression and all sub-expressions (not
    /// descending into subquery bodies).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::InSubquery { exprs, .. } => {
                for e in exprs {
                    e.walk(f);
                }
            }
            Expr::Quantified { left, .. } => left.walk(f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(o) = operand {
                    o.walk(f);
                }
                for (w, t) in branches {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
            Expr::Func { args, window, .. } => {
                for a in args {
                    a.walk(f);
                }
                if let Some(w) = window {
                    for e in &w.partition_by {
                        e.walk(f);
                    }
                    for o in &w.order_by {
                        o.expr.walk(f);
                    }
                }
            }
            Expr::Column { .. }
            | Expr::Literal(_)
            | Expr::Param(_)
            | Expr::Exists { .. }
            | Expr::ScalarSubquery(_)
            | Expr::Rownum => {}
        }
    }
}

/// Recognized aggregate function names.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "COUNT" | "SUM" | "AVG" | "MIN" | "MAX"
    )
}

// ---------------------------------------------------------------------
// DDL / DML
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    pub constraints: Vec<TableConstraint>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: cbqt_common::DataType,
    pub not_null: bool,
    pub primary_key: bool,
    pub unique: bool,
    /// Inline `REFERENCES parent(col)`.
    pub references: Option<(String, String)>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TableConstraint {
    PrimaryKey(Vec<String>),
    Unique(Vec<String>),
    ForeignKey {
        columns: Vec<String>,
        parent: String,
        parent_columns: Vec<String>,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    pub name: String,
    pub table: String,
    pub columns: Vec<String>,
    pub unique: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: String,
    pub columns: Option<Vec<String>>,
    pub rows: Vec<Vec<Expr>>,
}

/// `UPDATE <table> SET col = expr [, ...] [WHERE <pred>]`. The executor
/// restricts SET expressions and the predicate to single-row scalar
/// evaluation (no subqueries).
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub table: String,
    /// `(column name, new value)` assignments, in statement order.
    pub sets: Vec<(String, Expr)>,
    pub filter: Option<Expr>,
}

/// `DELETE FROM <table> [WHERE <pred>]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub table: String,
    pub filter: Option<Expr>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_aggregate_detects_plain_aggs() {
        let e = Expr::Func {
            name: "AVG".into(),
            args: vec![Expr::col("salary")],
            distinct: false,
            window: None,
        };
        assert!(e.contains_aggregate());
        let wrapped = Expr::binary(BinOp::Gt, Expr::col("x"), e);
        assert!(wrapped.contains_aggregate());
    }

    #[test]
    fn windowed_agg_is_not_plain_aggregate() {
        let e = Expr::Func {
            name: "AVG".into(),
            args: vec![Expr::col("balance")],
            distinct: false,
            window: Some(WindowSpec {
                partition_by: vec![Expr::col("acct")],
                order_by: vec![],
            }),
        };
        assert!(!e.contains_aggregate());
    }

    #[test]
    fn binding_names() {
        let t = TableRef::Table {
            name: "employees".into(),
            alias: Some("e".into()),
        };
        assert_eq!(t.binding_name(), Some("e"));
        let t2 = TableRef::Table {
            name: "dept".into(),
            alias: None,
        };
        assert_eq!(t2.binding_name(), Some("dept"));
    }

    #[test]
    fn aggregate_names() {
        assert!(is_aggregate_name("count"));
        assert!(is_aggregate_name("Sum"));
        assert!(!is_aggregate_name("upper"));
    }
}
