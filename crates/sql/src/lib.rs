//! SQL frontend: lexer, abstract syntax tree, and a recursive-descent
//! parser for the SQL dialect the CBQT engine understands.
//!
//! The dialect covers everything the paper's transformations need:
//! `SELECT` with comma joins and ANSI `JOIN ... ON`, nested subqueries
//! (`EXISTS`, `IN`, `ANY`/`ALL`, scalar), set operators (`UNION [ALL]`,
//! `INTERSECT`, `MINUS`), `GROUP BY [ROLLUP]` / `HAVING`, `DISTINCT`,
//! `ORDER BY`, window functions (`OVER (PARTITION BY ... ORDER BY ...)`),
//! Oracle-style `ROWNUM`, plus the DDL/DML needed to build test databases
//! (`CREATE TABLE` with PK/FK/UNIQUE/NOT NULL constraints, `CREATE
//! [UNIQUE] INDEX`, `INSERT ... VALUES`).

pub mod ast;
pub mod binds;
pub mod lexer;
pub mod parser;
pub mod render;

pub use ast::*;
pub use binds::{collect_table_names, count_params, parameterize, Parameterized};
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{
    parse_expression, parse_query, parse_statement, parse_statements, parse_statements_spanned,
};
pub use render::render_query;
