//! Canonical SQL rendering.
//!
//! [`render_query`] turns an AST back into deterministic SQL text: one
//! space between tokens, uppercase keywords, lowercase identifiers, and
//! explicit parentheses around every binary expression and set-operation
//! operand. Two queries render identically iff their ASTs are identical
//! up to identifier case, which is what the plan cache needs for a
//! *family key*: after literal extraction (see [`crate::binds`]) every
//! member of a parameterized query family renders to the same string,
//! and re-parsing the rendered text reproduces the same AST (including
//! `?` bind-slot numbering, because extraction assigns slots in token
//! order).

use crate::ast::*;
use cbqt_common::value::Value;
use std::fmt::Write;

/// Render a query to its canonical SQL text.
pub fn render_query(q: &Query) -> String {
    let mut out = String::new();
    query(q, &mut out);
    out
}

fn query(q: &Query, out: &mut String) {
    set_expr(&q.body, out);
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        order_items(&q.order_by, out);
    }
}

fn order_items(items: &[OrderItem], out: &mut String) {
    for (i, o) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        expr(&o.expr, out);
        if o.desc {
            out.push_str(" DESC");
        }
        match o.nulls_first {
            Some(true) => out.push_str(" NULLS FIRST"),
            Some(false) => out.push_str(" NULLS LAST"),
            None => {}
        }
    }
}

fn set_expr(s: &SetExpr, out: &mut String) {
    match s {
        SetExpr::Select(sel) => select(sel, out),
        SetExpr::SetOp { op, left, right } => {
            set_operand(left, out);
            let kw = match op {
                SetOp::UnionAll => " UNION ALL ",
                SetOp::Union => " UNION ",
                SetOp::Intersect => " INTERSECT ",
                SetOp::Minus => " MINUS ",
            };
            out.push_str(kw);
            set_operand(right, out);
        }
    }
}

/// Set-operation operands are parenthesized whenever they are
/// themselves set operations so the rendered text re-parses to the
/// exact original tree regardless of operator precedence.
fn set_operand(s: &SetExpr, out: &mut String) {
    match s {
        SetExpr::Select(sel) => select(sel, out),
        SetExpr::SetOp { .. } => {
            out.push('(');
            set_expr(s, out);
            out.push(')');
        }
    }
}

fn select(s: &Select, out: &mut String) {
    out.push_str("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in s.items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            SelectItem::QualifiedWildcard(q) => {
                ident(q, out);
                out.push_str(".*");
            }
            SelectItem::Expr { expr: e, alias } => {
                expr(e, out);
                if let Some(a) = alias {
                    out.push_str(" AS ");
                    ident(a, out);
                }
            }
        }
    }
    if !s.from.is_empty() {
        out.push_str(" FROM ");
        for (i, t) in s.from.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            table_ref(t, out);
        }
    }
    if let Some(w) = &s.where_clause {
        out.push_str(" WHERE ");
        expr(w, out);
    }
    if let Some(g) = &s.group_by {
        out.push_str(" GROUP BY ");
        if g.rollup {
            out.push_str("ROLLUP (");
        }
        for (i, e) in g.exprs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            expr(e, out);
        }
        if g.rollup {
            out.push(')');
        }
    }
    if let Some(h) = &s.having {
        out.push_str(" HAVING ");
        expr(h, out);
    }
}

fn table_ref(t: &TableRef, out: &mut String) {
    match t {
        TableRef::Table { name, alias } => {
            ident(name, out);
            if let Some(a) = alias {
                out.push(' ');
                ident(a, out);
            }
        }
        TableRef::Derived { query: q, alias } => {
            out.push('(');
            query(q, out);
            out.push_str(") ");
            ident(alias, out);
        }
        TableRef::Join {
            left,
            right,
            kind,
            on,
        } => {
            table_ref(left, out);
            let kw = match kind {
                JoinKind::Inner => " JOIN ",
                JoinKind::LeftOuter => " LEFT JOIN ",
                JoinKind::RightOuter => " RIGHT JOIN ",
                JoinKind::Cross => " CROSS JOIN ",
            };
            out.push_str(kw);
            table_ref(right, out);
            if let Some(e) = on {
                out.push_str(" ON ");
                expr(e, out);
            }
        }
    }
}

fn expr(e: &Expr, out: &mut String) {
    let not = |n: bool| if n { "NOT " } else { "" };
    match e {
        Expr::Column { qualifier, name } => {
            if let Some(q) = qualifier {
                ident(q, out);
                out.push('.');
            }
            ident(name, out);
        }
        Expr::Literal(v) => literal(v, out),
        Expr::Param(_) => out.push('?'),
        Expr::Binary { op, left, right } => {
            out.push('(');
            expr(left, out);
            let _ = write!(out, " {op} ");
            expr(right, out);
            out.push(')');
        }
        Expr::Unary { op, expr: inner } => {
            out.push('(');
            out.push_str(match op {
                UnOp::Neg => "-",
                UnOp::Not => "NOT ",
            });
            expr(inner, out);
            out.push(')');
        }
        Expr::IsNull {
            expr: inner,
            negated,
        } => {
            expr(inner, out);
            let _ = write!(out, " IS {}NULL", not(*negated));
        }
        Expr::InList {
            expr: inner,
            list,
            negated,
        } => {
            expr(inner, out);
            let _ = write!(out, " {}IN (", not(*negated));
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(item, out);
            }
            out.push(')');
        }
        Expr::InSubquery {
            exprs,
            query: q,
            negated,
        } => {
            if let [single] = exprs.as_slice() {
                expr(single, out);
            } else {
                out.push('(');
                for (i, item) in exprs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    expr(item, out);
                }
                out.push(')');
            }
            let _ = write!(out, " {}IN (", not(*negated));
            query(q, out);
            out.push(')');
        }
        Expr::Exists { query: q, negated } => {
            let _ = write!(out, "{}EXISTS (", not(*negated));
            query(q, out);
            out.push(')');
        }
        Expr::Quantified {
            op,
            quant,
            left,
            query: q,
        } => {
            expr(left, out);
            let qk = match quant {
                Quant::Any => "ANY",
                Quant::All => "ALL",
            };
            let _ = write!(out, " {op} {qk} (");
            query(q, out);
            out.push(')');
        }
        Expr::ScalarSubquery(q) => {
            out.push('(');
            query(q, out);
            out.push(')');
        }
        Expr::Between {
            expr: inner,
            low,
            high,
            negated,
        } => {
            expr(inner, out);
            let _ = write!(out, " {}BETWEEN ", not(*negated));
            expr(low, out);
            out.push_str(" AND ");
            expr(high, out);
        }
        Expr::Like {
            expr: inner,
            pattern,
            negated,
        } => {
            expr(inner, out);
            let _ = write!(out, " {}LIKE ", not(*negated));
            expr(pattern, out);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            out.push_str("CASE");
            if let Some(op) = operand {
                out.push(' ');
                expr(op, out);
            }
            for (w, t) in branches {
                out.push_str(" WHEN ");
                expr(w, out);
                out.push_str(" THEN ");
                expr(t, out);
            }
            if let Some(el) = else_expr {
                out.push_str(" ELSE ");
                expr(el, out);
            }
            out.push_str(" END");
        }
        Expr::Func {
            name,
            args,
            distinct,
            window,
        } => {
            ident(name, out);
            out.push('(');
            if *distinct {
                out.push_str("DISTINCT ");
            }
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(a, out);
            }
            out.push(')');
            if let Some(w) = window {
                out.push_str(" OVER (");
                let mut need_space = false;
                if !w.partition_by.is_empty() {
                    out.push_str("PARTITION BY ");
                    for (i, p) in w.partition_by.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        expr(p, out);
                    }
                    need_space = true;
                }
                if !w.order_by.is_empty() {
                    if need_space {
                        out.push(' ');
                    }
                    out.push_str("ORDER BY ");
                    order_items(&w.order_by, out);
                }
                out.push(')');
            }
        }
        Expr::Rownum => out.push_str("ROWNUM"),
    }
}

fn literal(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("NULL"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        // `{:?}` keeps a `.0` (or exponent) so the text re-parses as a
        // Double, never collapsing to an Int.
        Value::Double(d) => {
            let _ = write!(out, "{d:?}");
        }
        Value::Str(s) => {
            out.push('\'');
            for c in s.chars() {
                if c == '\'' {
                    out.push('\'');
                }
                out.push(c);
            }
            out.push('\'');
        }
        Value::Bool(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
        // The quoted form accepts negative day counts too.
        Value::Date(d) => {
            let _ = write!(out, "DATE '{d}'");
        }
    }
}

/// Keywords that would change meaning if an identifier rendered bare.
/// Superset of the parser's reserved list plus expression-level
/// keywords; anything here (or lexically unsafe) renders quoted.
fn is_keyword(upper: &str) -> bool {
    matches!(
        upper,
        "SELECT"
            | "FROM"
            | "WHERE"
            | "GROUP"
            | "HAVING"
            | "ORDER"
            | "ON"
            | "JOIN"
            | "LEFT"
            | "RIGHT"
            | "INNER"
            | "CROSS"
            | "OUTER"
            | "UNION"
            | "INTERSECT"
            | "MINUS"
            | "EXCEPT"
            | "AND"
            | "OR"
            | "NOT"
            | "AS"
            | "SET"
            | "VALUES"
            | "USING"
            | "LIMIT"
            | "BY"
            | "DESC"
            | "ASC"
            | "NULLS"
            | "INTO"
            | "DISTINCT"
            | "ALL"
            | "ANY"
            | "SOME"
            | "IN"
            | "IS"
            | "NULL"
            | "TRUE"
            | "FALSE"
            | "BETWEEN"
            | "LIKE"
            | "CASE"
            | "WHEN"
            | "THEN"
            | "ELSE"
            | "END"
            | "EXISTS"
            | "OVER"
            | "PARTITION"
            | "ROWNUM"
            | "DATE"
            | "FIRST"
            | "LAST"
            | "ROLLUP"
    )
}

/// Lowercase an identifier when it is lexically a plain identifier and
/// not a keyword; otherwise emit it quoted verbatim.
fn ident(name: &str, out: &mut String) {
    let lower = name.to_ascii_lowercase();
    let mut chars = lower.chars();
    let safe = match chars.next() {
        Some(c) if c.is_ascii_lowercase() || c == '_' => {
            chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        }
        _ => false,
    };
    if safe && !is_keyword(&name.to_ascii_uppercase()) {
        out.push_str(&lower);
    } else {
        out.push('"');
        out.push_str(name);
        out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    /// Render must be a fixpoint under parse (key stability).
    fn round_trip(sql: &str) -> String {
        let q1 = parse_query(sql).expect("parse input");
        let r1 = render_query(&q1);
        let q2 = parse_query(&r1).unwrap_or_else(|e| panic!("re-parse `{r1}`: {e}"));
        assert_eq!(r1, render_query(&q2), "render not a fixpoint for `{sql}`");
        r1
    }

    /// Fixpoint plus exact AST faithfulness — valid when the input
    /// already uses lowercase identifiers.
    fn round_trip_exact(sql: &str) -> String {
        let q1 = parse_query(sql).expect("parse input");
        let r1 = round_trip(sql);
        let q2 = parse_query(&r1).unwrap();
        assert_eq!(q1, q2, "AST changed across render/parse for `{sql}`");
        r1
    }

    #[test]
    fn renders_are_reparsable_fixpoints() {
        for sql in [
            "SELECT * FROM emp",
            "SELECT DISTINCT e.name AS n, salary + 1 FROM emp e WHERE salary > 100 AND dept = 'eng'",
            "SELECT d.name, count(*) FROM emp e JOIN dept d ON e.dept_id = d.id \
             WHERE e.salary >= 50 GROUP BY d.name HAVING count(*) > 2 ORDER BY 2 DESC NULLS LAST",
            "SELECT * FROM emp WHERE dept_id IN (SELECT id FROM dept WHERE name LIKE 'e%')",
            "SELECT * FROM emp WHERE EXISTS (SELECT 1 FROM dept WHERE dept.id = emp.dept_id)",
            "SELECT * FROM emp WHERE NOT EXISTS (SELECT 1 FROM dept) AND salary <> 3",
            "SELECT * FROM emp WHERE salary > ANY (SELECT salary FROM emp WHERE dept_id = 4)",
            "SELECT * FROM (SELECT salary s FROM emp) v WHERE v.s BETWEEN 1 AND 10",
            "SELECT name FROM emp WHERE salary = 1 UNION ALL SELECT name FROM emp WHERE salary = 2",
            "SELECT x FROM a UNION SELECT x FROM b INTERSECT SELECT x FROM c",
            "SELECT CASE WHEN salary > 10 THEN 'hi' ELSE 'lo' END FROM emp",
            "SELECT sum(salary) OVER (PARTITION BY dept_id ORDER BY hired) FROM emp",
            "SELECT * FROM emp WHERE ROWNUM <= 5 AND salary IS NOT NULL",
            "SELECT * FROM emp WHERE (a, b) IN (SELECT x, y FROM t)",
            "SELECT * FROM emp GROUP BY ROLLUP (dept_id, title)",
            "SELECT -x, 2.5, 3e2, DATE '100', 'it''s' FROM emp WHERE b = TRUE",
            "SELECT * FROM emp WHERE a = ? AND b > ?",
        ] {
            round_trip_exact(sql);
        }
    }

    #[test]
    fn case_and_whitespace_variants_share_one_render() {
        let a = round_trip("SELECT name FROM emp WHERE salary = 100");
        let b = round_trip("select  NAME   from EMP\nwhere SALARY = 100");
        assert_eq!(a, b);
        assert_eq!(a, "SELECT name FROM emp WHERE (salary = 100)");
    }

    #[test]
    fn set_operands_keep_tree_shape() {
        // Parenthesized right-nested MINUS must not collapse into the
        // left-associative reading.
        let nested = round_trip("SELECT x FROM a MINUS (SELECT x FROM b MINUS SELECT x FROM c)");
        let flat = round_trip("SELECT x FROM a MINUS SELECT x FROM b MINUS SELECT x FROM c");
        assert_ne!(nested, flat);
    }

    #[test]
    fn doubles_keep_their_type() {
        let r = round_trip("SELECT * FROM t WHERE x = 300e0");
        assert!(r.contains("300.0"), "got {r}");
    }

    #[test]
    fn awkward_identifiers_render_quoted() {
        let q1 = parse_query("SELECT \"Mixed Case\" FROM \"order\"").unwrap();
        let r = render_query(&q1);
        assert_eq!(r, "SELECT \"Mixed Case\" FROM \"order\"");
        assert_eq!(parse_query(&r).unwrap(), q1);
    }
}
