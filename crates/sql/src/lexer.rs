//! Hand-written SQL lexer.

use cbqt_common::{Error, Result};
use std::fmt;

/// Kinds of lexical tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword or identifier; the lexer does not distinguish — the parser
    /// checks against the keyword table. Stored uppercased for keywords
    /// lookups with the original preserved.
    Ident(String),
    /// Quoted identifier (`"Name"`); preserved verbatim.
    QuotedIdent(String),
    Number(String),
    StringLit(String),
    // punctuation / operators
    Comma,
    Dot,
    LParen,
    RParen,
    Plus,
    Minus,
    Star,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Concat,
    Semicolon,
    /// `?` — positional bind-parameter placeholder.
    Question,
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::QuotedIdent(s) => write!(f, "\"{s}\""),
            TokenKind::Number(s) => write!(f, "{s}"),
            TokenKind::StringLit(s) => write!(f, "'{s}'"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::NotEq => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::LtEq => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::GtEq => write!(f, ">="),
            TokenKind::Concat => write!(f, "||"),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Question => write!(f, "?"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Streaming lexer over SQL text.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    /// Lexes the whole input into a token vector (terminated by `Eof`).
    pub fn tokenize(src: &str) -> Result<Vec<Token>> {
        let mut lx = Lexer::new(src);
        let mut out = Vec::new();
        loop {
            let t = lx.next_token()?;
            let done = t.kind == TokenKind::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'-' if self.peek2() == b'-' => {
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(Error::parse(format!(
                                "unterminated block comment at offset {start}"
                            )));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Produces the next token.
    pub fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia()?;
        let offset = self.pos;
        let kind = match self.peek() {
            0 => TokenKind::Eof,
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b'.' if !self.peek2().is_ascii_digit() => {
                self.bump();
                TokenKind::Dot
            }
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'+' => {
                self.bump();
                TokenKind::Plus
            }
            b'-' => {
                self.bump();
                TokenKind::Minus
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b'/' => {
                self.bump();
                TokenKind::Slash
            }
            b';' => {
                self.bump();
                TokenKind::Semicolon
            }
            b'?' => {
                self.bump();
                TokenKind::Question
            }
            b'=' => {
                self.bump();
                TokenKind::Eq
            }
            b'!' if self.peek2() == b'=' => {
                self.pos += 2;
                TokenKind::NotEq
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    b'=' => {
                        self.bump();
                        TokenKind::LtEq
                    }
                    b'>' => {
                        self.bump();
                        TokenKind::NotEq
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    TokenKind::GtEq
                } else {
                    TokenKind::Gt
                }
            }
            b'|' if self.peek2() == b'|' => {
                self.pos += 2;
                TokenKind::Concat
            }
            b'\'' => self.lex_string()?,
            b'"' => self.lex_quoted_ident()?,
            c if c.is_ascii_digit() || (c == b'.' && self.peek2().is_ascii_digit()) => {
                self.lex_number()?
            }
            c if c.is_ascii_alphabetic() || c == b'_' => self.lex_ident(),
            c => {
                return Err(Error::parse(format!(
                    "unexpected character '{}' at offset {offset}",
                    c as char
                )))
            }
        };
        Ok(Token { kind, offset })
    }

    fn lex_string(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                0 => {
                    return Err(Error::parse(format!(
                        "unterminated string at offset {start}"
                    )))
                }
                b'\'' => {
                    if self.peek() == b'\'' {
                        self.bump();
                        s.push('\'');
                    } else {
                        return Ok(TokenKind::StringLit(s));
                    }
                }
                c => s.push(c as char),
            }
        }
    }

    fn lex_quoted_ident(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        self.bump();
        let mut s = String::new();
        loop {
            match self.bump() {
                0 => {
                    return Err(Error::parse(format!(
                        "unterminated quoted identifier at offset {start}"
                    )))
                }
                b'"' => return Ok(TokenKind::QuotedIdent(s)),
                c => s.push(c as char),
            }
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if self.peek() == b'e' || self.peek() == b'E' {
            let save = self.pos;
            self.bump();
            if self.peek() == b'+' || self.peek() == b'-' {
                self.bump();
            }
            if self.peek().is_ascii_digit() {
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            } else {
                self.pos = save; // 'e' begins an identifier, not an exponent
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| Error::parse("non-utf8 number"))?;
        Ok(TokenKind::Number(text.to_string()))
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.pos;
        while {
            let c = self.peek();
            c.is_ascii_alphanumeric() || c == b'_' || c == b'$' || c == b'#'
        } {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .to_string();
        TokenKind::Ident(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lex_simple_select() {
        let ks = kinds("SELECT a, b FROM t WHERE a >= 1.5;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Comma,
                TokenKind::Ident("b".into()),
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Ident("WHERE".into()),
                TokenKind::Ident("a".into()),
                TokenKind::GtEq,
                TokenKind::Number("1.5".into()),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            kinds("<> != <= >= < > = ||"),
            vec![
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::LtEq,
                TokenKind::GtEq,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eq,
                TokenKind::Concat,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_string_with_escape() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::StringLit("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn lex_comments() {
        assert_eq!(
            kinds("a -- line comment\n /* block\ncomment */ b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_qualified_column() {
        assert_eq!(
            kinds("e1.salary"),
            vec![
                TokenKind::Ident("e1".into()),
                TokenKind::Dot,
                TokenKind::Ident("salary".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_number_forms() {
        assert_eq!(
            kinds("1 2.5 3e2 4.5E-1"),
            vec![
                TokenKind::Number("1".into()),
                TokenKind::Number("2.5".into()),
                TokenKind::Number("3e2".into()),
                TokenKind::Number("4.5E-1".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_number_then_ident() {
        // `1e` should not swallow the identifier-starting 'e' as exponent.
        assert_eq!(
            kinds("1employees"),
            vec![
                TokenKind::Number("1".into()),
                TokenKind::Ident("employees".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_errors() {
        assert!(Lexer::tokenize("'unterminated").is_err());
        assert!(Lexer::tokenize("/* unterminated").is_err());
        assert!(Lexer::tokenize("@").is_err());
    }

    #[test]
    fn lex_bind_placeholder() {
        assert_eq!(
            kinds("a = ? AND b > ?"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Eq,
                TokenKind::Question,
                TokenKind::Ident("AND".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Gt,
                TokenKind::Question,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_quoted_identifier() {
        assert_eq!(
            kinds("\"Mixed Case\""),
            vec![TokenKind::QuotedIdent("Mixed Case".into()), TokenKind::Eof]
        );
    }
}
