//! Recursive-descent SQL parser with precedence climbing for
//! expressions.

use crate::ast::*;
use crate::lexer::{Lexer, Token, TokenKind};
use cbqt_common::{DataType, Error, Result, Value};

/// Parses a single statement (trailing semicolon optional).
pub fn parse_statement(src: &str) -> Result<Statement> {
    let mut p = Parser::new(src)?;
    let stmt = p.parse_statement()?;
    p.eat(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses a semicolon-separated script.
pub fn parse_statements(src: &str) -> Result<Vec<Statement>> {
    Ok(parse_statements_spanned(src)?
        .into_iter()
        .map(|(stmt, _)| stmt)
        .collect())
}

/// Parses a semicolon-separated script, pairing every statement with
/// the byte range of its text in `src` (first token up to, but not
/// including, the terminating semicolon). Callers use the range to
/// carve per-statement SQL out of the script — e.g. to key a plan
/// cache — without re-rendering the AST.
pub fn parse_statements_spanned(src: &str) -> Result<Vec<(Statement, std::ops::Range<usize>)>> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.at_eof() {
            return Ok(out);
        }
        let start = p.current_offset();
        let stmt = p.parse_statement()?;
        let end = p.current_offset();
        out.push((stmt, start..end));
        if !p.eat(&TokenKind::Semicolon) {
            p.expect_eof()?;
            return Ok(out);
        }
    }
}

/// Parses a query (SELECT / set operation), rejecting other statements.
pub fn parse_query(src: &str) -> Result<Query> {
    let mut p = Parser::new(src)?;
    let q = p.parse_query()?;
    p.eat(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(q)
}

/// Parses a standalone scalar expression (used in tests and tools).
pub fn parse_expression(src: &str) -> Result<Expr> {
    let mut p = Parser::new(src)?;
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Keywords that terminate an implicit alias position.
const RESERVED: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "HAVING",
    "ORDER",
    "ON",
    "JOIN",
    "LEFT",
    "RIGHT",
    "INNER",
    "CROSS",
    "OUTER",
    "UNION",
    "INTERSECT",
    "MINUS",
    "EXCEPT",
    "AND",
    "OR",
    "NOT",
    "AS",
    "SET",
    "VALUES",
    "USING",
    "LIMIT",
    "BY",
    "DESC",
    "ASC",
    "NULLS",
    "INTO",
];

/// Maximum recursion depth across nested expressions, parenthesized
/// table references and set-operation branches. The recursive-descent
/// parser consumes native stack per nesting level; this bound turns a
/// pathological input (e.g. 10 000 nested parentheses) into a parse
/// error instead of a stack overflow.
const MAX_NESTING_DEPTH: usize = 64;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current recursion depth (see [`MAX_NESTING_DEPTH`]).
    depth: usize,
    /// Bind-parameter slots seen so far; `?` placeholders number
    /// left-to-right in token order within one statement.
    params: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: Lexer::tokenize(src)?,
            pos: 0,
            depth: 0,
            params: 0,
        })
    }

    /// Enters one recursion level; fails with a parse error past
    /// [`MAX_NESTING_DEPTH`]. Paired with [`Parser::descend_end`].
    fn descend(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(Error::parse(format!(
                "query nesting exceeds the maximum depth of {MAX_NESTING_DEPTH}"
            )));
        }
        Ok(())
    }

    fn descend_end(&mut self) {
        self.depth -= 1;
    }

    // -- token helpers ------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    /// Byte offset of the current token in the source (the `Eof`
    /// token's offset is the end of the source).
    fn current_offset(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].offset
    }

    fn peek_n(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        *self.peek() == TokenKind::Eof
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{kind}'")))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err("expected end of input"))
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        let tok = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        Error::parse(format!(
            "{} but found '{}' at offset {}",
            msg.into(),
            tok.kind,
            tok.offset
        ))
    }

    /// True if the current token is the given keyword (case-insensitive).
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn at_kw_n(&self, n: usize, kw: &str) -> bool {
        matches!(self.peek_n(n), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    /// Parses an identifier (regular or quoted).
    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            TokenKind::QuotedIdent(s) => Ok(s),
            other => {
                // restore position for accurate error
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(format!("expected identifier, got '{other}'")))
            }
        }
    }

    /// Parses an optional alias (with or without AS), refusing reserved
    /// words in the bare form.
    fn opt_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("AS") {
            return Ok(Some(self.ident()?));
        }
        if let TokenKind::Ident(s) = self.peek() {
            if !RESERVED.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                let s = s.clone();
                self.bump();
                return Ok(Some(s));
            }
        }
        if let TokenKind::QuotedIdent(s) = self.peek() {
            let s = s.clone();
            self.bump();
            return Ok(Some(s));
        }
        Ok(None)
    }

    // -- statements ---------------------------------------------------

    fn parse_statement(&mut self) -> Result<Statement> {
        // `?` slots number per statement, not per script
        self.params = 0;
        if self.at_kw("SELECT") || *self.peek() == TokenKind::LParen {
            return Ok(Statement::Query(Box::new(self.parse_query()?)));
        }
        if self.at_kw("EXPLAIN") {
            self.bump();
            let analyze = self.eat_kw("ANALYZE");
            return Ok(Statement::Explain {
                query: Box::new(self.parse_query()?),
                analyze,
            });
        }
        if self.at_kw("ANALYZE") {
            self.bump();
            return Ok(Statement::Analyze);
        }
        if self.at_kw("CREATE") {
            self.bump();
            if self.eat_kw("TABLE") {
                return Ok(Statement::CreateTable(self.parse_create_table()?));
            }
            let unique = self.eat_kw("UNIQUE");
            if self.eat_kw("INDEX") {
                return Ok(Statement::CreateIndex(self.parse_create_index(unique)?));
            }
            return Err(self.err("expected TABLE or [UNIQUE] INDEX after CREATE"));
        }
        if self.at_kw("INSERT") {
            self.bump();
            return Ok(Statement::Insert(self.parse_insert()?));
        }
        if self.at_kw("UPDATE") {
            self.bump();
            return Ok(Statement::Update(self.parse_update()?));
        }
        if self.at_kw("DELETE") {
            self.bump();
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let filter = if self.eat_kw("WHERE") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete(Delete { table, filter }));
        }
        if self.at_kw("BEGIN") {
            self.bump();
            self.eat_kw("TRANSACTION");
            return Ok(Statement::Begin);
        }
        if self.at_kw("COMMIT") {
            self.bump();
            return Ok(Statement::Commit);
        }
        if self.at_kw("ROLLBACK") {
            self.bump();
            return Ok(Statement::Rollback);
        }
        Err(self.err(
            "expected SELECT, EXPLAIN, ANALYZE, CREATE, INSERT, UPDATE, DELETE, \
             BEGIN, COMMIT or ROLLBACK",
        ))
    }

    fn parse_update(&mut self) -> Result<Update> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            sets.push((col, self.parse_expr()?));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Update {
            table,
            sets,
            filter,
        })
    }

    fn parse_create_table(&mut self) -> Result<CreateTable> {
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        loop {
            if self.at_kw("PRIMARY")
                || self.at_kw("UNIQUE") && *self.peek_n(1) == TokenKind::LParen
                || self.at_kw("FOREIGN")
                || self.at_kw("CONSTRAINT")
            {
                constraints.push(self.parse_table_constraint()?);
            } else {
                columns.push(self.parse_column_def()?);
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(CreateTable {
            name,
            columns,
            constraints,
        })
    }

    fn parse_table_constraint(&mut self) -> Result<TableConstraint> {
        if self.eat_kw("CONSTRAINT") {
            self.ident()?; // constraint name is accepted and ignored
        }
        if self.eat_kw("PRIMARY") {
            self.expect_kw("KEY")?;
            return Ok(TableConstraint::PrimaryKey(self.paren_ident_list()?));
        }
        if self.eat_kw("UNIQUE") {
            return Ok(TableConstraint::Unique(self.paren_ident_list()?));
        }
        if self.eat_kw("FOREIGN") {
            self.expect_kw("KEY")?;
            let columns = self.paren_ident_list()?;
            self.expect_kw("REFERENCES")?;
            let parent = self.ident()?;
            let parent_columns = self.paren_ident_list()?;
            return Ok(TableConstraint::ForeignKey {
                columns,
                parent,
                parent_columns,
            });
        }
        Err(self.err("expected table constraint"))
    }

    fn paren_ident_list(&mut self) -> Result<Vec<String>> {
        self.expect(&TokenKind::LParen)?;
        let mut out = vec![self.ident()?];
        while self.eat(&TokenKind::Comma) {
            out.push(self.ident()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(out)
    }

    fn parse_column_def(&mut self) -> Result<ColumnDef> {
        let name = self.ident()?;
        let type_name = self.ident()?;
        // swallow a parenthesized precision, e.g. VARCHAR(30), NUMBER(10,2)
        if self.eat(&TokenKind::LParen) {
            while *self.peek() != TokenKind::RParen && !self.at_eof() {
                self.bump();
            }
            self.expect(&TokenKind::RParen)?;
        }
        let data_type = DataType::parse(&type_name)?;
        let mut def = ColumnDef {
            name,
            data_type,
            not_null: false,
            primary_key: false,
            unique: false,
            references: None,
        };
        loop {
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                def.not_null = true;
            } else if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                def.primary_key = true;
                def.not_null = true;
            } else if self.eat_kw("UNIQUE") {
                def.unique = true;
            } else if self.eat_kw("REFERENCES") {
                let parent = self.ident()?;
                self.expect(&TokenKind::LParen)?;
                let col = self.ident()?;
                self.expect(&TokenKind::RParen)?;
                def.references = Some((parent, col));
            } else {
                break;
            }
        }
        Ok(def)
    }

    fn parse_create_index(&mut self, unique: bool) -> Result<CreateIndex> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        let columns = self.paren_ident_list()?;
        Ok(CreateIndex {
            name,
            table,
            columns,
            unique,
        })
    }

    fn parse_insert(&mut self) -> Result<Insert> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let columns = if *self.peek() == TokenKind::LParen {
            Some(self.paren_ident_list()?)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen)?;
            let mut row = vec![self.parse_expr()?];
            while self.eat(&TokenKind::Comma) {
                row.push(self.parse_expr()?);
            }
            self.expect(&TokenKind::RParen)?;
            rows.push(row);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Insert {
            table,
            columns,
            rows,
        })
    }

    // -- queries ------------------------------------------------------

    fn parse_query(&mut self) -> Result<Query> {
        let body = self.parse_set_expr()?;
        let order_by = if self.at_kw("ORDER") {
            self.bump();
            self.expect_kw("BY")?;
            self.parse_order_items()?
        } else {
            Vec::new()
        };
        Ok(Query { body, order_by })
    }

    fn parse_order_items(&mut self) -> Result<Vec<OrderItem>> {
        let mut items = vec![self.parse_order_item()?];
        while self.eat(&TokenKind::Comma) {
            items.push(self.parse_order_item()?);
        }
        Ok(items)
    }

    fn parse_order_item(&mut self) -> Result<OrderItem> {
        let expr = self.parse_expr()?;
        let desc = if self.eat_kw("DESC") {
            true
        } else {
            self.eat_kw("ASC");
            false
        };
        let nulls_first = if self.eat_kw("NULLS") {
            if self.eat_kw("FIRST") {
                Some(true)
            } else {
                self.expect_kw("LAST")?;
                Some(false)
            }
        } else {
            None
        };
        Ok(OrderItem {
            expr,
            desc,
            nulls_first,
        })
    }

    /// UNION/MINUS level (lowest set-operator precedence).
    fn parse_set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.parse_intersect_expr()?;
        loop {
            let op = if self.at_kw("UNION") {
                self.bump();
                if self.eat_kw("ALL") {
                    SetOp::UnionAll
                } else {
                    SetOp::Union
                }
            } else if self.at_kw("MINUS") || self.at_kw("EXCEPT") {
                self.bump();
                SetOp::Minus
            } else {
                return Ok(left);
            };
            let right = self.parse_intersect_expr()?;
            left = SetExpr::SetOp {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn parse_intersect_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.parse_set_primary()?;
        while self.eat_kw("INTERSECT") {
            let right = self.parse_set_primary()?;
            left = SetExpr::SetOp {
                op: SetOp::Intersect,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_set_primary(&mut self) -> Result<SetExpr> {
        self.descend()?;
        let r = self.parse_set_primary_body();
        self.descend_end();
        r
    }

    fn parse_set_primary_body(&mut self) -> Result<SetExpr> {
        if self.eat(&TokenKind::LParen) {
            let q = self.parse_query()?;
            self.expect(&TokenKind::RParen)?;
            if !q.order_by.is_empty() {
                return Err(self.err("ORDER BY is not allowed in a parenthesized set-operand"));
            }
            return Ok(q.body);
        }
        Ok(SetExpr::Select(Box::new(self.parse_select()?)))
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let distinct = if self.eat_kw("DISTINCT") {
            true
        } else {
            self.eat_kw("ALL");
            false
        };
        let mut items = vec![self.parse_select_item()?];
        while self.eat(&TokenKind::Comma) {
            items.push(self.parse_select_item()?);
        }
        let from = if self.eat_kw("FROM") {
            let mut from = vec![self.parse_table_ref()?];
            while self.eat(&TokenKind::Comma) {
                from.push(self.parse_table_ref()?);
            }
            from
        } else {
            Vec::new()
        };
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let group_by = if self.at_kw("GROUP") {
            self.bump();
            self.expect_kw("BY")?;
            let rollup = self.eat_kw("ROLLUP");
            let exprs = if rollup {
                self.expect(&TokenKind::LParen)?;
                let mut es = vec![self.parse_expr()?];
                while self.eat(&TokenKind::Comma) {
                    es.push(self.parse_expr()?);
                }
                self.expect(&TokenKind::RParen)?;
                es
            } else {
                let mut es = vec![self.parse_expr()?];
                while self.eat(&TokenKind::Comma) {
                    es.push(self.parse_expr()?);
                }
                es
            };
            Some(GroupBy { rollup, exprs })
        } else {
            None
        };
        let having = if self.eat_kw("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.*
        if let TokenKind::Ident(q) = self.peek() {
            if *self.peek_n(1) == TokenKind::Dot && *self.peek_n(2) == TokenKind::Star {
                let q = q.clone();
                self.bump();
                self.bump();
                self.bump();
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.parse_expr()?;
        let alias = self.opt_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    // -- FROM clause ---------------------------------------------------

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_primary()?;
        loop {
            let kind = if self.at_kw("JOIN") || self.at_kw("INNER") {
                self.eat_kw("INNER");
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.at_kw("LEFT") {
                self.bump();
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::LeftOuter
            } else if self.at_kw("RIGHT") {
                self.bump();
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::RightOuter
            } else if self.at_kw("CROSS") {
                self.bump();
                self.expect_kw("JOIN")?;
                JoinKind::Cross
            } else {
                return Ok(left);
            };
            let right = self.parse_table_primary()?;
            let on = if kind != JoinKind::Cross {
                self.expect_kw("ON")?;
                Some(self.parse_expr()?)
            } else {
                None
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
    }

    fn parse_table_primary(&mut self) -> Result<TableRef> {
        self.descend()?;
        let r = self.parse_table_primary_body();
        self.descend_end();
        r
    }

    fn parse_table_primary_body(&mut self) -> Result<TableRef> {
        if self.eat(&TokenKind::LParen) {
            // derived table
            let q = self.parse_query()?;
            self.expect(&TokenKind::RParen)?;
            let alias = self
                .opt_alias()?
                .ok_or_else(|| self.err("derived table requires an alias"))?;
            return Ok(TableRef::Derived {
                query: Box::new(q),
                alias,
            });
        }
        let name = self.ident()?;
        let alias = self.opt_alias()?;
        Ok(TableRef::Table { name, alias })
    }

    // -- expressions ----------------------------------------------------

    pub(crate) fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        self.descend()?;
        let r = self.parse_or_body();
        self.descend_end();
        r
    }

    fn parse_or_body(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = Expr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left = Expr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.at_kw("NOT") {
            // NOT EXISTS gets folded into the Exists node directly.
            if self.at_kw_n(1, "EXISTS") {
                self.bump();
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let q = self.parse_query()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::Exists {
                    query: Box::new(q),
                    negated: true,
                });
            }
            self.bump();
            let inner = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_predicate()
    }

    fn parse_predicate(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;

        // comparison (possibly quantified)
        let cmp = match self.peek() {
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::NotEq => Some(BinOp::NotEq),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::LtEq => Some(BinOp::LtEq),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::GtEq => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = cmp {
            self.bump();
            if self.at_kw("ANY") || self.at_kw("SOME") || self.at_kw("ALL") {
                let quant = if self.eat_kw("ALL") {
                    Quant::All
                } else {
                    self.bump(); // ANY / SOME
                    Quant::Any
                };
                self.expect(&TokenKind::LParen)?;
                let q = self.parse_query()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::Quantified {
                    op,
                    quant,
                    left: Box::new(left),
                    query: Box::new(q),
                });
            }
            let right = self.parse_additive()?;
            return Ok(Expr::binary(op, left, right));
        }

        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        let negated = self.eat_kw("NOT");

        if self.eat_kw("IN") {
            self.expect(&TokenKind::LParen)?;
            if self.at_kw("SELECT") {
                let q = self.parse_query()?;
                self.expect(&TokenKind::RParen)?;
                let exprs = unwrap_row(left);
                return Ok(Expr::InSubquery {
                    exprs,
                    query: Box::new(q),
                    negated,
                });
            }
            let mut list = vec![self.parse_expr()?];
            while self.eat(&TokenKind::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }

        if self.eat_kw("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_kw("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }

        if self.eat_kw("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }

        if negated {
            return Err(self.err("expected IN, BETWEEN or LIKE after NOT"));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Concat => BinOp::Concat,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(op, left, right);
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::binary(op, left, right);
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let e = self.parse_unary()?;
            // fold negative literals
            if let Expr::Literal(Value::Int(i)) = e {
                return Ok(Expr::Literal(Value::Int(-i)));
            }
            if let Expr::Literal(Value::Double(d)) = e {
                return Ok(Expr::Literal(Value::Double(-d)));
            }
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(e),
            });
        }
        if self.eat(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Number(text) => {
                self.bump();
                if text.contains('.') || text.contains('e') || text.contains('E') {
                    let d: f64 = text
                        .parse()
                        .map_err(|_| self.err(format!("bad number {text}")))?;
                    Ok(Expr::Literal(Value::Double(d)))
                } else {
                    match text.parse::<i64>() {
                        Ok(i) => Ok(Expr::Literal(Value::Int(i))),
                        Err(_) => {
                            let d: f64 = text
                                .parse()
                                .map_err(|_| self.err(format!("bad number {text}")))?;
                            Ok(Expr::Literal(Value::Double(d)))
                        }
                    }
                }
            }
            TokenKind::StringLit(s) => {
                self.bump();
                Ok(Expr::Literal(Value::str(s)))
            }
            TokenKind::Question => {
                self.bump();
                let slot = self.params;
                self.params += 1;
                Ok(Expr::Param(slot))
            }
            TokenKind::LParen => {
                self.bump();
                if self.at_kw("SELECT") {
                    let q = self.parse_query()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(q)));
                }
                let first = self.parse_expr()?;
                if self.eat(&TokenKind::Comma) {
                    // row expression — only legal in front of IN (subquery)
                    let mut args = vec![first];
                    loop {
                        args.push(self.parse_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Func {
                        name: "$ROW".into(),
                        args,
                        distinct: false,
                        window: None,
                    });
                }
                self.expect(&TokenKind::RParen)?;
                Ok(first)
            }
            TokenKind::Ident(word) => self.parse_ident_expr(word),
            TokenKind::QuotedIdent(name) => {
                self.bump();
                if self.eat(&TokenKind::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name,
                })
            }
            other => Err(self.err(format!("unexpected token '{other}' in expression"))),
        }
    }

    fn parse_ident_expr(&mut self, word: String) -> Result<Expr> {
        let upper = word.to_ascii_uppercase();
        match upper.as_str() {
            "NULL" => {
                self.bump();
                return Ok(Expr::Literal(Value::Null));
            }
            "TRUE" => {
                self.bump();
                return Ok(Expr::Literal(Value::Bool(true)));
            }
            "FALSE" => {
                self.bump();
                return Ok(Expr::Literal(Value::Bool(false)));
            }
            "ROWNUM" => {
                self.bump();
                return Ok(Expr::Rownum);
            }
            "DATE" => {
                // DATE <int> or DATE 'nnn' — days since epoch
                if let TokenKind::Number(_) | TokenKind::StringLit(_) = self.peek_n(1) {
                    self.bump();
                    match self.bump() {
                        TokenKind::Number(n) => {
                            let d: i32 = n.parse().map_err(|_| self.err("bad DATE literal"))?;
                            return Ok(Expr::Literal(Value::Date(d)));
                        }
                        TokenKind::StringLit(s) => {
                            let d: i32 =
                                s.trim().parse().map_err(|_| self.err("bad DATE literal"))?;
                            return Ok(Expr::Literal(Value::Date(d)));
                        }
                        _ => unreachable!(),
                    }
                }
            }
            "EXISTS" => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let q = self.parse_query()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::Exists {
                    query: Box::new(q),
                    negated: false,
                });
            }
            "CASE" => {
                self.bump();
                return self.parse_case();
            }
            _ => {}
        }

        // function call?
        if *self.peek_n(1) == TokenKind::LParen {
            self.bump();
            self.bump();
            let mut distinct = false;
            let mut args = Vec::new();
            if self.eat(&TokenKind::Star) {
                // COUNT(*)
            } else if *self.peek() != TokenKind::RParen {
                distinct = self.eat_kw("DISTINCT");
                args.push(self.parse_expr()?);
                while self.eat(&TokenKind::Comma) {
                    args.push(self.parse_expr()?);
                }
            }
            self.expect(&TokenKind::RParen)?;
            let window = if self.at_kw("OVER") {
                self.bump();
                Some(self.parse_window_spec()?)
            } else {
                None
            };
            return Ok(Expr::Func {
                name: upper,
                args,
                distinct,
                window,
            });
        }

        // plain or qualified column
        if RESERVED.iter().any(|k| upper == *k) {
            return Err(self.err(format!("unexpected keyword {upper} in expression")));
        }
        self.bump();
        if self.eat(&TokenKind::Dot) {
            let col = self.ident()?;
            return Ok(Expr::Column {
                qualifier: Some(word),
                name: col,
            });
        }
        Ok(Expr::Column {
            qualifier: None,
            name: word,
        })
    }

    fn parse_window_spec(&mut self) -> Result<WindowSpec> {
        self.expect(&TokenKind::LParen)?;
        let mut spec = WindowSpec {
            partition_by: Vec::new(),
            order_by: Vec::new(),
        };
        if self.eat_kw("PARTITION") {
            self.expect_kw("BY")?;
            spec.partition_by.push(self.parse_expr()?);
            while self.eat(&TokenKind::Comma) {
                spec.partition_by.push(self.parse_expr()?);
            }
        }
        if self.at_kw("ORDER") {
            self.bump();
            self.expect_kw("BY")?;
            spec.order_by = self.parse_order_items()?;
        }
        // accept and ignore a ROWS/RANGE frame clause (we always compute
        // running frames when ORDER BY is present, cumulative otherwise)
        if self.at_kw("ROWS") || self.at_kw("RANGE") {
            self.bump();
            if self.eat_kw("BETWEEN") {
                self.parse_frame_bound()?;
                self.expect_kw("AND")?;
                self.parse_frame_bound()?;
            } else {
                self.parse_frame_bound()?;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(spec)
    }

    fn parse_frame_bound(&mut self) -> Result<()> {
        if self.eat_kw("UNBOUNDED") {
            if !self.eat_kw("PRECEDING") && !self.eat_kw("FOLLOWING") {
                return Err(self.err("expected PRECEDING or FOLLOWING"));
            }
            return Ok(());
        }
        if self.eat_kw("CURRENT") {
            self.expect_kw("ROW")?;
            return Ok(());
        }
        // N PRECEDING/FOLLOWING
        self.parse_additive()?;
        if !self.eat_kw("PRECEDING") && !self.eat_kw("FOLLOWING") {
            return Err(self.err("expected PRECEDING or FOLLOWING"));
        }
        Ok(())
    }

    fn parse_case(&mut self) -> Result<Expr> {
        let operand = if !self.at_kw("WHEN") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let w = self.parse_expr()?;
            self.expect_kw("THEN")?;
            let t = self.parse_expr()?;
            branches.push((w, t));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN branch"));
        }
        let else_expr = if self.eat_kw("ELSE") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_expr,
        })
    }
}

/// Unwraps a `$ROW(a, b, ...)` marker into its component expressions.
fn unwrap_row(e: Expr) -> Vec<Expr> {
    match e {
        Expr::Func { name, args, .. } if name == "$ROW" => args,
        other => vec![other],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(src: &str) -> Select {
        match parse_query(src).unwrap().body {
            SetExpr::Select(s) => *s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        // without the depth guard these would exhaust the native stack
        let expr = format!("{}1{}", "(".repeat(10_000), ")".repeat(10_000));
        let err = parse_expression(&expr).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");

        let mut q = String::new();
        for _ in 0..10_000 {
            q.push_str("SELECT * FROM (");
        }
        q.push_str("SELECT 1");
        for _ in 0..10_000 {
            q.push_str(") t");
        }
        let err = parse_statement(&q).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");

        let mut s = "SELECT 1".to_string();
        s.push_str(&" UNION (SELECT 2".repeat(10_000));
        s.push_str(&")".repeat(10_000));
        assert!(parse_statement(&s).is_err());

        // reasonable nesting still parses, and the depth counter resets
        // correctly between expressions of one statement
        let ok = format!(
            "SELECT {}1{} FROM t WHERE {}2{} > 0",
            "(".repeat(50),
            ")".repeat(50),
            "(".repeat(50),
            ")".repeat(50)
        );
        assert!(parse_statement(&ok).is_ok());
    }

    #[test]
    fn parse_simple_select() {
        let s = sel("SELECT a, b AS bee FROM t WHERE a > 1");
        assert_eq!(s.items.len(), 2);
        assert!(matches!(&s.items[1], SelectItem::Expr { alias: Some(a), .. } if a == "bee"));
        assert!(s.where_clause.is_some());
        assert!(!s.distinct);
    }

    #[test]
    fn parse_distinct_and_group_by() {
        let s = sel("SELECT DISTINCT dept_id FROM employees GROUP BY dept_id HAVING COUNT(*) > 2");
        assert!(s.distinct);
        assert!(s.group_by.is_some());
        assert!(s.having.is_some());
    }

    #[test]
    fn parse_rollup() {
        let s = sel("SELECT country, state, SUM(x) FROM t GROUP BY ROLLUP (country, state)");
        let g = s.group_by.unwrap();
        assert!(g.rollup);
        assert_eq!(g.exprs.len(), 2);
    }

    #[test]
    fn parse_comma_join_and_aliases() {
        let s = sel("SELECT e.name FROM employees e, departments d WHERE e.dept_id = d.dept_id");
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].binding_name(), Some("e"));
    }

    #[test]
    fn parse_ansi_joins() {
        let s = sel(
            "SELECT e.name FROM employees e LEFT OUTER JOIN departments d ON e.dept_id = d.dept_id",
        );
        assert_eq!(s.from.len(), 1);
        match &s.from[0] {
            TableRef::Join { kind, on, .. } => {
                assert_eq!(*kind, JoinKind::LeftOuter);
                assert!(on.is_some());
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn parse_exists_subquery() {
        let s = sel("SELECT d.name FROM departments d WHERE EXISTS (SELECT 1 FROM employees e WHERE e.dept_id = d.dept_id AND e.salary > 200000)");
        match s.where_clause.unwrap() {
            Expr::Exists { negated, .. } => assert!(!negated),
            other => panic!("expected EXISTS, got {other:?}"),
        }
    }

    #[test]
    fn parse_not_exists() {
        let s = sel("SELECT 1 FROM d WHERE NOT EXISTS (SELECT 1 FROM e)");
        assert!(matches!(
            s.where_clause.unwrap(),
            Expr::Exists { negated: true, .. }
        ));
    }

    #[test]
    fn parse_in_subquery_multi_item() {
        let s = sel("SELECT 1 FROM t WHERE (a, b) IN (SELECT x, y FROM u)");
        match s.where_clause.unwrap() {
            Expr::InSubquery { exprs, negated, .. } => {
                assert_eq!(exprs.len(), 2);
                assert!(!negated);
            }
            other => panic!("expected IN subquery, got {other:?}"),
        }
    }

    #[test]
    fn parse_not_in_list() {
        let s = sel("SELECT 1 FROM t WHERE c NOT IN (1, 2, 3)");
        assert!(matches!(
            s.where_clause.unwrap(),
            Expr::InList { negated: true, .. }
        ));
    }

    #[test]
    fn parse_quantified() {
        let s = sel("SELECT 1 FROM t WHERE sal > ALL (SELECT sal FROM u)");
        match s.where_clause.unwrap() {
            Expr::Quantified { op, quant, .. } => {
                assert_eq!(op, BinOp::Gt);
                assert_eq!(quant, Quant::All);
            }
            other => panic!("expected quantified, got {other:?}"),
        }
        let s = sel("SELECT 1 FROM t WHERE sal = ANY (SELECT sal FROM u)");
        assert!(matches!(
            s.where_clause.unwrap(),
            Expr::Quantified {
                quant: Quant::Any,
                ..
            }
        ));
    }

    #[test]
    fn parse_scalar_subquery() {
        let s = sel("SELECT 1 FROM e WHERE sal > (SELECT AVG(sal) FROM e2)");
        match s.where_clause.unwrap() {
            Expr::Binary { right, .. } => {
                assert!(matches!(*right, Expr::ScalarSubquery(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_set_ops_precedence() {
        // INTERSECT binds tighter than UNION
        let q =
            parse_query("SELECT a FROM t UNION SELECT b FROM u INTERSECT SELECT c FROM v").unwrap();
        match q.body {
            SetExpr::SetOp { op, right, .. } => {
                assert_eq!(op, SetOp::Union);
                assert!(matches!(
                    *right,
                    SetExpr::SetOp {
                        op: SetOp::Intersect,
                        ..
                    }
                ));
            }
            other => panic!("expected set op, got {other:?}"),
        }
    }

    #[test]
    fn parse_minus() {
        let q = parse_query("SELECT a FROM t MINUS SELECT a FROM u").unwrap();
        assert!(matches!(
            q.body,
            SetExpr::SetOp {
                op: SetOp::Minus,
                ..
            }
        ));
    }

    #[test]
    fn parse_derived_table() {
        let s = sel("SELECT v.x FROM (SELECT a x FROM t) v WHERE v.x > 0");
        assert!(matches!(&s.from[0], TableRef::Derived { alias, .. } if alias == "v"));
    }

    #[test]
    fn parse_window_function() {
        let s = sel(
            "SELECT acct_id, AVG(balance) OVER (PARTITION BY acct_id ORDER BY time \
             RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) ravg FROM accounts",
        );
        match &s.items[1] {
            SelectItem::Expr {
                expr: Expr::Func {
                    window: Some(w), ..
                },
                alias,
            } => {
                assert_eq!(w.partition_by.len(), 1);
                assert_eq!(w.order_by.len(), 1);
                assert_eq!(alias.as_deref(), Some("ravg"));
            }
            other => panic!("expected window func, got {other:?}"),
        }
    }

    #[test]
    fn parse_rownum() {
        let s = sel("SELECT * FROM t WHERE rownum < 20");
        match s.where_clause.unwrap() {
            Expr::Binary { left, .. } => assert!(matches!(*left, Expr::Rownum)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_case_expr() {
        let e = parse_expression("CASE WHEN a > 1 THEN 'hi' WHEN a > 0 THEN 'mid' ELSE 'lo' END")
            .unwrap();
        match e {
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                assert!(operand.is_none());
                assert_eq!(branches.len(), 2);
                assert!(else_expr.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_between_and_like() {
        let e = parse_expression("x BETWEEN 1 AND 10").unwrap();
        assert!(matches!(e, Expr::Between { negated: false, .. }));
        let e = parse_expression("name NOT LIKE 'A%'").unwrap();
        assert!(matches!(e, Expr::Like { negated: true, .. }));
    }

    #[test]
    fn parse_arith_precedence() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Add,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_negative_literal_folded() {
        assert_eq!(
            parse_expression("-5").unwrap(),
            Expr::Literal(Value::Int(-5))
        );
    }

    #[test]
    fn parse_create_table_with_constraints() {
        let stmt = parse_statement(
            "CREATE TABLE employees (emp_id INT PRIMARY KEY, name VARCHAR(30) NOT NULL, \
             dept_id INT REFERENCES departments(dept_id), salary DOUBLE, \
             UNIQUE (name), FOREIGN KEY (dept_id) REFERENCES departments (dept_id))",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.name, "employees");
                assert_eq!(ct.columns.len(), 4);
                assert!(ct.columns[0].primary_key);
                assert!(ct.columns[1].not_null);
                assert_eq!(
                    ct.columns[2].references,
                    Some(("departments".into(), "dept_id".into()))
                );
                assert_eq!(ct.constraints.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_create_index() {
        let stmt =
            parse_statement("CREATE UNIQUE INDEX i_emp ON employees (emp_id, dept_id)").unwrap();
        match stmt {
            Statement::CreateIndex(ci) => {
                assert!(ci.unique);
                assert_eq!(ci.columns, vec!["emp_id", "dept_id"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_insert_multi_row() {
        let stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)").unwrap();
        match stmt {
            Statement::Insert(ins) => {
                assert_eq!(ins.rows.len(), 2);
                assert_eq!(ins.columns.as_ref().unwrap().len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_update_delete_and_txn_control() {
        let stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE id = 3").unwrap();
        match stmt {
            Statement::Update(u) => {
                assert_eq!(u.table, "t");
                assert_eq!(u.sets.len(), 2);
                assert_eq!(u.sets[0].0, "a");
                assert!(u.filter.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        let stmt = parse_statement("DELETE FROM t WHERE id = 3").unwrap();
        match stmt {
            Statement::Delete(d) => {
                assert_eq!(d.table, "t");
                assert!(d.filter.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(parse_statement("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(
            parse_statement("BEGIN TRANSACTION").unwrap(),
            Statement::Begin
        );
        assert_eq!(parse_statement("COMMIT;").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("ROLLBACK").unwrap(), Statement::Rollback);
        // DELETE without FROM is rejected
        assert!(parse_statement("DELETE t").is_err());
        // a full-table UPDATE/DELETE parses with no filter
        match parse_statement("DELETE FROM t").unwrap() {
            Statement::Delete(d) => assert!(d.filter.is_none()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_script() {
        let stmts =
            parse_statements("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT a FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn parse_order_by_variants() {
        let q = parse_query("SELECT a FROM t ORDER BY a DESC NULLS FIRST, b ASC").unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].desc);
        assert_eq!(q.order_by[0].nulls_first, Some(true));
        assert!(!q.order_by[1].desc);
    }

    #[test]
    fn parse_paper_q1() {
        // The paper's running example query (completed — the printed text
        // truncates the second subquery).
        let q = parse_query(
            "SELECT e1.employee_name, j.job_title \
             FROM employees e1, job_history j \
             WHERE e1.emp_id = j.emp_id AND j.start_date > 19980101 AND \
                   e1.salary > (SELECT AVG(e2.salary) FROM employees e2 \
                                WHERE e2.dept_id = e1.dept_id) AND \
                   e1.dept_id IN (SELECT d.dept_id FROM departments d, locations l \
                                  WHERE d.loc_id = l.loc_id AND l.country_id = 'US')",
        )
        .unwrap();
        match q.body {
            SetExpr::Select(s) => {
                assert_eq!(s.from.len(), 2);
                // WHERE is a conjunction containing a scalar subquery
                // comparison and an IN subquery.
                let mut subqueries = 0;
                s.where_clause.as_ref().unwrap().walk(&mut |e| {
                    if matches!(e, Expr::ScalarSubquery(_) | Expr::InSubquery { .. }) {
                        subqueries += 1;
                    }
                });
                assert_eq!(subqueries, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_query("SELECT FROM t").is_err());
        assert!(parse_query("SELECT a FROM").is_err());
        assert!(parse_query("SELECT a FROM (SELECT b FROM t)").is_err()); // missing alias
        assert!(parse_expression("a NOT 5").is_err());
        assert!(parse_statement("CREATE VIEW v AS SELECT 1").is_err());
    }

    #[test]
    fn alias_not_stolen_by_keyword() {
        let s = sel("SELECT a FROM t WHERE a = 1");
        assert_eq!(s.from[0].binding_name(), Some("t"));
        let s = sel("SELECT a value FROM t");
        assert!(matches!(&s.items[0], SelectItem::Expr { alias: Some(a), .. } if a == "value"));
    }

    #[test]
    fn parse_count_star_and_distinct_agg() {
        let e = parse_expression("COUNT(*)").unwrap();
        assert!(
            matches!(e, Expr::Func { ref name, ref args, .. } if name == "COUNT" && args.is_empty())
        );
        let e = parse_expression("COUNT(DISTINCT x)").unwrap();
        assert!(matches!(e, Expr::Func { distinct: true, .. }));
    }

    #[test]
    fn parse_wildcards() {
        let s = sel("SELECT *, e.* FROM employees e");
        assert!(matches!(s.items[0], SelectItem::Wildcard));
        assert!(matches!(&s.items[1], SelectItem::QualifiedWildcard(q) if q == "e"));
    }
}
