//! Literal extraction into bind parameters.
//!
//! [`parameterize`] rewrites a query so that constant literals in
//! predicate positions (`WHERE` / `HAVING` / `JOIN ... ON`, recursively
//! through subqueries and derived tables) become positional
//! [`Expr::Param`] slots, returning the extracted values alongside the
//! rewritten query. One cached plan can then serve the whole query
//! family (`salary = 100` vs `salary = 200`), with adaptive cursor
//! sharing deciding upstream whether the bound values still fit the
//! plan's selectivity bucket.
//!
//! Extraction rules:
//! - only predicate positions are touched: the SELECT list, `GROUP BY`,
//!   `ORDER BY`, and window specifications keep their literals (they
//!   shape the output, not the plan's selectivity);
//! - `ROWNUM` comparisons keep their bound — the optimizer folds
//!   `ROWNUM <= k` into a limit at plan time, so `k` is part of the
//!   plan's shape;
//! - `LIKE` patterns stay literal (pattern shape drives the estimator);
//! - `TRUE`/`FALSE`/`NULL` stay literal (three-valued-logic shortcuts
//!   fire at normalization time);
//! - a statement that already contains explicit `?` placeholders is
//!   returned untouched: the caller controls its binds.
//!
//! Slots are assigned in token order (the order the clauses render in),
//! so a family key produced by [`crate::render::render_query`] re-parses
//! with identical slot numbering — extracted-literal and hand-written
//! `?` forms of the same query family share one cache key *and* one
//! slot layout.

use crate::ast::*;
use cbqt_common::value::Value;

/// Result of [`parameterize`].
#[derive(Debug, Clone)]
pub struct Parameterized {
    /// The rewritten query; extracted literal sites hold `Expr::Param`.
    pub query: Query,
    /// Extracted literal values, indexed by slot. Empty when the input
    /// already used explicit placeholders (or had nothing to extract).
    pub binds: Vec<Value>,
}

/// Extract predicate literals into bind parameters. See the module
/// docs for the eligibility rules.
pub fn parameterize(q: &Query) -> Parameterized {
    if count_params(q) > 0 {
        return Parameterized {
            query: q.clone(),
            binds: Vec::new(),
        };
    }
    let mut x = Extract { binds: Vec::new() };
    let query = x.query(q);
    Parameterized {
        query,
        binds: x.binds,
    }
}

/// Number of bind slots a query expects (`max slot + 1` across every
/// clause, including subqueries and derived tables).
pub fn count_params(q: &Query) -> usize {
    let mut max: Option<usize> = None;
    for_each_expr(q, &mut |e| {
        if let Expr::Param(i) = e {
            max = Some(max.map_or(*i, |m| m.max(*i)));
        }
    });
    max.map_or(0, |m| m + 1)
}

/// Lowercased names of every base table the query references, including
/// inside subqueries and derived tables — duplicates removed, order of
/// first mention. Used to pin cached plans to per-table catalog
/// versions (a superset is safe: a plan invalidated for a table the
/// optimizer later eliminated is merely recompiled).
pub fn collect_table_names(q: &Query) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for_each_query(q, &mut |q| {
        for_each_select(&q.body, &mut |s| {
            for t in &s.from {
                table_names(t, &mut names);
            }
        });
    });
    names
}

fn table_names(t: &TableRef, out: &mut Vec<String>) {
    match t {
        TableRef::Table { name, .. } => {
            let lower = name.to_ascii_lowercase();
            if !out.contains(&lower) {
                out.push(lower);
            }
        }
        TableRef::Derived { .. } => {} // inner query visited separately
        TableRef::Join { left, right, .. } => {
            table_names(left, out);
            table_names(right, out);
        }
    }
}

// ---------------------------------------------------------------------
// deep traversal helpers
// ---------------------------------------------------------------------

/// Visit `q` and every nested query (derived tables and expression
/// subqueries, to any depth).
pub fn for_each_query<'a>(q: &'a Query, f: &mut impl FnMut(&'a Query)) {
    let mut stack: Vec<&'a Query> = vec![q];
    while let Some(q) = stack.pop() {
        f(q);
        let mut kids: Vec<&'a Query> = Vec::new();
        for_each_select(&q.body, &mut |s| {
            for item in &s.items {
                if let SelectItem::Expr { expr, .. } = item {
                    nested_queries(expr, &mut kids);
                }
            }
            for t in &s.from {
                from_queries(t, &mut kids);
            }
            for e in [&s.where_clause, &s.having].into_iter().flatten() {
                nested_queries(e, &mut kids);
            }
            if let Some(g) = &s.group_by {
                for e in &g.exprs {
                    nested_queries(e, &mut kids);
                }
            }
        });
        for o in &q.order_by {
            nested_queries(&o.expr, &mut kids);
        }
        // Preorder, left to right: push children reversed so the first
        // child pops first.
        stack.extend(kids.into_iter().rev());
    }
}

/// Visit every `Select` block in a set-expression tree (not descending
/// into derived tables or subqueries — pair with [`for_each_query`]).
fn for_each_select<'a>(s: &'a SetExpr, f: &mut impl FnMut(&'a Select)) {
    match s {
        SetExpr::Select(sel) => f(sel),
        SetExpr::SetOp { left, right, .. } => {
            for_each_select(left, f);
            for_each_select(right, f);
        }
    }
}

fn from_queries<'a>(t: &'a TableRef, out: &mut Vec<&'a Query>) {
    match t {
        TableRef::Table { .. } => {}
        TableRef::Derived { query, .. } => out.push(query),
        TableRef::Join {
            left, right, on, ..
        } => {
            from_queries(left, out);
            from_queries(right, out);
            if let Some(e) = on {
                nested_queries(e, out);
            }
        }
    }
}

fn nested_queries<'a>(e: &'a Expr, out: &mut Vec<&'a Query>) {
    match e {
        Expr::InSubquery { exprs, query, .. } => {
            for e in exprs {
                nested_queries(e, out);
            }
            out.push(query);
        }
        Expr::Exists { query, .. } => out.push(query),
        Expr::Quantified { left, query, .. } => {
            nested_queries(left, out);
            out.push(query);
        }
        Expr::ScalarSubquery(query) => out.push(query),
        Expr::Binary { left, right, .. } => {
            nested_queries(left, out);
            nested_queries(right, out);
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => nested_queries(expr, out),
        Expr::InList { expr, list, .. } => {
            nested_queries(expr, out);
            for e in list {
                nested_queries(e, out);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            nested_queries(expr, out);
            nested_queries(low, out);
            nested_queries(high, out);
        }
        Expr::Like { expr, pattern, .. } => {
            nested_queries(expr, out);
            nested_queries(pattern, out);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(o) = operand {
                nested_queries(o, out);
            }
            for (w, t) in branches {
                nested_queries(w, out);
                nested_queries(t, out);
            }
            if let Some(e) = else_expr {
                nested_queries(e, out);
            }
        }
        Expr::Func { args, window, .. } => {
            for a in args {
                nested_queries(a, out);
            }
            if let Some(w) = window {
                for p in &w.partition_by {
                    nested_queries(p, out);
                }
                for o in &w.order_by {
                    nested_queries(&o.expr, out);
                }
            }
        }
        Expr::Column { .. } | Expr::Literal(_) | Expr::Param(_) | Expr::Rownum => {}
    }
}

/// Visit every expression node in the statement, including inside
/// subqueries and derived tables.
pub fn for_each_expr(q: &Query, f: &mut impl FnMut(&Expr)) {
    for_each_query(q, &mut |q| {
        for_each_select(&q.body, &mut |s| {
            for item in &s.items {
                if let SelectItem::Expr { expr, .. } = item {
                    expr.walk(f);
                }
            }
            for t in &s.from {
                from_exprs(t, f);
            }
            for e in [&s.where_clause, &s.having].into_iter().flatten() {
                e.walk(f);
            }
            if let Some(g) = &s.group_by {
                for e in &g.exprs {
                    e.walk(f);
                }
            }
        });
        for o in &q.order_by {
            o.expr.walk(f);
        }
    });
}

fn from_exprs(t: &TableRef, f: &mut impl FnMut(&Expr)) {
    match t {
        TableRef::Table { .. } | TableRef::Derived { .. } => {}
        TableRef::Join {
            left, right, on, ..
        } => {
            from_exprs(left, f);
            from_exprs(right, f);
            if let Some(e) = on {
                e.walk(f);
            }
        }
    }
}

// ---------------------------------------------------------------------
// the extraction rewrite
// ---------------------------------------------------------------------

struct Extract {
    binds: Vec<Value>,
}

impl Extract {
    // Traversal order mirrors `render_query` exactly so slot numbers
    // match token order in the rendered family key.

    fn query(&mut self, q: &Query) -> Query {
        Query {
            body: self.set_expr(&q.body),
            order_by: q.order_by.clone(),
        }
    }

    fn set_expr(&mut self, s: &SetExpr) -> SetExpr {
        match s {
            SetExpr::Select(sel) => SetExpr::Select(Box::new(self.select(sel))),
            SetExpr::SetOp { op, left, right } => SetExpr::SetOp {
                op: *op,
                left: Box::new(self.set_expr(left)),
                right: Box::new(self.set_expr(right)),
            },
        }
    }

    fn select(&mut self, s: &Select) -> Select {
        Select {
            distinct: s.distinct,
            items: s.items.clone(),
            from: s.from.iter().map(|t| self.table_ref(t)).collect(),
            where_clause: s.where_clause.as_ref().map(|e| self.expr(e)),
            group_by: s.group_by.clone(),
            having: s.having.as_ref().map(|e| self.expr(e)),
        }
    }

    fn table_ref(&mut self, t: &TableRef) -> TableRef {
        match t {
            TableRef::Table { .. } => t.clone(),
            TableRef::Derived { query, alias } => TableRef::Derived {
                query: Box::new(self.query(query)),
                alias: alias.clone(),
            },
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => TableRef::Join {
                left: Box::new(self.table_ref(left)),
                right: Box::new(self.table_ref(right)),
                kind: *kind,
                on: on.as_ref().map(|e| self.expr(e)),
            },
        }
    }

    /// Rewrite within a predicate position.
    fn expr(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::Literal(v) if extractable(v) => {
                let slot = self.binds.len();
                self.binds.push(v.clone());
                Expr::Param(slot)
            }
            // ROWNUM bounds are folded into the plan; keep them literal.
            Expr::Binary { op, left, right }
                if op.is_comparison()
                    && (matches!(**left, Expr::Rownum) || matches!(**right, Expr::Rownum)) =>
            {
                e.clone()
            }
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(self.expr(left)),
                right: Box::new(self.expr(right)),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(self.expr(expr)),
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(self.expr(expr)),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(self.expr(expr)),
                list: list.iter().map(|e| self.expr(e)).collect(),
                negated: *negated,
            },
            Expr::InSubquery {
                exprs,
                query,
                negated,
            } => Expr::InSubquery {
                exprs: exprs.iter().map(|e| self.expr(e)).collect(),
                query: Box::new(self.query(query)),
                negated: *negated,
            },
            Expr::Exists { query, negated } => Expr::Exists {
                query: Box::new(self.query(query)),
                negated: *negated,
            },
            Expr::Quantified {
                op,
                quant,
                left,
                query,
            } => Expr::Quantified {
                op: *op,
                quant: *quant,
                left: Box::new(self.expr(left)),
                query: Box::new(self.query(query)),
            },
            Expr::ScalarSubquery(q) => Expr::ScalarSubquery(Box::new(self.query(q))),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(self.expr(expr)),
                low: Box::new(self.expr(low)),
                high: Box::new(self.expr(high)),
                negated: *negated,
            },
            // The pattern's shape drives selectivity estimation; only
            // the tested expression is rewritten.
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(self.expr(expr)),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => Expr::Case {
                operand: operand.as_ref().map(|o| Box::new(self.expr(o))),
                branches: branches
                    .iter()
                    .map(|(w, t)| (self.expr(w), self.expr(t)))
                    .collect(),
                else_expr: else_expr.as_ref().map(|e| Box::new(self.expr(e))),
            },
            // Window clauses are not predicate positions; args are.
            Expr::Func {
                name,
                args,
                distinct,
                window,
            } => Expr::Func {
                name: name.clone(),
                args: args.iter().map(|a| self.expr(a)).collect(),
                distinct: *distinct,
                window: window.clone(),
            },
            Expr::Column { .. } | Expr::Literal(_) | Expr::Param(_) | Expr::Rownum => e.clone(),
        }
    }
}

fn extractable(v: &Value) -> bool {
    matches!(
        v,
        Value::Int(_) | Value::Double(_) | Value::Str(_) | Value::Date(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::render::render_query;

    fn param(q: &str) -> Parameterized {
        parameterize(&parse_query(q).unwrap())
    }

    #[test]
    fn extracts_predicate_literals_in_token_order() {
        let p = param("SELECT name FROM emp WHERE salary > 100 AND dept = 'eng'");
        assert_eq!(p.binds, vec![Value::Int(100), Value::str("eng")]);
        let r = render_query(&p.query);
        assert_eq!(
            r,
            "SELECT name FROM emp WHERE ((salary > ?) AND (dept = ?))"
        );
        // The rendered family key re-parses to the identical AST — slot
        // numbering included.
        assert_eq!(parse_query(&r).unwrap(), p.query);
    }

    #[test]
    fn family_members_share_a_key() {
        let a = render_query(&param("SELECT * FROM emp WHERE salary = 100").query);
        let b = render_query(&param("select * from EMP where salary=200").query);
        assert_eq!(a, b);
    }

    #[test]
    fn select_list_group_by_and_order_by_stay_literal() {
        let p = param("SELECT salary + 5 FROM emp GROUP BY dept_id, 2 ORDER BY 1");
        assert!(p.binds.is_empty());
        let r = render_query(&p.query);
        assert!(
            r.contains("(salary + 5)") && r.contains("ORDER BY 1"),
            "{r}"
        );
    }

    #[test]
    fn rownum_like_bool_and_null_stay_literal() {
        let p = param(
            "SELECT * FROM emp WHERE ROWNUM <= 5 AND name LIKE 'a%' \
             AND active = TRUE AND x IS NULL AND salary > 10",
        );
        assert_eq!(p.binds, vec![Value::Int(10)]);
        let r = render_query(&p.query);
        assert!(r.contains("ROWNUM <= 5"), "{r}");
        assert!(r.contains("LIKE 'a%'"), "{r}");
        assert!(r.contains("= TRUE"), "{r}");
    }

    #[test]
    fn subqueries_and_join_on_participate() {
        let p = param(
            "SELECT * FROM emp e JOIN dept d ON e.dept_id = d.id AND d.region = 7 \
             WHERE EXISTS (SELECT 1 FROM bonus b WHERE b.emp_id = e.id AND b.amount > 50)",
        );
        assert_eq!(p.binds, vec![Value::Int(7), Value::Int(50)]);
        let r = render_query(&p.query);
        assert_eq!(parse_query(&r).unwrap(), p.query);
    }

    #[test]
    fn explicit_placeholders_disable_extraction() {
        let p = param("SELECT * FROM emp WHERE salary = ? AND dept = 'eng'");
        assert!(p.binds.is_empty());
        assert_eq!(count_params(&p.query), 1);
        let r = render_query(&p.query);
        assert!(r.contains("= ?") && r.contains("'eng'"), "{r}");
    }

    #[test]
    fn explicit_and_extracted_forms_share_key_and_slots() {
        let lit = param("SELECT * FROM emp WHERE salary > 100 AND dept = 'eng'");
        let bound = param("SELECT * FROM emp WHERE salary > ? AND dept = ?");
        assert_eq!(render_query(&lit.query), render_query(&bound.query));
        assert_eq!(lit.query, bound.query);
    }

    #[test]
    fn counts_params_in_nested_positions() {
        let q = parse_query(
            "SELECT (SELECT max(x) FROM t WHERE y = ?) FROM s \
             WHERE s.a IN (SELECT b FROM u WHERE c = ?) ORDER BY ?",
        )
        .unwrap();
        assert_eq!(count_params(&q), 3);
    }

    #[test]
    fn collects_tables_from_all_levels() {
        let q = parse_query(
            "SELECT * FROM emp e, (SELECT * FROM dept) v \
             WHERE EXISTS (SELECT 1 FROM bonus WHERE bonus.emp_id = e.id) \
             AND e.id IN (SELECT emp_id FROM Emp)",
        )
        .unwrap();
        assert_eq!(collect_table_names(&q), vec!["emp", "dept", "bonus"]);
    }

    #[test]
    fn in_list_items_are_extracted() {
        let p = param("SELECT * FROM emp WHERE dept_id IN (1, 2, 3)");
        assert_eq!(p.binds, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
    }
}
