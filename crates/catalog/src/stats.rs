//! Optimizer statistics: row counts, per-column NDV/min/max/nulls and
//! equi-width histograms.
//!
//! Statistics may be absent (`TableStats::analyzed == false`), in which
//! case the optimizer falls back to defaults or *dynamic sampling*
//! (simulated in `cbqt-optimizer`), mirroring §3.4.4 of the paper.

use cbqt_common::Value;

/// Per-column statistics.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub ndv: u64,
    /// Number of NULLs.
    pub nulls: u64,
    pub min: Option<Value>,
    pub max: Option<Value>,
    /// Optional equi-width histogram over the numeric range.
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Selectivity of `col = literal`.
    pub fn eq_selectivity(&self, rows: u64, value: Option<&Value>) -> f64 {
        if rows == 0 {
            return 0.0;
        }
        if let (Some(h), Some(v)) = (&self.histogram, value) {
            if let Some(s) = h.eq_selectivity(v) {
                return s;
            }
        }
        if self.ndv == 0 {
            return 0.01;
        }
        let non_null = (rows - self.nulls.min(rows)) as f64 / rows as f64;
        non_null / self.ndv as f64
    }

    /// Selectivity of a range predicate `col op literal`.
    pub fn range_selectivity(&self, value: &Value, op_lt: bool, inclusive: bool) -> f64 {
        if let Some(h) = &self.histogram {
            if let Some(s) = h.range_selectivity(value, op_lt) {
                return s;
            }
        }
        match (
            self.min.as_ref().and_then(|v| v.as_f64()),
            self.max.as_ref().and_then(|v| v.as_f64()),
            value.as_f64(),
        ) {
            (Some(lo), Some(hi), Some(v)) if hi > lo => {
                let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                let s = if op_lt { frac } else { 1.0 - frac };
                // nudge for inclusivity on discrete domains
                let s = if inclusive {
                    s + 1.0 / self.ndv.max(1) as f64
                } else {
                    s
                };
                s.clamp(0.0, 1.0)
            }
            _ => 0.33, // the classic System-R default for an unknown range
        }
    }
}

/// Equi-width histogram over a numeric column.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub lo: f64,
    pub hi: f64,
    /// Row count per bucket.
    pub buckets: Vec<u64>,
    pub total: u64,
}

impl Histogram {
    /// Builds an equi-width histogram from numeric values.
    pub fn build(values: impl Iterator<Item = f64>, nbuckets: usize) -> Option<Histogram> {
        let vals: Vec<f64> = values.collect();
        if vals.is_empty() || nbuckets == 0 {
            return None;
        }
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut buckets = vec![0u64; nbuckets];
        let width = (hi - lo).max(f64::MIN_POSITIVE);
        for v in &vals {
            let mut b = (((v - lo) / width) * nbuckets as f64) as usize;
            if b >= nbuckets {
                b = nbuckets - 1;
            }
            buckets[b] += 1;
        }
        Some(Histogram {
            lo,
            hi,
            buckets,
            total: vals.len() as u64,
        })
    }

    /// Selectivity of equality against this histogram (approximated as
    /// bucket frequency / bucket width assumed uniform).
    pub fn eq_selectivity(&self, v: &Value) -> Option<f64> {
        let x = v.as_f64()?;
        if self.total == 0 {
            return Some(0.0);
        }
        if x < self.lo || x > self.hi {
            return Some(0.0);
        }
        let n = self.buckets.len();
        let width = (self.hi - self.lo).max(f64::MIN_POSITIVE);
        let mut b = (((x - self.lo) / width) * n as f64) as usize;
        if b >= n {
            b = n - 1;
        }
        // assume ~width distinct values per bucket
        let per_bucket_ndv = (width / n as f64).max(1.0);
        Some((self.buckets[b] as f64 / self.total as f64) / per_bucket_ndv)
    }

    /// Selectivity of `col < v` (`op_lt`) or `col > v`.
    pub fn range_selectivity(&self, v: &Value, op_lt: bool) -> Option<f64> {
        let x = v.as_f64()?;
        if self.total == 0 {
            return Some(0.0);
        }
        let n = self.buckets.len() as f64;
        let width = (self.hi - self.lo).max(f64::MIN_POSITIVE);
        let pos = (((x - self.lo) / width) * n).clamp(0.0, n);
        let full = pos.floor() as usize;
        let mut below = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            if i < full {
                below += b;
            } else if i == full {
                below += ((pos - full as f64) * *b as f64) as u64;
            }
        }
        let frac = below as f64 / self.total as f64;
        Some(if op_lt { frac } else { 1.0 - frac })
    }
}

/// Per-table statistics.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// True once ANALYZE has populated the numbers.
    pub analyzed: bool,
    pub rows: u64,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    pub fn column(&self, i: usize) -> Option<&ColumnStats> {
        self.columns.get(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_selectivity_uses_ndv() {
        let cs = ColumnStats {
            ndv: 10,
            nulls: 0,
            min: None,
            max: None,
            histogram: None,
        };
        assert!((cs.eq_selectivity(100, None) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn eq_selectivity_accounts_for_nulls() {
        let cs = ColumnStats {
            ndv: 10,
            nulls: 50,
            min: None,
            max: None,
            histogram: None,
        };
        assert!((cs.eq_selectivity(100, None) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn eq_selectivity_default_when_no_stats() {
        let cs = ColumnStats::default();
        assert!((cs.eq_selectivity(100, None) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn range_selectivity_interpolates() {
        let cs = ColumnStats {
            ndv: 100,
            nulls: 0,
            min: Some(Value::Int(0)),
            max: Some(Value::Int(100)),
            histogram: None,
        };
        let s = cs.range_selectivity(&Value::Int(25), true, false);
        assert!((s - 0.25).abs() < 0.02, "{s}");
        let s = cs.range_selectivity(&Value::Int(25), false, false);
        assert!((s - 0.75).abs() < 0.02, "{s}");
    }

    #[test]
    fn range_selectivity_defaults_without_minmax() {
        let cs = ColumnStats::default();
        assert!((cs.range_selectivity(&Value::Int(5), true, false) - 0.33).abs() < 1e-9);
    }

    #[test]
    fn histogram_build_and_range() {
        let h = Histogram::build((0..1000).map(|i| i as f64), 10).unwrap();
        assert_eq!(h.total, 1000);
        assert_eq!(h.buckets.len(), 10);
        let s = h.range_selectivity(&Value::Int(500), true).unwrap();
        assert!((s - 0.5).abs() < 0.05, "{s}");
        // out-of-range equality is zero
        assert_eq!(h.eq_selectivity(&Value::Int(5000)), Some(0.0));
    }

    #[test]
    fn histogram_skewed_range() {
        // 90% of the data below 10, the rest spread to 100
        let vals = (0..900)
            .map(|i| (i % 10) as f64)
            .chain((0..100).map(|i| 10.0 + i as f64 * 0.9));
        let h = Histogram::build(vals, 20).unwrap();
        let s = h.range_selectivity(&Value::Int(10), true).unwrap();
        assert!(s > 0.8, "skew should be visible: {s}");
    }

    #[test]
    fn histogram_empty_input() {
        assert!(Histogram::build(std::iter::empty(), 10).is_none());
    }
}
