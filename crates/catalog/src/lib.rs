//! Catalog: table/column/index/constraint metadata plus optimizer
//! statistics.
//!
//! The statistics model follows what the paper's cost decisions need:
//! per-table row counts, per-column NDV / min / max / null counts, and
//! optional equi-width histograms. Constraints (PK / FK / UNIQUE /
//! NOT NULL) drive the *join elimination* transformation; index metadata
//! drives access-path choice and is a key input to the cost-based
//! unnesting decision ("indexes on the local columns in the subquery
//! correlation", §2.2.1).

pub mod feedback;
pub mod schema;
pub mod stats;

pub use feedback::{selectivity_band, FeedbackKey, FeedbackStore};
pub use schema::{
    Catalog, Column, ColumnRef, Constraint, ForeignKey, Index, IndexId, Table, TableId,
};
pub use stats::{ColumnStats, Histogram, TableStats};
