//! Schema objects: tables, columns, indexes, constraints.

use crate::stats::TableStats;
use cbqt_common::{DataType, Error, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies a table in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Identifies an index in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexId(pub u32);

/// `(table, column ordinal)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    pub table: TableId,
    pub column: usize,
}

/// Column metadata.
#[derive(Debug, Clone)]
pub struct Column {
    pub name: String,
    pub data_type: DataType,
    pub not_null: bool,
}

/// A foreign-key constraint: `columns` of the child table reference
/// `parent_columns` of `parent`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    pub columns: Vec<usize>,
    pub parent: TableId,
    pub parent_columns: Vec<usize>,
}

/// Table-level constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    PrimaryKey(Vec<usize>),
    Unique(Vec<usize>),
    ForeignKey(ForeignKey),
}

/// Secondary index metadata. All indexes are multi-column B-trees; the
/// storage layer maintains the actual structures.
#[derive(Debug, Clone)]
pub struct Index {
    pub id: IndexId,
    pub name: String,
    pub table: TableId,
    pub columns: Vec<usize>,
    pub unique: bool,
}

/// Table metadata.
#[derive(Debug)]
pub struct Table {
    pub id: TableId,
    pub name: String,
    pub columns: Vec<Column>,
    pub constraints: Vec<Constraint>,
    pub stats: TableStats,
    /// Per-table change counter (see [`Catalog::table_version`]).
    /// Atomic so a committing transaction can bump it through a shared
    /// `&Catalog` — version bumps must not require exclusive catalog
    /// access, or readers would block on writers.
    version: AtomicU64,
}

impl Clone for Table {
    fn clone(&self) -> Table {
        Table {
            id: self.id,
            name: self.name.clone(),
            columns: self.columns.clone(),
            constraints: self.constraints.clone(),
            stats: self.stats.clone(),
            version: AtomicU64::new(self.version.load(Ordering::SeqCst)),
        }
    }
}

impl Table {
    /// Finds a column ordinal by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// The primary-key column set, if declared.
    pub fn primary_key(&self) -> Option<&[usize]> {
        self.constraints.iter().find_map(|c| match c {
            Constraint::PrimaryKey(cols) => Some(cols.as_slice()),
            _ => None,
        })
    }

    /// True if `cols` is declared unique (as a PK or UNIQUE constraint,
    /// in any column order).
    pub fn is_unique_key(&self, cols: &[usize]) -> bool {
        self.constraints.iter().any(|c| match c {
            Constraint::PrimaryKey(k) | Constraint::Unique(k) => {
                // a superset of a unique key is still unique
                k.iter().all(|c| cols.contains(c))
            }
            Constraint::ForeignKey(_) => false,
        })
    }

    /// Foreign keys declared on this table.
    pub fn foreign_keys(&self) -> impl Iterator<Item = &ForeignKey> {
        self.constraints.iter().filter_map(|c| match c {
            Constraint::ForeignKey(fk) => Some(fk),
            _ => None,
        })
    }
}

/// The system catalog.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    indexes: Vec<Index>,
    /// Monotonic schema/statistics version (see [`Catalog::version`]).
    /// Atomic for the same reason as [`Table::version`]: commit-time
    /// bumps go through a shared `&Catalog`.
    version: AtomicU64,
}

impl Clone for Catalog {
    fn clone(&self) -> Catalog {
        Catalog {
            tables: self.tables.clone(),
            by_name: self.by_name.clone(),
            indexes: self.indexes.clone(),
            version: AtomicU64::new(self.version.load(Ordering::SeqCst)),
        }
    }
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// The catalog's monotonic version counter: bumped by every DDL
    /// (table/index creation) and every mutable table access (the path
    /// statistics updates take). Plans compiled under an older version
    /// may rely on schema or statistics that no longer hold — the plan
    /// cache uses this counter as its invalidation guard.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Records a schema- or data-visible change that plans may depend
    /// on (callers that mutate storage without touching the catalog —
    /// DML commit — bump explicitly through this). Takes `&self`: the
    /// counters are atomic so a committing transaction can bump them
    /// without exclusive catalog access.
    pub fn bump_version(&self) {
        self.version.fetch_add(1, Ordering::SeqCst);
    }

    /// The per-table change counter: bumped when *this table's* schema,
    /// statistics, data or indexes change, and untouched by changes to
    /// other tables. The plan cache records `(table, version)` pairs per
    /// cached plan so that a write to `t1` leaves plans on `t2` warm.
    /// Unknown ids report 0 (a dropped/foreign table can never validate).
    pub fn table_version(&self, id: TableId) -> u64 {
        self.tables
            .get(id.0 as usize)
            .map_or(0, |t| t.version.load(Ordering::SeqCst))
    }

    /// Bumps one table's change counter (and the global counter — the
    /// global version stays a superset signal for whole-catalog
    /// observers). The path a committing DML transaction takes after
    /// publishing its versions.
    pub fn bump_table_version(&self, id: TableId) {
        if let Some(t) = self.tables.get(id.0 as usize) {
            t.version.fetch_add(1, Ordering::SeqCst);
        }
        self.bump_version();
    }

    /// Registers a table; fails on duplicate name.
    pub fn add_table(
        &mut self,
        name: &str,
        columns: Vec<Column>,
        constraints: Vec<Constraint>,
    ) -> Result<TableId> {
        let key = name.to_ascii_lowercase();
        if self.by_name.contains_key(&key) {
            return Err(Error::catalog(format!("table {name} already exists")));
        }
        let id = TableId(self.tables.len() as u32);
        for c in &constraints {
            self.validate_constraint(id, columns.len(), c)?;
        }
        self.tables.push(Table {
            id,
            name: name.to_string(),
            columns,
            constraints,
            stats: TableStats::default(),
            version: AtomicU64::new(0),
        });
        self.by_name.insert(key, id);
        self.bump_version();
        Ok(id)
    }

    fn validate_constraint(&self, _id: TableId, ncols: usize, c: &Constraint) -> Result<()> {
        let check = |cols: &[usize]| -> Result<()> {
            if cols.iter().any(|&c| c >= ncols) {
                return Err(Error::catalog("constraint references unknown column"));
            }
            Ok(())
        };
        match c {
            Constraint::PrimaryKey(cols) | Constraint::Unique(cols) => check(cols),
            Constraint::ForeignKey(fk) => {
                check(&fk.columns)?;
                let parent = self.table(fk.parent)?;
                if fk.parent_columns.iter().any(|&c| c >= parent.columns.len()) {
                    return Err(Error::catalog(
                        "foreign key references unknown parent column",
                    ));
                }
                if fk.columns.len() != fk.parent_columns.len() {
                    return Err(Error::catalog("foreign key arity mismatch"));
                }
                Ok(())
            }
        }
    }

    /// Registers an index over existing columns; fails on duplicates.
    pub fn add_index(
        &mut self,
        name: &str,
        table: TableId,
        columns: Vec<usize>,
        unique: bool,
    ) -> Result<IndexId> {
        if self
            .indexes
            .iter()
            .any(|i| i.name.eq_ignore_ascii_case(name))
        {
            return Err(Error::catalog(format!("index {name} already exists")));
        }
        let t = self.table(table)?;
        if columns.is_empty() || columns.iter().any(|&c| c >= t.columns.len()) {
            return Err(Error::catalog("index references unknown column"));
        }
        let id = IndexId(self.indexes.len() as u32);
        self.indexes.push(Index {
            id,
            name: name.to_string(),
            table,
            columns,
            unique,
        });
        // an index changes what plans are possible on *this* table only
        self.bump_table_version(table);
        Ok(id)
    }

    pub fn table(&self, id: TableId) -> Result<&Table> {
        self.tables
            .get(id.0 as usize)
            .ok_or_else(|| Error::catalog(format!("unknown table id {}", id.0)))
    }

    /// Mutable table access — the path statistics recomputation takes,
    /// so it conservatively counts as a version bump (global and for
    /// the accessed table).
    pub fn table_mut(&mut self, id: TableId) -> Result<&mut Table> {
        self.version.fetch_add(1, Ordering::SeqCst);
        let t = self
            .tables
            .get_mut(id.0 as usize)
            .ok_or_else(|| Error::catalog(format!("unknown table id {}", id.0)))?;
        t.version.fetch_add(1, Ordering::SeqCst);
        Ok(t)
    }

    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.by_name
            .get(&name.to_ascii_lowercase())
            .map(|id| &self.tables[id.0 as usize])
    }

    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter()
    }

    pub fn indexes(&self) -> impl Iterator<Item = &Index> {
        self.indexes.iter()
    }

    /// All indexes on a given table.
    pub fn indexes_on(&self, table: TableId) -> impl Iterator<Item = &Index> {
        self.indexes.iter().filter(move |i| i.table == table)
    }

    /// Finds an index whose leading column(s) match `cols` exactly as a
    /// prefix, preferring unique indexes and longer prefixes.
    pub fn best_index_for(&self, table: TableId, cols: &[usize]) -> Option<&Index> {
        self.indexes_on(table)
            .filter(|ix| {
                let n = ix.columns.len().min(cols.len());
                n > 0 && ix.columns[..n].iter().all(|c| cols.contains(c))
            })
            .max_by_key(|ix| {
                let prefix = ix.columns.iter().take_while(|c| cols.contains(c)).count();
                // on ties prefer unique, then the narrower index
                (prefix, ix.unique, std::cmp::Reverse(ix.columns.len()))
            })
    }

    /// True if there is any index whose *leading* column is `col` — the
    /// condition the paper's pre-10g heuristic unnesting rule checks.
    pub fn has_index_with_leading(&self, table: TableId, col: usize) -> bool {
        self.indexes_on(table)
            .any(|ix| ix.columns.first() == Some(&col))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbqt_common::DataType;

    fn col(name: &str) -> Column {
        Column {
            name: name.into(),
            data_type: DataType::Int,
            not_null: false,
        }
    }

    fn sample() -> (Catalog, TableId, TableId) {
        let mut cat = Catalog::new();
        let dept = cat
            .add_table(
                "departments",
                vec![col("dept_id"), col("name")],
                vec![Constraint::PrimaryKey(vec![0])],
            )
            .unwrap();
        let emp = cat
            .add_table(
                "employees",
                vec![col("emp_id"), col("dept_id"), col("salary")],
                vec![
                    Constraint::PrimaryKey(vec![0]),
                    Constraint::ForeignKey(ForeignKey {
                        columns: vec![1],
                        parent: dept,
                        parent_columns: vec![0],
                    }),
                ],
            )
            .unwrap();
        (cat, dept, emp)
    }

    #[test]
    fn add_and_lookup_table() {
        let (cat, dept, _) = sample();
        assert_eq!(cat.table_by_name("DEPARTMENTS").unwrap().id, dept);
        assert!(cat.table_by_name("missing").is_none());
        assert_eq!(cat.table(dept).unwrap().column_index("NAME"), Some(1));
    }

    #[test]
    fn duplicate_table_rejected() {
        let (mut cat, _, _) = sample();
        assert!(cat.add_table("Employees", vec![col("x")], vec![]).is_err());
    }

    #[test]
    fn constraint_validation() {
        let mut cat = Catalog::new();
        assert!(cat
            .add_table("t", vec![col("a")], vec![Constraint::PrimaryKey(vec![3])])
            .is_err());
    }

    #[test]
    fn fk_arity_checked() {
        let (mut cat, dept, _) = sample();
        let bad = Constraint::ForeignKey(ForeignKey {
            columns: vec![0],
            parent: dept,
            parent_columns: vec![0, 1],
        });
        assert!(cat.add_table("bad", vec![col("a")], vec![bad]).is_err());
    }

    #[test]
    fn unique_key_recognition() {
        let (cat, dept, emp) = sample();
        let d = cat.table(dept).unwrap();
        assert!(d.is_unique_key(&[0]));
        assert!(d.is_unique_key(&[0, 1])); // superset of PK
        assert!(!d.is_unique_key(&[1]));
        let e = cat.table(emp).unwrap();
        assert_eq!(e.foreign_keys().count(), 1);
    }

    #[test]
    fn index_management() {
        let (mut cat, _, emp) = sample();
        let ix = cat.add_index("i_emp_dept", emp, vec![1], false).unwrap();
        assert_eq!(cat.indexes_on(emp).count(), 1);
        assert_eq!(cat.indexes_on(emp).next().unwrap().id, ix);
        assert!(cat.add_index("i_emp_dept", emp, vec![1], false).is_err());
        assert!(cat.add_index("i_bad", emp, vec![9], false).is_err());
        assert!(cat.has_index_with_leading(emp, 1));
        assert!(!cat.has_index_with_leading(emp, 2));
    }

    #[test]
    fn version_bumps_on_ddl_and_mutable_access() {
        let (mut cat, _, emp) = sample();
        let v0 = cat.version();
        cat.add_index("i_emp_dept", emp, vec![1], false).unwrap();
        let v1 = cat.version();
        assert!(v1 > v0);
        // the statistics-update path goes through table_mut
        cat.table_mut(emp).unwrap().stats.rows = 7;
        assert!(cat.version() > v1);
        let v2 = cat.version();
        cat.bump_version();
        assert_eq!(cat.version(), v2 + 1);
        // read-only access does not bump
        let _ = cat.table(emp).unwrap();
        assert_eq!(cat.version(), v2 + 1);
    }

    #[test]
    fn table_versions_are_independent() {
        let (mut cat, dept, emp) = sample();
        let (d0, e0) = (cat.table_version(dept), cat.table_version(emp));
        // writing one table leaves the other's counter untouched
        cat.bump_table_version(emp);
        assert_eq!(cat.table_version(dept), d0);
        assert_eq!(cat.table_version(emp), e0 + 1);
        // statistics updates (table_mut) bump only the touched table
        cat.table_mut(dept).unwrap().stats.rows = 3;
        assert_eq!(cat.table_version(dept), d0 + 1);
        assert_eq!(cat.table_version(emp), e0 + 1);
        // an index bumps the indexed table only
        cat.add_index("ix", emp, vec![1], false).unwrap();
        assert_eq!(cat.table_version(dept), d0 + 1);
        assert_eq!(cat.table_version(emp), e0 + 2);
        // the global counter moved on every change
        assert!(cat.version() >= 3);
        assert_eq!(cat.table_version(TableId(99)), 0);
    }

    #[test]
    fn best_index_prefers_longer_prefix_and_unique() {
        let (mut cat, _, emp) = sample();
        cat.add_index("i1", emp, vec![1], false).unwrap();
        cat.add_index("i2", emp, vec![1, 2], false).unwrap();
        let best = cat.best_index_for(emp, &[1, 2]).unwrap();
        assert_eq!(best.name, "i2");
        let best = cat.best_index_for(emp, &[1]).unwrap();
        assert_eq!(best.name, "i1");
        assert!(cat.best_index_for(emp, &[2]).is_none());
    }
}
