//! Cardinality feedback: observed per-scan row counts fed back into
//! estimation on recompile.
//!
//! The paper's dynamic-sampling machinery (§3.4.4) exists because static
//! NDV-based estimates are often wrong; runtime execution produces the
//! ground truth for free. After a served query finishes, the engine's
//! per-operator metrics are harvested into a [`FeedbackStore`]: one
//! observed cardinality per (table, normalized predicate, selectivity
//! bands) key. On the next compilation of a matching scan the estimator
//! prefers the observed number over its NDV/histogram guess — closing
//! the estimate-vs-actual loop that EXPLAIN ANALYZE only *displays*.
//!
//! Keys carry the per-conjunct [selectivity bands](selectivity_band) of
//! the compiled values, the same banding adaptive cursor sharing uses
//! for plan-cache variants. Actuals observed under one bind band can
//! therefore never poison a sibling band's estimates: `a = :hot` and
//! `a = :rare` produce *different* keys even though their normalized
//! predicate text (`c0=?`) is identical.

use crate::schema::TableId;
use std::collections::HashMap;
use std::sync::Mutex;

/// Decimal selectivity band, shared by adaptive cursor sharing and the
/// feedback store: `log10(sel)` *rounded to the nearest* integer,
/// clamped to `[-9, 0]`, with zero/invalid selectivities pinned to the
/// lowest band. Rounding (rather than flooring) puts exact powers of
/// ten — the selectivities uniform data actually produces — in the
/// middle of a band, so ±1-row histogram noise around them cannot flip
/// the bucket and split a family spuriously; band edges land on
/// half-decades instead.
pub fn selectivity_band(sel: f64) -> i8 {
    if !sel.is_finite() || sel <= 0.0 {
        return -9;
    }
    (sel.min(1.0).log10().round() as i64).clamp(-9, 0) as i8
}

/// Identity of one observed scan cardinality: which table, under which
/// normalized filter, in which selectivity regime.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FeedbackKey {
    pub table: TableId,
    /// Canonical render of the scan's filter conjuncts with comparison
    /// values masked (e.g. `c0=? AND c2>?`), sorted so conjunct order
    /// never splits entries.
    pub pred: String,
    /// One [`selectivity_band`] per conjunct, computed from the value the
    /// scan was compiled (or executed) with. Keying by band keeps
    /// observations from one bind-sharing variant away from its
    /// siblings' estimates.
    pub bands: Vec<i8>,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Observed output cardinality (rows per execution).
    rows: f64,
    /// Table version at observation time; a newer table invalidates the
    /// observation exactly like it invalidates a cached plan.
    version: u64,
    /// LRU stamp.
    stamp: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<FeedbackKey, Slot>,
    clock: u64,
}

/// Shared store of observed cardinalities, held at the database level
/// alongside the plan cache. Thread-safe behind one mutex (entries are
/// tiny and accesses are per-statement, not per-row); a poisoned lock
/// keeps its contents, like the sampling cache.
#[derive(Debug)]
pub struct FeedbackStore {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl FeedbackStore {
    pub const DEFAULT_CAPACITY: usize = 4096;

    pub fn new(capacity: usize) -> FeedbackStore {
        FeedbackStore {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
        }
    }

    /// Records one observed cardinality. Non-finite or negative `rows`
    /// are discarded — the same hygiene `est.rs` applies to
    /// selectivities, so a degenerate counter can never re-enter the
    /// cost model. Re-observing a key overwrites (latest wins: the
    /// newest execution saw the current data).
    pub fn observe(&self, key: FeedbackKey, rows: f64, version: u64) {
        if !rows.is_finite() || rows < 0.0 {
            return;
        }
        let mut inner = self.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        inner.map.insert(
            key,
            Slot {
                rows,
                version,
                stamp,
            },
        );
        if inner.map.len() > self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
            }
        }
    }

    /// The observed cardinality for `key`, if one was recorded against
    /// the current version of the table. Stale observations (the table
    /// changed since) are dropped on probe rather than served.
    pub fn lookup(&self, key: &FeedbackKey, current_version: u64) -> Option<f64> {
        let mut inner = self.lock();
        match inner.map.get(key) {
            Some(s) if s.version == current_version => Some(s.rows),
            Some(_) => {
                inner.map.remove(key);
                None
            }
            None => None,
        }
    }

    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // keep contents on poisoning: entries are plain numbers, always
        // structurally valid
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Default for FeedbackStore {
    fn default() -> FeedbackStore {
        FeedbackStore::new(FeedbackStore::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(pred: &str, bands: &[i8]) -> FeedbackKey {
        FeedbackKey {
            table: TableId(1),
            pred: pred.to_string(),
            bands: bands.to_vec(),
        }
    }

    #[test]
    fn observe_then_lookup_roundtrips() {
        let store = FeedbackStore::default();
        store.observe(key("c0=?", &[-1]), 50.0, 7);
        assert_eq!(store.lookup(&key("c0=?", &[-1]), 7), Some(50.0));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn bands_isolate_sibling_variants() {
        let store = FeedbackStore::default();
        store.observe(key("c0=?", &[-1]), 50.0, 7);
        // same predicate text, different selectivity band: distinct entry
        assert_eq!(store.lookup(&key("c0=?", &[-3]), 7), None);
        store.observe(key("c0=?", &[-3]), 2.0, 7);
        assert_eq!(store.lookup(&key("c0=?", &[-1]), 7), Some(50.0));
        assert_eq!(store.lookup(&key("c0=?", &[-3]), 7), Some(2.0));
    }

    #[test]
    fn stale_version_is_dropped_on_probe() {
        let store = FeedbackStore::default();
        store.observe(key("c0=?", &[-1]), 50.0, 7);
        assert_eq!(store.lookup(&key("c0=?", &[-1]), 8), None);
        // the stale entry is gone, not resurrectable under the old version
        assert_eq!(store.lookup(&key("c0=?", &[-1]), 7), None);
        assert!(store.is_empty());
    }

    #[test]
    fn degenerate_observations_are_discarded() {
        let store = FeedbackStore::default();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            store.observe(key("c0=?", &[-1]), bad, 1);
        }
        assert!(store.is_empty());
        // zero rows is a legitimate observation (empty band)
        store.observe(key("c0=?", &[-9]), 0.0, 1);
        assert_eq!(store.lookup(&key("c0=?", &[-9]), 1), Some(0.0));
    }

    #[test]
    fn latest_observation_wins() {
        let store = FeedbackStore::default();
        store.observe(key("c0=?", &[-1]), 50.0, 7);
        store.observe(key("c0=?", &[-1]), 80.0, 7);
        assert_eq!(store.lookup(&key("c0=?", &[-1]), 7), Some(80.0));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let store = FeedbackStore::new(2);
        store.observe(key("a=?", &[0]), 1.0, 1);
        store.observe(key("b=?", &[0]), 2.0, 1);
        store.observe(key("c=?", &[0]), 3.0, 1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.lookup(&key("a=?", &[0]), 1), None);
        assert_eq!(store.lookup(&key("c=?", &[0]), 1), Some(3.0));
    }

    #[test]
    fn selectivity_band_pins_and_rounds() {
        assert_eq!(selectivity_band(1.0), 0);
        assert_eq!(selectivity_band(0.1), -1);
        assert_eq!(selectivity_band(0.09), -1);
        assert_eq!(selectivity_band(0.001), -3);
        assert_eq!(selectivity_band(0.0), -9);
        assert_eq!(selectivity_band(-0.5), -9);
        assert_eq!(selectivity_band(f64::NAN), -9);
        assert_eq!(selectivity_band(1e-30), -9);
        assert_eq!(selectivity_band(2.0), 0);
    }
}
