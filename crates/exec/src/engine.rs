//! Block execution: scans, joins, aggregation, windows, distinct, order,
//! ROWNUM — plus the TIS subquery cache.

use crate::eval::{compute_windows, AggAcc, Bindings, EvalCtx};
use crate::metrics::ExecMetrics;
use cbqt_catalog::Catalog;
use cbqt_common::failpoint;
use cbqt_common::{Error, ExecutionMode, Governor, Result, Row, Value};
use cbqt_optimizer::{
    weights, AccessPath, BlockPlan, JoinMethod, Layout, PlanIndex, PlanJoinKind, PlanNode,
    PlanRoot, SelectPlan,
};
use cbqt_qgm::{BlockId, QExpr, RefId, SetOp};
use cbqt_storage::{SnapTable, Snapshot, Storage};
use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::ops::Bound;
use std::rc::Rc;

/// TIS cache: (subquery block, correlation binding values) → rows.
type SubqCache = HashMap<(BlockId, Vec<Value>), Rc<Vec<Row>>>;
/// Outer column dependencies per block, memoized.
type OuterColsCache = HashMap<BlockId, Rc<Vec<(RefId, usize)>>>;

/// Execution statistics for one query run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Deterministic work units (same weights as the cost model).
    pub work: f64,
    /// Subquery / lateral-view cache hits (correlation caching).
    pub cache_hits: u64,
    /// Subquery / lateral-view executions (cache misses).
    pub cache_misses: u64,
}

/// The execution engine. Create one per query execution; the TIS cache
/// lives for the duration of the query.
pub struct Engine<'a> {
    pub catalog: &'a Catalog,
    /// The MVCC snapshot every scan reads "as of". Pinned at engine
    /// construction: a statement sees one consistent watermark (plus its
    /// own transaction's uncommitted writes) for its whole execution.
    snapshot: Snapshot,
    work: Cell<f64>,
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
    subq_cache: RefCell<SubqCache>,
    outer_cols: RefCell<OuterColsCache>,
    /// Per-operator runtime counters; `None` (the default) keeps the
    /// execution path free of timing calls.
    metrics: RefCell<Option<ExecMetrics>>,
    /// Whether metric records include wall-clock timing. Light mode
    /// (used by the serving path's feedback harvest) skips the
    /// `Instant::now` pair per operator execution.
    metrics_timing: Cell<bool>,
    /// Stable-id index of the plan being run, installed by
    /// [`Engine::run`] while metrics are enabled: record sites translate
    /// transient element addresses into [`PlanNodeId`]s through it.
    plan_index: RefCell<Option<PlanIndex>>,
    /// Statement-level resource governor; `Governor::unlimited()` (the
    /// default) makes every check a single `Option` test.
    governor: Governor,
    /// Rows processed since the governor was last consulted; batches
    /// per-row [`Engine::tick`] calls into one governor charge per
    /// [`GOVERNOR_BATCH`] rows.
    ticks: Cell<u64>,
    /// Which interpreter executes select blocks: the vectorized batch
    /// engine or the row-at-a-time Volcano oracle.
    mode: ExecutionMode,
    /// Bind values for this execution, indexed by `QExpr::Param` slot.
    /// Empty means "use each param's peek value" (the values the plan
    /// was compiled with).
    params: Vec<Value>,
}

/// Rows processed between governor checks. Small enough that deadlines
/// and budgets trip promptly, large enough to keep atomics off the
/// per-row path. The vectorized engine charges the same multiples of
/// this quantum via [`Engine::tick_rows`], so row-budget outcomes are
/// identical across engines.
const GOVERNOR_BATCH: u64 = 128;

impl<'a> Engine<'a> {
    /// An engine reading the latest committed state (autocommit reads).
    pub fn new(catalog: &'a Catalog, storage: &Storage) -> Engine<'a> {
        Engine::with_snapshot(catalog, storage.snapshot())
    }

    /// An engine reading through an explicit [`Snapshot`] — the path
    /// statements inside an open transaction take.
    pub fn with_snapshot(catalog: &'a Catalog, snapshot: Snapshot) -> Engine<'a> {
        Engine {
            catalog,
            snapshot,
            work: Cell::new(0.0),
            cache_hits: Cell::new(0),
            cache_misses: Cell::new(0),
            subq_cache: RefCell::new(HashMap::new()),
            outer_cols: RefCell::new(HashMap::new()),
            metrics: RefCell::new(None),
            metrics_timing: Cell::new(true),
            plan_index: RefCell::new(None),
            governor: Governor::unlimited(),
            ticks: Cell::new(0),
            mode: ExecutionMode::from_env(),
            params: Vec::new(),
        }
    }

    /// Installs the bind values for this execution. `QExpr::Param`
    /// slots resolve against this vector; slots past its end fall back
    /// to their compiled-in peek values.
    pub fn set_params(&mut self, params: Vec<Value>) {
        self.params = params;
    }

    /// Resolves a bind slot: the installed value, or `peek` when none
    /// was installed for the slot.
    #[inline]
    pub(crate) fn param<'v>(&'v self, slot: usize, peek: &'v Value) -> &'v Value {
        self.params.get(slot).unwrap_or(peek)
    }

    /// The installed bind vector (empty = peeks apply).
    #[inline]
    pub(crate) fn params(&self) -> &[Value] {
        &self.params
    }

    /// The MVCC snapshot this engine reads through.
    #[inline]
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Selects the interpreter for this engine (overriding the
    /// process-wide `CBQT_EXEC_MODE` default).
    pub fn set_mode(&mut self, mode: ExecutionMode) {
        self.mode = mode;
    }

    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Installs the statement's resource governor: row/work budgets and
    /// deadline/cancellation interrupts are observed by every operator
    /// loop (batched per `GOVERNOR_BATCH` rows).
    pub fn set_governor(&mut self, governor: Governor) {
        self.governor = governor;
    }

    /// Charges one processed row against the governor, consulting it
    /// every [`GOVERNOR_BATCH`] rows. Every `next()`-style operator loop
    /// calls this, so a runaway statement is interrupted wherever its
    /// time goes.
    #[inline]
    pub(crate) fn tick(&self) -> Result<()> {
        let t = self.ticks.get().wrapping_add(1);
        self.ticks.set(t);
        if t.is_multiple_of(GOVERNOR_BATCH) {
            self.governor.charge_exec(GOVERNOR_BATCH, self.work.get())?;
        }
        Ok(())
    }

    /// Batch-granular [`Engine::tick`]: charges `n` processed rows in one
    /// call, consulting the governor once per [`GOVERNOR_BATCH`] boundary
    /// crossed. The cumulative charge totals are exactly those the
    /// per-row `tick` path produces, so row-budget outcomes are
    /// identical between the vectorized and Volcano engines.
    #[inline]
    pub(crate) fn tick_rows(&self, n: u64) -> Result<()> {
        let t0 = self.ticks.get();
        let t1 = t0.wrapping_add(n);
        self.ticks.set(t1);
        let blocks = t1 / GOVERNOR_BATCH - t0 / GOVERNOR_BATCH;
        if blocks > 0 {
            self.governor
                .charge_exec(blocks * GOVERNOR_BATCH, self.work.get())?;
        }
        Ok(())
    }

    /// Turns on per-operator metrics collection (EXPLAIN ANALYZE).
    pub fn enable_metrics(&self) {
        *self.metrics.borrow_mut() = Some(ExecMetrics::new());
        self.metrics_timing.set(true);
    }

    /// Turns on metrics collection without per-operator wall-clock
    /// timing: rows/execs/work are still counted (what the feedback
    /// harvest needs), but the two `Instant::now` calls per operator
    /// execution are skipped — cheap enough for every served query.
    pub fn enable_metrics_light(&self) {
        *self.metrics.borrow_mut() = Some(ExecMetrics::new());
        self.metrics_timing.set(false);
    }

    /// Returns the metrics collected since [`Engine::enable_metrics`],
    /// leaving collection enabled with a fresh table.
    pub fn take_metrics(&self) -> Option<ExecMetrics> {
        self.metrics.borrow_mut().as_mut().map(std::mem::take)
    }

    /// Executes a root plan and returns the projected rows.
    pub fn run(&self, plan: &BlockPlan) -> Result<Vec<Row>> {
        if self.metrics.borrow().is_some() {
            let index = PlanIndex::build(plan);
            if let Some(m) = self.metrics.borrow_mut().as_mut() {
                m.bind(index.fingerprint());
            }
            *self.plan_index.borrow_mut() = Some(index);
        }
        self.execute_block(plan, &Bindings::default())
    }

    pub fn stats(&self) -> ExecStats {
        ExecStats {
            work: self.work.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
        }
    }

    pub(crate) fn add_work(&self, w: f64) {
        self.work.set(self.work.get() + w);
    }

    pub(crate) fn work_now(&self) -> f64 {
        self.work.get()
    }

    pub(crate) fn metrics_enabled(&self) -> bool {
        self.metrics.borrow().is_some()
    }

    /// Whether metric records should pay for wall-clock timestamps.
    pub(crate) fn metrics_timed(&self) -> bool {
        self.metrics_timing.get()
    }

    /// Records one execution of the element at transient address `addr`,
    /// translated to its stable [`PlanNodeId`](cbqt_optimizer::PlanNodeId)
    /// through the index installed by [`Engine::run`]. An address outside
    /// the running plan (impossible for engine-recorded elements, but the
    /// defining hazard of address keying) is dropped rather than
    /// attributed to the wrong operator.
    pub(crate) fn record_metric(
        &self,
        addr: usize,
        rows: u64,
        work: f64,
        elapsed: std::time::Duration,
    ) {
        let Some(id) = self
            .plan_index
            .borrow()
            .as_ref()
            .and_then(|ix| ix.id_of_addr(addr))
        else {
            return;
        };
        if let Some(m) = self.metrics.borrow_mut().as_mut() {
            m.record(id, rows, work, elapsed);
        }
    }

    /// Burns CPU for the EXPENSIVE() stand-in UDF: deterministic work
    /// proportional to `units`, visible both in wall time and in the work
    /// counter.
    pub(crate) fn burn(&self, units: f64) {
        self.add_work(units);
        let iters = (units.max(0.0) * 25.0) as u64;
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..iters {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        std::hint::black_box(x);
    }

    /// Executes a (possibly correlated) block plan with caching on the
    /// values of its outer references — the TIS correlation cache.
    pub(crate) fn execute_cached(
        &self,
        plan: &BlockPlan,
        binds: &Bindings<'_>,
    ) -> Result<Rc<Vec<Row>>> {
        let cols = self.outer_cols_of(plan);
        let mut key = Vec::with_capacity(cols.len());
        for (r, c) in cols.iter() {
            key.push(resolve_outer(binds, *r, *c)?);
        }
        let cache_key = (plan.block, key);
        if let Some(hit) = self.subq_cache.borrow().get(&cache_key) {
            self.cache_hits.set(self.cache_hits.get() + 1);
            self.add_work(weights::HASH_PROBE);
            return Ok(Rc::clone(hit));
        }
        self.cache_misses.set(self.cache_misses.get() + 1);
        let rows = Rc::new(self.execute_block(plan, binds)?);
        self.subq_cache
            .borrow_mut()
            .insert(cache_key, Rc::clone(&rows));
        Ok(rows)
    }

    /// The outer `(RefId, column)` pairs a plan depends on (computed once
    /// per block and cached).
    fn outer_cols_of(&self, plan: &BlockPlan) -> Rc<Vec<(RefId, usize)>> {
        if let Some(c) = self.outer_cols.borrow().get(&plan.block) {
            return Rc::clone(c);
        }
        let mut defined: HashSet<RefId> = HashSet::new();
        let mut referenced: Vec<(RefId, usize)> = Vec::new();
        collect_plan_refs(plan, &mut defined, &mut referenced);
        let mut outer: Vec<(RefId, usize)> = Vec::new();
        for (r, c) in referenced {
            if !defined.contains(&r) && !outer.contains(&(r, c)) {
                outer.push((r, c));
            }
        }
        let rc = Rc::new(outer);
        self.outer_cols
            .borrow_mut()
            .insert(plan.block, Rc::clone(&rc));
        rc
    }

    fn execute_block(&self, plan: &BlockPlan, binds: &Bindings<'_>) -> Result<Vec<Row>> {
        if self.metrics.borrow().is_none() {
            return self.execute_block_inner(plan, binds);
        }
        let work0 = self.work.get();
        let start = self.metrics_timed().then(std::time::Instant::now);
        let out = self.execute_block_inner(plan, binds)?;
        let elapsed = start.map(|s| s.elapsed()).unwrap_or_default();
        let work = self.work.get() - work0;
        self.record_metric(
            plan as *const BlockPlan as usize,
            out.len() as u64,
            work,
            elapsed,
        );
        Ok(out)
    }

    fn execute_block_inner(&self, plan: &BlockPlan, binds: &Bindings<'_>) -> Result<Vec<Row>> {
        match &plan.root {
            PlanRoot::Select(sp) => match self.mode {
                ExecutionMode::Volcano => self.exec_select(sp, binds),
                ExecutionMode::Vectorized => crate::batch::exec_select_batched(self, sp, binds),
            },
            PlanRoot::SetOp(sop) => {
                let mut inputs: Vec<Vec<Row>> = Vec::with_capacity(sop.inputs.len());
                for i in &sop.inputs {
                    inputs.push(self.execute_block(i, binds)?);
                }
                match self.mode {
                    ExecutionMode::Volcano => self.exec_setop(sop.op, inputs),
                    ExecutionMode::Vectorized => self.exec_setop_batched(sop.op, inputs),
                }
            }
        }
    }

    fn exec_setop(&self, op: SetOp, mut inputs: Vec<Vec<Row>>) -> Result<Vec<Row>> {
        cbqt_common::failpoint!(failpoint::EXEC_SETOP);
        match op {
            SetOp::UnionAll => {
                let mut out = Vec::new();
                for mut i in inputs {
                    self.add_work(i.len() as f64 * weights::ROW);
                    out.append(&mut i);
                }
                self.governor
                    .charge_exec(out.len() as u64, self.work.get())?;
                Ok(out)
            }
            SetOp::Union => {
                let mut seen: HashSet<Row> = HashSet::new();
                let mut out = Vec::new();
                for i in inputs {
                    for r in i {
                        self.tick()?;
                        self.add_work(weights::DEDUP);
                        if seen.insert(r.clone()) {
                            out.push(r);
                        }
                    }
                }
                Ok(out)
            }
            SetOp::Intersect => {
                let right: HashSet<Row> = inputs.pop().unwrap_or_default().into_iter().collect();
                let left = inputs.pop().unwrap_or_default();
                let mut seen: HashSet<Row> = HashSet::new();
                let mut out = Vec::new();
                for r in left {
                    self.tick()?;
                    self.add_work(weights::DEDUP);
                    if right.contains(&r) && seen.insert(r.clone()) {
                        out.push(r);
                    }
                }
                Ok(out)
            }
            SetOp::Minus => {
                let right: HashSet<Row> = inputs.pop().unwrap_or_default().into_iter().collect();
                let left = inputs.pop().unwrap_or_default();
                let mut seen: HashSet<Row> = HashSet::new();
                let mut out = Vec::new();
                for r in left {
                    self.tick()?;
                    self.add_work(weights::DEDUP);
                    if !right.contains(&r) && seen.insert(r.clone()) {
                        out.push(r);
                    }
                }
                Ok(out)
            }
        }
    }

    /// Batch-granular set operations: identical dedup semantics and
    /// first-occurrence output order as [`Engine::exec_setop`], with the
    /// per-row governor ticks and DEDUP work charged once per
    /// [`crate::batch::BATCH_SIZE`] chunk.
    fn exec_setop_batched(&self, op: SetOp, mut inputs: Vec<Vec<Row>>) -> Result<Vec<Row>> {
        cbqt_common::failpoint!(failpoint::EXEC_SETOP);
        let chunked = |this: &Engine<'_>, rows: &[Row]| -> Result<()> {
            for chunk in rows.chunks(crate::batch::BATCH_SIZE) {
                this.tick_rows(chunk.len() as u64)?;
                this.add_work(chunk.len() as f64 * weights::DEDUP);
            }
            Ok(())
        };
        match op {
            SetOp::UnionAll => {
                let mut out = Vec::new();
                for mut i in inputs {
                    self.add_work(i.len() as f64 * weights::ROW);
                    out.append(&mut i);
                }
                self.governor
                    .charge_exec(out.len() as u64, self.work.get())?;
                Ok(out)
            }
            SetOp::Union => {
                let mut seen: HashSet<Row> = HashSet::new();
                let mut out = Vec::new();
                for i in inputs {
                    chunked(self, &i)?;
                    for r in i {
                        if seen.insert(r.clone()) {
                            out.push(r);
                        }
                    }
                }
                Ok(out)
            }
            SetOp::Intersect | SetOp::Minus => {
                let right: HashSet<Row> = inputs.pop().unwrap_or_default().into_iter().collect();
                let left = inputs.pop().unwrap_or_default();
                chunked(self, &left)?;
                let keep_present = op == SetOp::Intersect;
                let mut seen: HashSet<Row> = HashSet::new();
                let mut out = Vec::new();
                for r in left {
                    if right.contains(&r) == keep_present && seen.insert(r.clone()) {
                        out.push(r);
                    }
                }
                Ok(out)
            }
        }
    }

    fn exec_select(&self, sp: &SelectPlan, binds: &Bindings<'_>) -> Result<Vec<Row>> {
        let rows = self.exec_node(&sp.join, binds)?;
        let base_ctx = EvalCtx {
            engine: self,
            layout: &sp.layout,
            aggs: &sp.aggs,
            agg_base: sp.layout.width,
            windows: &sp.windows,
            win_base: sp.layout.width + sp.aggs.len(),
            subplans: &sp.subplans,
            outer: binds.clone(),
        };

        let mut rows = self.post_filter_rows(sp, &base_ctx, rows)?;

        // aggregation
        let aggregated = !sp.group_by.is_empty()
            || sp.grouping_sets.is_some()
            || !sp.aggs.is_empty()
            || !sp.having.is_empty();
        if aggregated {
            rows = self.aggregate(sp, &base_ctx, rows)?;
            // HAVING
            let mut kept = Vec::new();
            for r in rows {
                let mut pass = true;
                for h in &sp.having {
                    self.add_work(weights::PRED);
                    if !base_ctx.eval_truth(h, &r)?.passes() {
                        pass = false;
                        break;
                    }
                }
                if pass {
                    kept.push(r);
                }
            }
            rows = kept;
        }

        // window functions
        if !sp.windows.is_empty() {
            compute_windows(&base_ctx, &mut rows, &sp.windows)?;
        }

        // distinct / distinct-on
        if sp.distinct || sp.distinct_keys.is_some() {
            let keys: Vec<QExpr> = match &sp.distinct_keys {
                Some(k) => k.clone(),
                None => sp.select.clone(),
            };
            let mut seen: HashSet<Vec<Value>> = HashSet::new();
            let mut kept = Vec::new();
            for r in rows {
                self.add_work(weights::DEDUP);
                let key: Vec<Value> = keys
                    .iter()
                    .map(|e| base_ctx.eval(e, &r))
                    .collect::<Result<_>>()?;
                if seen.insert(key) {
                    kept.push(r);
                }
            }
            rows = kept;
        }

        // order by
        if !sp.order_by.is_empty() {
            let n = rows.len().max(2) as f64;
            self.add_work(weights::SORT * n * n.log2());
            let mut keyed: Vec<(Vec<Value>, Row)> = rows
                .into_iter()
                .map(|r| {
                    let k: Vec<Value> = sp
                        .order_by
                        .iter()
                        .map(|o| base_ctx.eval(&o.expr, &r))
                        .collect::<Result<_>>()?;
                    Ok((k, r))
                })
                .collect::<Result<_>>()?;
            keyed.sort_by(|a, b| {
                for (j, o) in sp.order_by.iter().enumerate() {
                    let ord = order_cmp(&a.0[j], &b.0[j], o.desc, o.nulls_first);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
            rows = keyed.into_iter().map(|(_, r)| r).collect();
        }

        // projection
        let mut out = Vec::with_capacity(rows.len());
        for r in &rows {
            self.tick()?;
            self.add_work(weights::ROW);
            let proj: Row = sp
                .select
                .iter()
                .map(|e| base_ctx.eval(e, r))
                .collect::<Result<_>>()?;
            out.push(proj);
        }
        Ok(out)
    }

    /// WHERE residue (TIS subquery filters etc.) + ROWNUM, with early
    /// exit once the limit is reached. Shared by both engines: the
    /// vectorized path falls back to this row loop whenever a
    /// `rownum_limit` is present, because the limit's early exit decides
    /// exactly which rows ever get evaluated.
    pub(crate) fn post_filter_rows(
        &self,
        sp: &SelectPlan,
        ctx: &EvalCtx<'_>,
        rows: Vec<Row>,
    ) -> Result<Vec<Row>> {
        let mut filtered: Vec<Row> = Vec::new();
        for r in rows {
            self.tick()?;
            let mut pass = true;
            for c in &sp.post_filter {
                self.add_work(weights::PRED);
                if !ctx.eval_truth(c, &r)?.passes() {
                    pass = false;
                    break;
                }
            }
            if pass {
                filtered.push(r);
                if let Some(lim) = sp.rownum_limit {
                    if filtered.len() as u64 >= lim {
                        break;
                    }
                }
            }
        }
        Ok(filtered)
    }

    /// Hash aggregation with representative-row semantics and grouping
    /// sets. Output rows are `representative wide row ++ agg values`.
    pub(crate) fn aggregate(
        &self,
        sp: &SelectPlan,
        ctx: &EvalCtx<'_>,
        rows: Vec<Row>,
    ) -> Result<Vec<Row>> {
        cbqt_common::failpoint!(failpoint::EXEC_AGG);
        let sets: Vec<Vec<usize>> = match &sp.grouping_sets {
            Some(s) => s.clone(),
            None => vec![(0..sp.group_by.len()).collect()],
        };
        // distinct aggregates need distinct accumulators
        let make_accs = || -> Result<Vec<AggAcc>> {
            sp.aggs
                .iter()
                .map(|a| match a {
                    QExpr::Agg { func, distinct, .. } => Ok(if *distinct {
                        AggAcc::new_distinct(*func)
                    } else {
                        AggAcc::new(*func)
                    }),
                    _ => Err(Error::execution("non-aggregate in agg slot list")),
                })
                .collect()
        };

        let mut out: Vec<Row> = Vec::new();
        for set in &sets {
            let mut groups: HashMap<Vec<Value>, (Row, Vec<AggAcc>)> = HashMap::new();
            let mut order: Vec<Vec<Value>> = Vec::new();
            for r in &rows {
                self.tick()?;
                self.add_work(weights::AGG);
                let key: Vec<Value> = set
                    .iter()
                    .map(|&i| ctx.eval(&sp.group_by[i], r))
                    .collect::<Result<_>>()?;
                let entry = match groups.get_mut(&key) {
                    Some(e) => e,
                    None => {
                        order.push(key.clone());
                        groups
                            .entry(key.clone())
                            .or_insert((r.clone(), make_accs()?))
                    }
                };
                for (acc, agg) in entry.1.iter_mut().zip(sp.aggs.iter()) {
                    let QExpr::Agg { arg, .. } = agg else {
                        unreachable!()
                    };
                    let v = match arg {
                        Some(a) => ctx.eval(a, r)?,
                        None => Value::Int(1),
                    };
                    acc.add(&v);
                }
            }
            // scalar aggregate over empty input: one all-NULL group
            if groups.is_empty() && sp.group_by.is_empty() && sets.len() == 1 {
                let rep: Row = vec![Value::Null; sp.layout.width];
                let accs = make_accs()?;
                let mut row = rep;
                for acc in &accs {
                    row.push(acc.finish());
                }
                out.push(row);
                continue;
            }
            let full_set: HashSet<usize> = set.iter().copied().collect();
            for key in order {
                let (mut rep, accs) = groups.remove(&key).unwrap();
                // grouping-set semantics: group-by columns not in this
                // set read as NULL (requires simple column group-bys,
                // which is all the builder produces for ROLLUP)
                if sp.grouping_sets.is_some() {
                    for (i, g) in sp.group_by.iter().enumerate() {
                        if !full_set.contains(&i) {
                            if let QExpr::Col { table, column } = g {
                                if let Some((off, w)) = sp.layout.offset_of(*table) {
                                    if *column < w {
                                        rep[off + column] = Value::Null;
                                    }
                                }
                            }
                        }
                    }
                }
                for acc in &accs {
                    rep.push(acc.finish());
                }
                out.push(rep);
            }
        }
        Ok(out)
    }

    pub(crate) fn exec_node(&self, node: &PlanNode, binds: &Bindings<'_>) -> Result<Vec<Row>> {
        if self.metrics.borrow().is_none() {
            return self.exec_node_inner(node, binds);
        }
        let work0 = self.work.get();
        let start = self.metrics_timed().then(std::time::Instant::now);
        let out = self.exec_node_inner(node, binds)?;
        let elapsed = start.map(|s| s.elapsed()).unwrap_or_default();
        let work = self.work.get() - work0;
        self.record_metric(
            node as *const PlanNode as usize,
            out.len() as u64,
            work,
            elapsed,
        );
        Ok(out)
    }

    fn exec_node_inner(&self, node: &PlanNode, binds: &Bindings<'_>) -> Result<Vec<Row>> {
        match node {
            PlanNode::OneRow => {
                self.add_work(weights::ROW);
                Ok(vec![Vec::new()])
            }
            PlanNode::ScanBase {
                table,
                refid,
                width,
                access,
                filter,
                ..
            } => {
                cbqt_common::failpoint!(failpoint::EXEC_SCAN);
                let layout = Layout {
                    slots: vec![(*refid, 0, *width)],
                    width: *width,
                };
                let ctx = EvalCtx {
                    engine: self,
                    layout: &layout,
                    aggs: &[],
                    agg_base: 0,
                    windows: &[],
                    win_base: 0,
                    subplans: &[],
                    outer: binds.clone(),
                };
                let data = self.snapshot.table(*table)?;
                let mut out = Vec::new();
                for ordinal in self.scan_ordinals(access, &ctx, &data)? {
                    self.tick()?;
                    let mut row = data.row(ordinal).clone();
                    row.push(Value::Int(ordinal as i64));
                    let mut pass = true;
                    for c in filter {
                        self.add_work(weights::PRED);
                        if !ctx.eval_truth(c, &row)?.passes() {
                            pass = false;
                            break;
                        }
                    }
                    if pass {
                        out.push(row);
                    }
                }
                Ok(out)
            }
            PlanNode::ScanView {
                refid,
                width,
                plan,
                filter,
                ..
            } => {
                let rows = self.execute_cached(plan, binds)?;
                let layout = Layout {
                    slots: vec![(*refid, 0, *width)],
                    width: *width,
                };
                let ctx = EvalCtx {
                    engine: self,
                    layout: &layout,
                    aggs: &[],
                    agg_base: 0,
                    windows: &[],
                    win_base: 0,
                    subplans: &[],
                    outer: binds.clone(),
                };
                let mut out = Vec::new();
                for r in rows.iter() {
                    self.tick()?;
                    self.add_work(weights::ROW);
                    let mut pass = true;
                    for c in filter {
                        self.add_work(weights::PRED);
                        if !ctx.eval_truth(c, r)?.passes() {
                            pass = false;
                            break;
                        }
                    }
                    if pass {
                        out.push(r.clone());
                    }
                }
                Ok(out)
            }
            PlanNode::Join {
                left,
                right,
                kind,
                method,
                equi,
                residual,
                lateral,
                ..
            } => self.exec_join(left, right, *kind, *method, equi, residual, *lateral, binds),
        }
    }

    /// Resolves an access path to the matching *visible* row ordinals,
    /// charging the same work units the row engine always has (per
    /// visible row for full scans, index probe + per-visible-hit fetch).
    /// Shared by both engines, so their work metrics stay identical.
    pub(crate) fn scan_ordinals(
        &self,
        access: &AccessPath,
        ctx: &EvalCtx<'_>,
        data: &SnapTable<'_>,
    ) -> Result<Vec<usize>> {
        match access {
            AccessPath::FullScan => {
                let hits: Vec<usize> = data.visible_ordinals().collect();
                self.add_work(hits.len() as f64 * weights::ROW);
                Ok(hits)
            }
            AccessPath::IndexEq { index, key } => {
                self.add_work(weights::INDEX_PROBE);
                // key expressions reference only outer bindings
                let empty = Layout::default();
                let kctx = EvalCtx {
                    layout: &empty,
                    ..ctx_clone(ctx)
                };
                let keyvals: Vec<Value> = key
                    .iter()
                    .map(|e| kctx.eval(e, &[]))
                    .collect::<Result<_>>()?;
                let ix = self.snapshot.index(*index)?;
                let mut hits: Vec<usize> = if ix.columns.len() == keyvals.len() {
                    ix.lookup_eq(&keyvals).to_vec()
                } else {
                    // prefix probe: range over the leading column
                    let mut v = Vec::new();
                    if let Some(first) = keyvals.first() {
                        ix.lookup_range(Bound::Included(first), Bound::Included(first), &mut v);
                    }
                    v
                };
                hits.retain(|&o| data.visible(o));
                self.add_work(hits.len() as f64 * weights::INDEX_FETCH);
                Ok(hits)
            }
            AccessPath::IndexRange { index, lo, hi } => {
                self.add_work(weights::INDEX_PROBE);
                let empty = Layout::default();
                let kctx = EvalCtx {
                    layout: &empty,
                    ..ctx_clone(ctx)
                };
                let lo_v = match lo {
                    Some((e, inc)) => {
                        let v = kctx.eval(e, &[])?;
                        if *inc {
                            Bound::Included(v)
                        } else {
                            Bound::Excluded(v)
                        }
                    }
                    None => Bound::Unbounded,
                };
                let hi_v = match hi {
                    Some((e, inc)) => {
                        let v = kctx.eval(e, &[])?;
                        if *inc {
                            Bound::Included(v)
                        } else {
                            Bound::Excluded(v)
                        }
                    }
                    None => Bound::Unbounded,
                };
                let ix = self.snapshot.index(*index)?;
                let mut hits = Vec::new();
                ix.lookup_range(as_ref_bound(&lo_v), as_ref_bound(&hi_v), &mut hits);
                hits.retain(|&o| data.visible(o));
                self.add_work(hits.len() as f64 * weights::INDEX_FETCH);
                Ok(hits)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_join(
        &self,
        left: &PlanNode,
        right: &PlanNode,
        kind: PlanJoinKind,
        method: JoinMethod,
        equi: &[(QExpr, QExpr)],
        residual: &[QExpr],
        lateral: bool,
        binds: &Bindings<'_>,
    ) -> Result<Vec<Row>> {
        cbqt_common::failpoint!(failpoint::EXEC_JOIN);
        let lrows = self.exec_node(left, binds)?;
        let llayout = Layout::from_node(left);
        let rlayout_node = Layout::from_node(right);
        let combined = combined_layout(&llayout, &rlayout_node);
        let rwidth = right.width();

        let lctx = self.simple_ctx(&llayout, binds);
        let cctx = self.simple_ctx(&combined, binds);

        if lateral {
            // right side re-executed per left row
            let mut out = Vec::new();
            for lrow in &lrows {
                let b2 = binds.push(&llayout, lrow);
                let rrows = self.exec_node(right, &b2)?;
                let rctx = self.simple_ctx_b(&rlayout_node, &b2);
                let mut matched = false;
                for rrow in &rrows {
                    self.tick()?;
                    self.add_work((equi.len() + residual.len()).max(1) as f64 * weights::PRED);
                    if !self.pair_matches(&lctx, &rctx, &cctx, lrow, rrow, equi, residual)? {
                        continue;
                    }
                    matched = true;
                    match kind {
                        PlanJoinKind::Inner | PlanJoinKind::LeftOuter => {
                            out.push(concat(lrow, rrow));
                        }
                        PlanJoinKind::Semi => {
                            out.push(lrow.clone());
                            break;
                        }
                        PlanJoinKind::Anti { .. } => break,
                    }
                }
                match kind {
                    PlanJoinKind::LeftOuter if !matched => {
                        out.push(null_pad(lrow, rwidth));
                    }
                    PlanJoinKind::Anti { null_aware } if !matched => {
                        if null_aware {
                            // NOT IN: a NULL probe key never qualifies
                            // unless the right side is empty
                            let keys: Vec<Value> = equi
                                .iter()
                                .map(|(l, _)| lctx.eval(l, lrow))
                                .collect::<Result<_>>()?;
                            if rrows.is_empty() || !keys.iter().any(Value::is_null) {
                                out.push(lrow.clone());
                            }
                        } else {
                            out.push(lrow.clone());
                        }
                    }
                    _ => {}
                }
            }
            self.add_work(out.len() as f64 * weights::ROW);
            return Ok(out);
        }

        let rrows = self.exec_node(right, binds)?;
        let rctx = self.simple_ctx(&rlayout_node, binds);

        match method {
            JoinMethod::Hash => self.hash_join(
                &lrows, &rrows, kind, equi, residual, &lctx, &rctx, &cctx, rwidth,
            ),
            JoinMethod::Merge => {
                self.merge_join(&lrows, &rrows, equi, residual, &lctx, &rctx, &cctx)
            }
            JoinMethod::NestedLoop => self.nl_join(
                &lrows, &rrows, kind, equi, residual, &lctx, &rctx, &cctx, rwidth,
            ),
        }
    }

    pub(crate) fn simple_ctx<'b>(
        &'b self,
        layout: &'b Layout,
        binds: &Bindings<'b>,
    ) -> EvalCtx<'b> {
        EvalCtx {
            engine: self,
            layout,
            aggs: &[],
            agg_base: 0,
            windows: &[],
            win_base: 0,
            subplans: &[],
            outer: binds.clone(),
        }
    }

    fn simple_ctx_b<'b>(&'b self, layout: &'b Layout, binds: &Bindings<'b>) -> EvalCtx<'b> {
        self.simple_ctx(layout, binds)
    }

    #[allow(clippy::too_many_arguments)]
    fn pair_matches(
        &self,
        lctx: &EvalCtx<'_>,
        rctx: &EvalCtx<'_>,
        cctx: &EvalCtx<'_>,
        lrow: &[Value],
        rrow: &[Value],
        equi: &[(QExpr, QExpr)],
        residual: &[QExpr],
    ) -> Result<bool> {
        for (le, re) in equi {
            let lv = lctx.eval(le, lrow)?;
            let rv = rctx.eval(re, rrow)?;
            if lv.sql_eq(&rv) != Some(true) {
                return Ok(false);
            }
        }
        if !residual.is_empty() {
            let crow = concat(lrow, rrow);
            for c in residual {
                if !cctx.eval_truth(c, &crow)?.passes() {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    #[allow(clippy::too_many_arguments)]
    fn hash_join(
        &self,
        lrows: &[Row],
        rrows: &[Row],
        kind: PlanJoinKind,
        equi: &[(QExpr, QExpr)],
        residual: &[QExpr],
        lctx: &EvalCtx<'_>,
        rctx: &EvalCtx<'_>,
        cctx: &EvalCtx<'_>,
        rwidth: usize,
    ) -> Result<Vec<Row>> {
        // build on right
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        let mut right_has_null_key = false;
        for (i, r) in rrows.iter().enumerate() {
            self.tick()?;
            self.add_work(weights::HASH_BUILD);
            let key: Vec<Value> = equi
                .iter()
                .map(|(_, re)| rctx.eval(re, r))
                .collect::<Result<_>>()?;
            if key.iter().any(Value::is_null) {
                right_has_null_key = true;
                continue;
            }
            table.entry(key).or_default().push(i);
        }
        let mut out = Vec::new();
        for lrow in lrows {
            self.tick()?;
            self.add_work(weights::HASH_PROBE);
            let key: Vec<Value> = equi
                .iter()
                .map(|(le, _)| lctx.eval(le, lrow))
                .collect::<Result<_>>()?;
            let null_key = key.iter().any(Value::is_null);
            let hits = if null_key { None } else { table.get(&key) };
            let mut matched = false;
            if let Some(idxs) = hits {
                for &i in idxs {
                    self.tick()?;
                    let rrow = &rrows[i];
                    if !residual.is_empty() {
                        self.add_work(residual.len() as f64 * weights::PRED);
                        let crow = concat(lrow, rrow);
                        let mut pass = true;
                        for c in residual {
                            if !cctx.eval_truth(c, &crow)?.passes() {
                                pass = false;
                                break;
                            }
                        }
                        if !pass {
                            continue;
                        }
                    }
                    matched = true;
                    match kind {
                        PlanJoinKind::Inner | PlanJoinKind::LeftOuter => {
                            out.push(concat(lrow, rrow));
                        }
                        PlanJoinKind::Semi => {
                            out.push(lrow.clone());
                            break;
                        }
                        PlanJoinKind::Anti { .. } => break,
                    }
                }
            }
            if !matched {
                match kind {
                    PlanJoinKind::LeftOuter => out.push(null_pad(lrow, rwidth)),
                    PlanJoinKind::Anti { null_aware } => {
                        if null_aware {
                            if rrows.is_empty() || (!null_key && !right_has_null_key) {
                                out.push(lrow.clone());
                            }
                        } else {
                            out.push(lrow.clone());
                        }
                    }
                    _ => {}
                }
            }
        }
        self.add_work(out.len() as f64 * weights::ROW);
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn merge_join(
        &self,
        lrows: &[Row],
        rrows: &[Row],
        equi: &[(QExpr, QExpr)],
        residual: &[QExpr],
        lctx: &EvalCtx<'_>,
        rctx: &EvalCtx<'_>,
        cctx: &EvalCtx<'_>,
    ) -> Result<Vec<Row>> {
        let ln = lrows.len().max(2) as f64;
        let rn = rrows.len().max(2) as f64;
        self.add_work(weights::SORT * (ln * ln.log2() + rn * rn.log2()));
        let mut lk: Vec<(Vec<Value>, usize)> = lrows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let k: Vec<Value> = equi
                    .iter()
                    .map(|(le, _)| lctx.eval(le, r))
                    .collect::<Result<_>>()?;
                Ok((k, i))
            })
            .collect::<Result<_>>()?;
        let mut rk: Vec<(Vec<Value>, usize)> = rrows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let k: Vec<Value> = equi
                    .iter()
                    .map(|(_, re)| rctx.eval(re, r))
                    .collect::<Result<_>>()?;
                Ok((k, i))
            })
            .collect::<Result<_>>()?;
        lk.sort_by(|a, b| a.0.cmp(&b.0));
        rk.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < lk.len() && j < rk.len() {
            self.tick()?;
            self.add_work(weights::ROW);
            // NULL keys never join
            if lk[i].0.iter().any(Value::is_null) {
                i += 1;
                continue;
            }
            if rk[j].0.iter().any(Value::is_null) {
                j += 1;
                continue;
            }
            match lk[i].0.cmp(&rk[j].0) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    // cross-combine the two equal-key groups
                    let key = lk[i].0.clone();
                    let li0 = i;
                    while i < lk.len() && lk[i].0 == key {
                        i += 1;
                    }
                    let rj0 = j;
                    while j < rk.len() && rk[j].0 == key {
                        j += 1;
                    }
                    for li in li0..i {
                        for rj in rj0..j {
                            self.tick()?;
                            let lrow = &lrows[lk[li].1];
                            let rrow = &rrows[rk[rj].1];
                            if !residual.is_empty() {
                                self.add_work(residual.len() as f64 * weights::PRED);
                                let crow = concat(lrow, rrow);
                                let mut pass = true;
                                for c in residual {
                                    if !cctx.eval_truth(c, &crow)?.passes() {
                                        pass = false;
                                        break;
                                    }
                                }
                                if !pass {
                                    continue;
                                }
                            }
                            out.push(concat(lrow, rrow));
                        }
                    }
                }
            }
        }
        self.add_work(out.len() as f64 * weights::ROW);
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn nl_join(
        &self,
        lrows: &[Row],
        rrows: &[Row],
        kind: PlanJoinKind,
        equi: &[(QExpr, QExpr)],
        residual: &[QExpr],
        lctx: &EvalCtx<'_>,
        rctx: &EvalCtx<'_>,
        cctx: &EvalCtx<'_>,
        rwidth: usize,
    ) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        // semijoin/antijoin caching on the left key values (§2.1.1)
        let cacheable = matches!(kind, PlanJoinKind::Semi | PlanJoinKind::Anti { .. })
            && !equi.is_empty()
            && residual.is_empty();
        let mut match_cache: HashMap<Vec<Value>, bool> = HashMap::new();
        for lrow in lrows {
            let lkey: Option<Vec<Value>> = if cacheable {
                Some(
                    equi.iter()
                        .map(|(le, _)| lctx.eval(le, lrow))
                        .collect::<Result<_>>()?,
                )
            } else {
                None
            };
            let cached = lkey.as_ref().and_then(|k| match_cache.get(k)).copied();
            let matched = match cached {
                Some(m) => {
                    self.add_work(weights::HASH_PROBE);
                    m
                }
                None => {
                    let mut m = false;
                    for rrow in rrows {
                        self.tick()?;
                        self.add_work((equi.len() + residual.len()).max(1) as f64 * weights::PRED);
                        if self.pair_matches(lctx, rctx, cctx, lrow, rrow, equi, residual)? {
                            m = true;
                            match kind {
                                PlanJoinKind::Inner | PlanJoinKind::LeftOuter => {
                                    out.push(concat(lrow, rrow));
                                }
                                _ => break,
                            }
                        }
                    }
                    if let Some(k) = lkey {
                        match_cache.insert(k, m);
                    }
                    m
                }
            };
            match kind {
                PlanJoinKind::Semi if matched => out.push(lrow.clone()),
                PlanJoinKind::Anti { null_aware } if !matched => {
                    if null_aware {
                        let keys: Vec<Value> = equi
                            .iter()
                            .map(|(le, _)| lctx.eval(le, lrow))
                            .collect::<Result<_>>()?;
                        let right_nullish = rrows.iter().any(|r| {
                            equi.iter().any(|(_, re)| {
                                rctx.eval(re, r).map(|v| v.is_null()).unwrap_or(false)
                            })
                        });
                        if rrows.is_empty() || (!keys.iter().any(Value::is_null) && !right_nullish)
                        {
                            out.push(lrow.clone());
                        }
                    } else {
                        out.push(lrow.clone());
                    }
                }
                PlanJoinKind::LeftOuter if !matched => out.push(null_pad(lrow, rwidth)),
                _ => {}
            }
        }
        self.add_work(out.len() as f64 * weights::ROW);
        Ok(out)
    }
}

/// Resolves an outer column reference through the binding frames
/// (innermost first).
fn resolve_outer(binds: &Bindings<'_>, refid: RefId, col: usize) -> Result<Value> {
    for f in binds.frames.iter().rev() {
        if let Some((off, w)) = f.layout.offset_of(refid) {
            if col < w {
                return Ok(f.row[off + col].clone());
            }
            return Err(Error::execution(format!(
                "outer column {col} out of range for r{}",
                refid.0
            )));
        }
    }
    Err(Error::execution(format!(
        "unbound outer reference r{}",
        refid.0
    )))
}

fn ctx_clone<'b>(ctx: &EvalCtx<'b>) -> EvalCtx<'b> {
    EvalCtx {
        engine: ctx.engine,
        layout: ctx.layout,
        aggs: ctx.aggs,
        agg_base: ctx.agg_base,
        windows: ctx.windows,
        win_base: ctx.win_base,
        subplans: ctx.subplans,
        outer: ctx.outer.clone(),
    }
}

fn as_ref_bound(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

pub(crate) fn concat(l: &[Value], r: &[Value]) -> Row {
    let mut row = Vec::with_capacity(l.len() + r.len());
    row.extend_from_slice(l);
    row.extend_from_slice(r);
    row
}

pub(crate) fn null_pad(l: &[Value], rwidth: usize) -> Row {
    let mut row = Vec::with_capacity(l.len() + rwidth);
    row.extend_from_slice(l);
    row.extend(std::iter::repeat_n(Value::Null, rwidth));
    row
}

pub(crate) fn combined_layout(l: &Layout, r: &Layout) -> Layout {
    let mut slots = l.slots.clone();
    for (rr, off, w) in &r.slots {
        slots.push((*rr, off + l.width, *w));
    }
    Layout {
        slots,
        width: l.width + r.width,
    }
}

/// Comparison for ORDER BY with configurable direction and null placement.
pub fn order_cmp(a: &Value, b: &Value, desc: bool, nulls_first: bool) -> Ordering {
    match (a.is_null(), b.is_null()) {
        (true, true) => Ordering::Equal,
        (true, false) => {
            if nulls_first {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        }
        (false, true) => {
            if nulls_first {
                Ordering::Greater
            } else {
                Ordering::Less
            }
        }
        (false, false) => {
            let ord = a.total_cmp(b);
            if desc {
                ord.reverse()
            } else {
                ord
            }
        }
    }
}

fn collect_plan_refs(
    plan: &BlockPlan,
    defined: &mut HashSet<RefId>,
    referenced: &mut Vec<(RefId, usize)>,
) {
    match &plan.root {
        PlanRoot::Select(sp) => {
            collect_node_refs(&sp.join, defined, referenced);
            let mut push_expr = |e: &QExpr| {
                let mut cols = Vec::new();
                e.collect_cols(&mut cols);
                referenced.extend(cols);
            };
            for e in sp
                .post_filter
                .iter()
                .chain(sp.group_by.iter())
                .chain(sp.having.iter())
                .chain(sp.select.iter())
                .chain(sp.aggs.iter())
                .chain(sp.windows.iter())
            {
                push_expr(e);
            }
            for o in &sp.order_by {
                push_expr(&o.expr);
            }
            if let Some(keys) = &sp.distinct_keys {
                for e in keys {
                    push_expr(e);
                }
            }
            for (_, p) in &sp.subplans {
                collect_plan_refs(p, defined, referenced);
            }
        }
        PlanRoot::SetOp(sop) => {
            for i in &sop.inputs {
                collect_plan_refs(i, defined, referenced);
            }
        }
    }
}

fn collect_node_refs(
    node: &PlanNode,
    defined: &mut HashSet<RefId>,
    referenced: &mut Vec<(RefId, usize)>,
) {
    let push_expr = |e: &QExpr, referenced: &mut Vec<(RefId, usize)>| {
        let mut cols = Vec::new();
        e.collect_cols(&mut cols);
        referenced.extend(cols);
    };
    match node {
        PlanNode::OneRow => {}
        PlanNode::ScanBase {
            refid,
            filter,
            access,
            ..
        } => {
            defined.insert(*refid);
            for c in filter {
                push_expr(c, referenced);
            }
            match access {
                AccessPath::IndexEq { key, .. } => {
                    for e in key {
                        push_expr(e, referenced);
                    }
                }
                AccessPath::IndexRange { lo, hi, .. } => {
                    if let Some((e, _)) = lo {
                        push_expr(e, referenced);
                    }
                    if let Some((e, _)) = hi {
                        push_expr(e, referenced);
                    }
                }
                AccessPath::FullScan => {}
            }
        }
        PlanNode::ScanView {
            refid,
            plan,
            filter,
            ..
        } => {
            defined.insert(*refid);
            for c in filter {
                push_expr(c, referenced);
            }
            collect_plan_refs(plan, defined, referenced);
        }
        PlanNode::Join {
            left,
            right,
            equi,
            residual,
            ..
        } => {
            collect_node_refs(left, defined, referenced);
            collect_node_refs(right, defined, referenced);
            for (l, r) in equi {
                push_expr(l, referenced);
                push_expr(r, referenced);
            }
            for c in residual {
                push_expr(c, referenced);
            }
        }
    }
}
