//! End-to-end engine tests: SQL → QGM → physical plan → execution over
//! a small in-memory database.

use crate::Engine;
use cbqt_catalog::{Catalog, Column, Constraint, ForeignKey};
use cbqt_common::{DataType, Value};
use cbqt_optimizer::{CostAnnotations, Optimizer, SamplingCache};
use cbqt_qgm::build_query_tree;
use cbqt_sql::parse_query;
use cbqt_storage::Storage;

/// departments(dept_id PK, loc_id), employees(emp_id PK, name, dept_id FK,
/// salary, mgr_id) with small deterministic contents:
/// * 4 departments, loc 0/0/1/1
/// * 12 employees: emp i in dept i%4 (dept NULL for emp 11), salary 1000*(i+1)
fn setup() -> (Catalog, Storage) {
    let mut cat = Catalog::new();
    let icol = |n: &str| Column {
        name: n.into(),
        data_type: DataType::Int,
        not_null: false,
    };
    let scol = |n: &str| Column {
        name: n.into(),
        data_type: DataType::Str,
        not_null: false,
    };
    let dept = cat
        .add_table(
            "departments",
            vec![icol("dept_id"), icol("loc_id")],
            vec![Constraint::PrimaryKey(vec![0])],
        )
        .unwrap();
    let emp = cat
        .add_table(
            "employees",
            vec![
                icol("emp_id"),
                scol("name"),
                icol("dept_id"),
                icol("salary"),
                icol("mgr_id"),
            ],
            vec![
                Constraint::PrimaryKey(vec![0]),
                Constraint::ForeignKey(ForeignKey {
                    columns: vec![2],
                    parent: dept,
                    parent_columns: vec![0],
                }),
            ],
        )
        .unwrap();
    let st = Storage::new();
    st.create_table(dept);
    st.create_table(emp);
    for d in 0..4i64 {
        st.insert(dept, vec![Value::Int(d), Value::Int(d / 2)])
            .unwrap();
    }
    for i in 0..12i64 {
        let dept_id = if i == 11 {
            Value::Null
        } else {
            Value::Int(i % 4)
        };
        st.insert(
            emp,
            vec![
                Value::Int(i),
                Value::str(format!("emp{i}")),
                dept_id,
                Value::Int(1000 * (i + 1)),
                if i == 0 { Value::Null } else { Value::Int(0) },
            ],
        )
        .unwrap();
    }
    let ie = cat.add_index("i_emp_dept", emp, vec![2], false).unwrap();
    st.build_index(ie, emp, vec![2]).unwrap();
    let pe = cat.add_index("pk_emp", emp, vec![0], true).unwrap();
    st.build_index(pe, emp, vec![0]).unwrap();
    st.analyze(&mut cat).unwrap();
    (cat, st)
}

fn run(cat: &Catalog, st: &Storage, sql: &str) -> Vec<Vec<Value>> {
    let tree = build_query_tree(cat, &parse_query(sql).unwrap()).unwrap();
    let ann = CostAnnotations::new();
    let cache = SamplingCache::default();
    let mut opt = Optimizer::new(cat, &ann, &cache);
    let plan = opt.optimize(&tree, None).unwrap();
    let eng = Engine::new(cat, st);
    eng.run(&plan).unwrap()
}

fn ints(rows: &[Vec<Value>]) -> Vec<i64> {
    rows.iter().map(|r| r[0].as_i64().unwrap()).collect()
}

#[test]
fn simple_filter_scan() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT emp_id FROM employees WHERE salary > 10000",
    );
    let mut ids = ints(&rows);
    ids.sort();
    assert_eq!(ids, vec![10, 11]);
}

#[test]
fn index_eq_access() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT emp_id FROM employees WHERE dept_id = 2 ORDER BY emp_id",
    );
    assert_eq!(ints(&rows), vec![2, 6, 10]);
}

#[test]
fn inner_join_fk() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT e.emp_id, d.loc_id FROM employees e, departments d \
         WHERE e.dept_id = d.dept_id ORDER BY e.emp_id",
    );
    // emp 11 has NULL dept, drops out
    assert_eq!(rows.len(), 11);
    assert_eq!(rows[0][1], Value::Int(0));
}

#[test]
fn left_outer_join_pads_nulls() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT e.emp_id, d.loc_id FROM employees e LEFT JOIN departments d \
         ON e.dept_id = d.dept_id ORDER BY e.emp_id",
    );
    assert_eq!(rows.len(), 12);
    assert!(rows[11][1].is_null());
}

#[test]
fn group_by_aggregates() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT dept_id, COUNT(*), AVG(salary), MIN(salary), MAX(salary) \
         FROM employees GROUP BY dept_id ORDER BY dept_id",
    );
    assert_eq!(rows.len(), 5); // depts 0..3 plus the NULL group
                               // dept 0: emps 0,4,8 → salaries 1000,5000,9000
    assert_eq!(rows[0][1], Value::Int(3));
    assert_eq!(rows[0][2], Value::Double(5000.0));
    assert_eq!(rows[0][3], Value::Int(1000));
    assert_eq!(rows[0][4], Value::Int(9000));
    // NULL group is last (nulls last in ASC)
    assert!(rows[4][0].is_null());
    assert_eq!(rows[4][1], Value::Int(1));
}

#[test]
fn having_filters_groups() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT dept_id FROM employees GROUP BY dept_id HAVING COUNT(*) > 2 ORDER BY dept_id",
    );
    // depts 0..2 have 3 members; dept 3 has 2 (emp 11's dept is NULL)
    assert_eq!(ints(&rows), vec![0, 1, 2]);
}

#[test]
fn scalar_aggregate_empty_input() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT COUNT(*), SUM(salary) FROM employees WHERE salary > 99999",
    );
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::Int(0));
    assert!(rows[0][1].is_null());
}

#[test]
fn correlated_scalar_subquery_tis() {
    let (cat, st) = setup();
    // employees above their department average
    let rows = run(
        &cat,
        &st,
        "SELECT e1.emp_id FROM employees e1 WHERE e1.salary > \
         (SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e1.dept_id) \
         ORDER BY e1.emp_id",
    );
    // dept avg: d0: 5000 (1k,5k,9k) → emp 8 (9k); d1: 6000 → emp 9 (10k);
    // d2: 7000 → emp 10; d3: 8000 → emp 11? no — emp 11 has NULL dept.
    // d3 members: 3,7 → salaries 4000,8000, avg 6000 → emp 7 (8000)
    assert_eq!(ints(&rows), vec![7, 8, 9, 10]);
}

#[test]
fn exists_subquery() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT d.dept_id FROM departments d WHERE EXISTS \
         (SELECT 1 FROM employees e WHERE e.dept_id = d.dept_id AND e.salary > 9500) \
         ORDER BY d.dept_id",
    );
    // salaries > 9500: emp 9 (d1), 10 (d2), 11 (null)
    assert_eq!(ints(&rows), vec![1, 2]);
}

#[test]
fn not_exists_subquery() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT d.dept_id FROM departments d WHERE NOT EXISTS \
         (SELECT 1 FROM employees e WHERE e.dept_id = d.dept_id AND e.salary > 9500) \
         ORDER BY d.dept_id",
    );
    assert_eq!(ints(&rows), vec![0, 3]);
}

#[test]
fn in_subquery_and_not_in_null_semantics() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT d.dept_id FROM departments d WHERE d.dept_id IN \
         (SELECT e.dept_id FROM employees e WHERE e.salary > 9500)",
    );
    let mut ids = ints(&rows);
    ids.sort();
    assert_eq!(ids, vec![1, 2]);
    // NOT IN with a NULL in the subquery result → empty
    let rows = run(
        &cat,
        &st,
        "SELECT d.dept_id FROM departments d WHERE d.dept_id NOT IN \
         (SELECT e.dept_id FROM employees e WHERE e.salary > 9500)",
    );
    assert!(
        rows.is_empty(),
        "NOT IN with NULLs must yield nothing: {rows:?}"
    );
    // excluding the NULL makes NOT IN behave like anti-join
    let rows = run(
        &cat,
        &st,
        "SELECT d.dept_id FROM departments d WHERE d.dept_id NOT IN \
         (SELECT e.dept_id FROM employees e WHERE e.salary > 9500 AND e.dept_id IS NOT NULL)",
    );
    let mut ids = ints(&rows);
    ids.sort();
    assert_eq!(ids, vec![0, 3]);
}

#[test]
fn quantified_all_any() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT e.emp_id FROM employees e WHERE e.salary > ALL \
         (SELECT e2.salary FROM employees e2 WHERE e2.dept_id = 0)",
    );
    // max salary in dept 0 is 9000 (emp 8) → salaries > 9000: emps 9,10,11
    let mut ids = ints(&rows);
    ids.sort();
    assert_eq!(ids, vec![9, 10, 11]);
    let rows = run(
        &cat,
        &st,
        "SELECT e.emp_id FROM employees e WHERE e.salary < ANY \
         (SELECT e2.salary FROM employees e2 WHERE e2.dept_id = 0)",
    );
    // less than 9000: emps 0..7
    assert_eq!(rows.len(), 8);
}

#[test]
fn union_all_and_union() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT dept_id FROM departments UNION ALL SELECT dept_id FROM departments",
    );
    assert_eq!(rows.len(), 8);
    let rows = run(
        &cat,
        &st,
        "SELECT dept_id FROM departments UNION SELECT dept_id FROM departments",
    );
    assert_eq!(rows.len(), 4);
}

#[test]
fn intersect_and_minus() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT dept_id FROM departments WHERE dept_id < 3 \
         INTERSECT SELECT dept_id FROM departments WHERE dept_id > 0",
    );
    let mut ids = ints(&rows);
    ids.sort();
    assert_eq!(ids, vec![1, 2]);
    let rows = run(
        &cat,
        &st,
        "SELECT dept_id FROM departments MINUS SELECT dept_id FROM departments WHERE dept_id > 1",
    );
    let mut ids = ints(&rows);
    ids.sort();
    assert_eq!(ids, vec![0, 1]);
}

#[test]
fn distinct_dedups() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT DISTINCT dept_id FROM employees WHERE dept_id IS NOT NULL",
    );
    assert_eq!(rows.len(), 4);
}

#[test]
fn rownum_limits_and_stops_early() {
    let (cat, st) = setup();
    let rows = run(&cat, &st, "SELECT emp_id FROM employees WHERE rownum <= 5");
    assert_eq!(rows.len(), 5);
}

#[test]
fn order_by_desc_nulls() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT dept_id FROM employees ORDER BY dept_id DESC",
    );
    // DESC default = nulls first (Oracle)
    assert!(rows[0][0].is_null());
    assert_eq!(rows[1][0], Value::Int(3));
}

#[test]
fn window_running_avg() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT emp_id, AVG(salary) OVER (PARTITION BY dept_id ORDER BY emp_id) \
         FROM employees WHERE dept_id = 0 ORDER BY emp_id",
    );
    // dept 0: emps 0 (1000), 4 (5000), 8 (9000): running avgs 1000, 3000, 5000
    assert_eq!(rows[0][1], Value::Double(1000.0));
    assert_eq!(rows[1][1], Value::Double(3000.0));
    assert_eq!(rows[2][1], Value::Double(5000.0));
}

#[test]
fn window_row_number() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT emp_id, ROW_NUMBER() OVER (ORDER BY salary DESC) rn FROM employees \
         ORDER BY rn",
    );
    assert_eq!(rows[0][0], Value::Int(11)); // highest salary
    assert_eq!(rows[0][1], Value::Int(1));
}

#[test]
fn rollup_grouping_sets() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT d.loc_id, d.dept_id, COUNT(*) FROM departments d \
         GROUP BY ROLLUP (d.loc_id, d.dept_id)",
    );
    // sets: (loc,dept): 4 rows; (loc): 2 rows; (): 1 row → 7
    assert_eq!(rows.len(), 7);
    let grand = rows
        .iter()
        .find(|r| r[0].is_null() && r[1].is_null())
        .unwrap();
    assert_eq!(grand[2], Value::Int(4));
}

#[test]
fn expensive_function_burns_work() {
    let (cat, st) = setup();
    let tree = build_query_tree(
        &cat,
        &parse_query("SELECT emp_id FROM employees WHERE EXPENSIVE(salary, 100) > 0").unwrap(),
    )
    .unwrap();
    let ann = CostAnnotations::new();
    let cache = SamplingCache::default();
    let mut opt = Optimizer::new(&cat, &ann, &cache);
    let plan = opt.optimize(&tree, None).unwrap();
    let eng = Engine::new(&cat, &st);
    let rows = eng.run(&plan).unwrap();
    assert_eq!(rows.len(), 12);
    // 12 rows × 100 units burned, plus scan work
    assert!(eng.stats().work >= 1200.0, "{}", eng.stats().work);
}

#[test]
fn correlation_cache_hits() {
    let (cat, st) = setup();
    let tree = build_query_tree(
        &cat,
        &parse_query(
            "SELECT e1.emp_id FROM employees e1 WHERE e1.salary > \
             (SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e1.dept_id)",
        )
        .unwrap(),
    )
    .unwrap();
    let ann = CostAnnotations::new();
    let cache = SamplingCache::default();
    let mut opt = Optimizer::new(&cat, &ann, &cache);
    let plan = opt.optimize(&tree, None).unwrap();
    let eng = Engine::new(&cat, &st);
    eng.run(&plan).unwrap();
    let stats = eng.stats();
    // 12 probes over 5 distinct dept bindings (incl NULL)
    assert_eq!(stats.cache_misses, 5, "{stats:?}");
    assert_eq!(stats.cache_hits, 7, "{stats:?}");
}

#[test]
fn case_expression() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT CASE WHEN salary > 9000 THEN 'high' ELSE 'low' END FROM employees \
         WHERE emp_id = 11",
    );
    assert_eq!(rows[0][0], Value::str("high"));
}

#[test]
fn arithmetic_and_functions() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT salary * 2 + 1, MOD(emp_id, 3), ABS(0 - salary), NVL(mgr_id, 0 - 1) \
         FROM employees WHERE emp_id = 0",
    );
    assert_eq!(rows[0][0], Value::Int(2001));
    assert_eq!(rows[0][1], Value::Int(0));
    assert_eq!(rows[0][2], Value::Int(1000));
    assert_eq!(rows[0][3], Value::Int(-1)); // mgr is NULL for emp 0
}

#[test]
fn derived_table_executes() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT v.dept_id, v.avg_sal FROM \
         (SELECT dept_id, AVG(salary) avg_sal FROM employees GROUP BY dept_id) v \
         WHERE v.avg_sal > 5500 ORDER BY v.dept_id",
    );
    // avgs: d0 5000, d1 6000, d2 7000, d3 6000, null 12000
    assert_eq!(rows.len(), 4);
    assert_eq!(rows[0][0], Value::Int(1));
}

#[test]
fn like_predicate() {
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT name FROM employees WHERE name LIKE 'emp1%' ORDER BY name",
    );
    // emp1, emp10, emp11
    assert_eq!(rows.len(), 3);
}

#[test]
fn semijoin_caching_in_nl() {
    // construct a plan with semi join manually through unnesting-shaped
    // SQL is not possible pre-transform; validated indirectly via the
    // EXISTS TIS path (cache stats) above. Here check hash-join inner.
    let (cat, st) = setup();
    let rows = run(
        &cat,
        &st,
        "SELECT e.emp_id FROM employees e JOIN departments d ON e.dept_id = d.dept_id \
         WHERE d.loc_id = 1 ORDER BY e.emp_id",
    );
    // depts 2,3 → emps 2,3,6,7,10
    assert_eq!(ints(&rows), vec![2, 3, 6, 7, 10]);
}

// ---------------------------------------------------------------------
// Vectorized batch-boundary edges: the batch interpreter must agree
// with the Volcano engine on empty inputs, final partial batches,
// NULL-heavy columns, and governor budgets that trip mid-batch.

/// A wide-enough table to cross the 1024-row batch size: `nums(n, grp)`
/// with `total` rows, `grp = n % 7`, and `n` NULL for every third row
/// when `null_heavy`.
fn setup_large(total: i64, null_heavy: bool) -> (Catalog, Storage) {
    let mut cat = Catalog::new();
    let icol = |n: &str| Column {
        name: n.into(),
        data_type: DataType::Int,
        not_null: false,
    };
    let t = cat
        .add_table("nums", vec![icol("n"), icol("grp")], vec![])
        .unwrap();
    let st = Storage::new();
    st.create_table(t);
    for i in 0..total {
        let n = if null_heavy && i % 3 == 0 {
            Value::Null
        } else {
            Value::Int(i)
        };
        st.insert(t, vec![n, Value::Int(i % 7)]).unwrap();
    }
    st.analyze(&mut cat).unwrap();
    (cat, st)
}

fn run_mode(
    cat: &Catalog,
    st: &Storage,
    sql: &str,
    mode: cbqt_common::ExecutionMode,
) -> cbqt_common::Result<Vec<Vec<Value>>> {
    let tree = build_query_tree(cat, &parse_query(sql).unwrap()).unwrap();
    let ann = CostAnnotations::new();
    let cache = SamplingCache::default();
    let mut opt = Optimizer::new(cat, &ann, &cache);
    let plan = opt.optimize(&tree, None).unwrap();
    let mut eng = Engine::new(cat, st);
    eng.set_mode(mode);
    eng.run(&plan)
}

fn assert_modes_agree(cat: &Catalog, st: &Storage, sql: &str) -> Vec<Vec<Value>> {
    use cbqt_common::ExecutionMode::{Vectorized, Volcano};
    let v = run_mode(cat, st, sql, Vectorized).unwrap();
    let o = run_mode(cat, st, sql, Volcano).unwrap();
    assert_eq!(v, o, "engines disagree on {sql}");
    v
}

#[test]
fn vectorized_empty_scan_and_empty_filter_result() {
    let (cat, st) = setup_large(0, false);
    let rows = assert_modes_agree(&cat, &st, "SELECT n FROM nums");
    assert!(rows.is_empty());
    // empty input through a scalar aggregate: one all-NULL/zero row
    let rows = assert_modes_agree(&cat, &st, "SELECT COUNT(*), SUM(n) FROM nums");
    assert_eq!(rows[0][0], Value::Int(0));
    assert!(rows[0][1].is_null());

    // non-empty scan whose filter keeps nothing
    let (cat, st) = setup_large(2000, false);
    let rows = assert_modes_agree(&cat, &st, "SELECT n FROM nums WHERE n < 0");
    assert!(rows.is_empty());
}

#[test]
fn vectorized_final_partial_batch() {
    // 2500 = 2 full 1024-row batches + a 452-row tail
    let (cat, st) = setup_large(2500, false);
    let rows = assert_modes_agree(
        &cat,
        &st,
        "SELECT COUNT(*), SUM(n), MIN(n), MAX(n) FROM nums WHERE n >= 1000",
    );
    assert_eq!(rows[0][0], Value::Int(1500));
    assert_eq!(rows[0][2], Value::Int(1000));
    assert_eq!(rows[0][3], Value::Int(2499));

    let rows = assert_modes_agree(
        &cat,
        &st,
        "SELECT grp, COUNT(*) FROM nums GROUP BY grp ORDER BY grp",
    );
    assert_eq!(rows.len(), 7);
    let total: i64 = rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
    assert_eq!(total, 2500);
}

#[test]
fn vectorized_null_heavy_columns() {
    let (cat, st) = setup_large(3000, true);
    // every third n is NULL: filters, aggregates and DISTINCT must all
    // treat them with SQL null semantics in both engines
    let rows = assert_modes_agree(
        &cat,
        &st,
        "SELECT COUNT(*), COUNT(n), SUM(n) FROM nums WHERE n > 100 OR n IS NULL",
    );
    assert_eq!(rows[0][0].as_i64().unwrap(), 1000 + 1933);
    assert_eq!(rows[0][1].as_i64().unwrap(), 1933);
    assert_modes_agree(
        &cat,
        &st,
        "SELECT DISTINCT grp FROM nums WHERE n IS NULL ORDER BY grp",
    );
    assert_modes_agree(
        &cat,
        &st,
        "SELECT grp, COUNT(n), COUNT(*) FROM nums GROUP BY grp ORDER BY grp",
    );
}

#[test]
fn vectorized_row_budget_trips_mid_batch() {
    use cbqt_common::{CancelToken, Error, ExecutionLimits, Governor};
    let (cat, st) = setup_large(2500, false);
    let tree = build_query_tree(&cat, &parse_query("SELECT SUM(n) FROM nums").unwrap()).unwrap();
    let ann = CostAnnotations::new();
    let cache = SamplingCache::default();
    let mut opt = Optimizer::new(&cat, &ann, &cache);
    let plan = opt.optimize(&tree, None).unwrap();
    for mode in [
        cbqt_common::ExecutionMode::Vectorized,
        cbqt_common::ExecutionMode::Volcano,
    ] {
        // 1500 sits strictly inside the second 1024-row batch, so the
        // vectorized engine must notice exhaustion mid-batch, not only
        // at batch boundaries
        let limits = ExecutionLimits::none().with_row_budget(1500);
        let mut eng = Engine::new(&cat, &st);
        eng.set_mode(mode);
        eng.set_governor(Governor::new(&limits, CancelToken::new()));
        match eng.run(&plan) {
            Err(Error::ResourceExhausted(_)) => {}
            other => panic!("{mode:?}: expected ResourceExhausted, got {other:?}"),
        }
        // a budget that covers the whole scan (plus aggregate and
        // projection passes) must not trip
        let limits = ExecutionLimits::none().with_row_budget(20_000);
        let mut eng = Engine::new(&cat, &st);
        eng.set_mode(mode);
        eng.set_governor(Governor::new(&limits, CancelToken::new()));
        let rows = eng.run(&plan).unwrap();
        assert_eq!(rows[0][0].as_i64().unwrap(), 2500 * 2499 / 2);
    }
}

#[test]
fn vectorized_and_volcano_agree_on_joins_and_setops() {
    let (cat, st) = setup();
    for sql in [
        "SELECT e.emp_id, d.loc_id FROM employees e, departments d \
         WHERE e.dept_id = d.dept_id ORDER BY e.emp_id",
        "SELECT e.emp_id, d.loc_id FROM employees e LEFT JOIN departments d \
         ON e.dept_id = d.dept_id ORDER BY e.emp_id",
        "SELECT dept_id FROM employees UNION SELECT dept_id FROM departments",
        "SELECT dept_id FROM departments MINUS SELECT dept_id FROM employees",
        "SELECT dept_id FROM employees INTERSECT SELECT dept_id FROM departments",
        "SELECT dept_id, COUNT(*), AVG(salary) FROM employees \
         GROUP BY dept_id HAVING COUNT(*) > 1 ORDER BY dept_id",
        "SELECT DISTINCT dept_id FROM employees ORDER BY dept_id",
    ] {
        assert_modes_agree(&cat, &st, sql);
    }
}
