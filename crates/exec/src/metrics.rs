//! Per-operator runtime counters backing `EXPLAIN ANALYZE`.
//!
//! When enabled on an [`Engine`](crate::Engine), every execution of a
//! block or join-tree node records rows produced, work units and wall
//! time, keyed by the plan element's address (see
//! [`PlanEntity::addr`]) — stable because both execution and the later
//! annotated explain walk the *same* borrowed, immutable plan value.

use cbqt_optimizer::PlanEntity;
use std::collections::HashMap;
use std::time::Duration;

/// Runtime counters for one plan operator, accumulated across all of its
/// executions in a single query run (lateral views and correlated
/// subqueries execute many times).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpMetrics {
    /// Total rows produced across all executions.
    pub rows: u64,
    /// Number of executions. Correlation-cache hits do not execute and
    /// are therefore not counted.
    pub execs: u64,
    /// Work units, inclusive of children (same currency as the cost
    /// model, so `work` is directly comparable to estimated cost).
    pub work: f64,
    /// Wall time, inclusive of children.
    pub elapsed: Duration,
}

/// Side table of [`OpMetrics`] per plan element, filled in by the engine
/// and consumed by `BlockPlan::explain_annotated`.
#[derive(Debug, Clone, Default)]
pub struct ExecMetrics {
    map: HashMap<usize, OpMetrics>,
}

impl ExecMetrics {
    pub fn new() -> ExecMetrics {
        ExecMetrics::default()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Accumulates one execution of the element at `addr`.
    pub fn record(&mut self, addr: usize, rows: u64, work: f64, elapsed: Duration) {
        let m = self.map.entry(addr).or_default();
        m.rows += rows;
        m.execs += 1;
        m.work += work;
        m.elapsed += elapsed;
    }

    pub fn get(&self, entity: PlanEntity<'_>) -> Option<OpMetrics> {
        self.map.get(&entity.addr()).copied()
    }

    /// All `(addr, metrics)` pairs, sorted by address. Two engines run
    /// against the *same* plan allocation use identical addresses, so
    /// the differential oracle compares these snapshots directly.
    pub fn snapshot(&self) -> Vec<(usize, OpMetrics)> {
        let mut v: Vec<(usize, OpMetrics)> = self.map.iter().map(|(&a, &m)| (a, m)).collect();
        v.sort_by_key(|(a, _)| *a);
        v
    }

    /// EXPLAIN-line annotation for one plan element. Operators the run
    /// never reached (e.g. pruned by an empty outer side) are labelled
    /// explicitly so estimation gaps stand out.
    pub fn annotate(&self, entity: PlanEntity<'_>) -> Option<String> {
        Some(match self.get(entity) {
            Some(m) => format!(
                "[actual rows={} execs={} work={:.0} time={:.3}ms]",
                m.rows,
                m.execs,
                m.work,
                m.elapsed.as_secs_f64() * 1e3,
            ),
            None => "[never executed]".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_across_executions() {
        let mut m = ExecMetrics::new();
        m.record(42, 10, 5.0, Duration::from_millis(1));
        m.record(42, 7, 2.5, Duration::from_millis(2));
        let op = m.map[&42];
        assert_eq!(op.rows, 17);
        assert_eq!(op.execs, 2);
        assert!((op.work - 7.5).abs() < 1e-9);
        assert_eq!(op.elapsed, Duration::from_millis(3));
    }
}
