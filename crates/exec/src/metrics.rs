//! Per-operator runtime counters backing `EXPLAIN ANALYZE` and the
//! cardinality-feedback loop.
//!
//! When enabled on an [`Engine`](crate::Engine), every execution of a
//! block or join-tree node records rows produced, work units and wall
//! time, keyed by the element's stable [`PlanNodeId`] — the ordinal the
//! [`PlanIndex`] assigns in canonical plan order. Unlike the raw
//! addresses used previously, ids survive plan cloning and can never
//! alias an element of a *different* live plan: a metrics table also
//! carries the [fingerprint](PlanIndex::fingerprint) of the plan it was
//! recorded against, and reading it through an index with a different
//! fingerprint yields nothing instead of silently wrong counters.

use cbqt_optimizer::{PlanEntity, PlanIndex, PlanNodeId};
use std::collections::HashMap;
use std::time::Duration;

/// Runtime counters for one plan operator, accumulated across all of its
/// executions in a single query run (lateral views and correlated
/// subqueries execute many times).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpMetrics {
    /// Total rows produced across all executions.
    pub rows: u64,
    /// Number of executions. Correlation-cache hits do not execute and
    /// are therefore not counted.
    pub execs: u64,
    /// Work units, inclusive of children (same currency as the cost
    /// model, so `work` is directly comparable to estimated cost).
    pub work: f64,
    /// Wall time, inclusive of children.
    pub elapsed: Duration,
}

impl OpMetrics {
    /// Rows produced per execution — the quantity a per-execution
    /// cardinality estimate predicts (correlated operators re-execute,
    /// so cumulative rows alone would overstate their cardinality).
    pub fn rows_per_exec(&self) -> f64 {
        self.rows as f64 / self.execs.max(1) as f64
    }
}

/// Side table of [`OpMetrics`] per plan element, filled in by the engine
/// and consumed by `BlockPlan::explain_annotated` and the feedback
/// harvester.
#[derive(Debug, Clone, Default)]
pub struct ExecMetrics {
    map: HashMap<PlanNodeId, OpMetrics>,
    /// Fingerprint of the plan these counters were recorded against
    /// (0 until [`ExecMetrics::bind`]).
    fingerprint: u64,
}

impl ExecMetrics {
    pub fn new() -> ExecMetrics {
        ExecMetrics::default()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Binds the table to the plan it will record, so later reads
    /// through a [`PlanIndex`] of a *different* plan are rejected.
    pub fn bind(&mut self, fingerprint: u64) {
        self.fingerprint = fingerprint;
    }

    /// Fingerprint of the plan the counters were recorded against.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// True when this table was recorded against a plan structurally
    /// identical to the one `index` describes.
    pub fn matches(&self, index: &PlanIndex) -> bool {
        self.fingerprint == index.fingerprint()
    }

    /// Accumulates one execution of the element `id`.
    pub fn record(&mut self, id: PlanNodeId, rows: u64, work: f64, elapsed: Duration) {
        let m = self.map.entry(id).or_default();
        m.rows += rows;
        m.execs += 1;
        m.work += work;
        m.elapsed += elapsed;
    }

    /// Counters for one element by stable id (no fingerprint check —
    /// use [`ExecMetrics::get`] when resolving through an index).
    pub fn get_id(&self, id: PlanNodeId) -> Option<OpMetrics> {
        self.map.get(&id).copied()
    }

    /// Counters for a borrowed plan element, resolved through `index`.
    /// Returns `None` when the element is not part of the indexed plan
    /// or the metrics were recorded against a structurally different
    /// plan (fingerprint mismatch) — the case address keying silently
    /// got wrong.
    pub fn get(&self, index: &PlanIndex, entity: PlanEntity<'_>) -> Option<OpMetrics> {
        if !self.matches(index) {
            return None;
        }
        self.map.get(&index.id_of(entity)?).copied()
    }

    /// All `(id, metrics)` pairs in canonical plan order. Ids are
    /// structural, so two engines run against *any* allocation of the
    /// same plan produce directly comparable snapshots — the
    /// differential oracle compares these.
    pub fn snapshot(&self) -> Vec<(PlanNodeId, OpMetrics)> {
        let mut v: Vec<(PlanNodeId, OpMetrics)> = self.map.iter().map(|(&a, &m)| (a, m)).collect();
        v.sort_by_key(|(a, _)| *a);
        v
    }

    /// EXPLAIN-line annotation for one plan element. Operators the run
    /// never reached (e.g. pruned by an empty outer side) are labelled
    /// explicitly so estimation gaps stand out; metrics recorded against
    /// a structurally different plan are refused rather than misread.
    pub fn annotate(&self, index: &PlanIndex, entity: PlanEntity<'_>) -> Option<String> {
        if !self.matches(index) {
            return Some("[metrics from different plan]".to_string());
        }
        Some(match index.id_of(entity).and_then(|id| self.get_id(id)) {
            Some(m) => format!(
                "[actual rows={} execs={} work={:.0} time={:.3}ms]",
                m.rows,
                m.execs,
                m.work,
                m.elapsed.as_secs_f64() * 1e3,
            ),
            None => "[never executed]".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_across_executions() {
        let mut m = ExecMetrics::new();
        m.record(PlanNodeId(42), 10, 5.0, Duration::from_millis(1));
        m.record(PlanNodeId(42), 7, 2.5, Duration::from_millis(2));
        let op = m.map[&PlanNodeId(42)];
        assert_eq!(op.rows, 17);
        assert_eq!(op.execs, 2);
        assert!((op.work - 7.5).abs() < 1e-9);
        assert_eq!(op.elapsed, Duration::from_millis(3));
        assert!((op.rows_per_exec() - 8.5).abs() < 1e-9);
    }

    #[test]
    fn rows_per_exec_is_zero_safe() {
        let m = OpMetrics::default();
        assert_eq!(m.rows_per_exec(), 0.0);
    }
}
