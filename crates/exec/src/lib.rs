//! Execution engine: a row-oriented interpreter over physical plans.
//!
//! The engine implements everything the paper's transformations need to
//! be *observable* in run time:
//!
//! * tuple-iteration-semantics (TIS) evaluation of non-unnested
//!   subqueries, with **correlation caching** keyed on the binding values
//!   (the paper notes Oracle caches semijoin/antijoin and filter results;
//!   §2.1.1);
//! * nested-loop (block and index-probe), hash, and sort-merge joins with
//!   inner / semi / anti (incl. null-aware) / left-outer variants and
//!   stop-at-first-match behaviour;
//! * lateral re-execution of correlated (JPPD) views;
//! * hash aggregation with grouping sets, windowed aggregates, distinct
//!   and generalized distinct-on, ORDER BY, and Oracle-style ROWNUM
//!   semantics (the limit applies before GROUP BY / ORDER BY, with early
//!   exit so pulled-up expensive predicates are only evaluated until the
//!   limit fills);
//! * deterministic *work units* counted with the same weights the cost
//!   model uses, so measured work and estimated cost share a currency.

pub(crate) mod batch;
pub mod engine;
pub mod eval;
pub mod metrics;
pub(crate) mod vexpr;

pub use engine::{Engine, ExecStats};
pub use metrics::{ExecMetrics, OpMetrics};

#[cfg(test)]
mod tests;
