//! Columnar batch execution: the vectorized counterpart of the Volcano
//! row interpreter in [`crate::engine`].
//!
//! Operators exchange [`Batch`]es of up to [`BATCH_SIZE`] rows stored
//! column-wise; predicates and projections run as [`crate::vexpr`]
//! programs compiled once per operator. Work-unit charges and governor
//! row ticks are the batch-granular aggregates of exactly what the row
//! engine charges per row, so both engines produce identical results,
//! per-operator row counts, work totals, and governor outcomes — the
//! property the fuzzer's `--differential-exec` mode asserts.
//!
//! Operators the batch form cannot express faithfully fall back to the
//! row engine: lateral joins and nested-loop / merge joins run through
//! [`Engine::exec_node`] (which records its own metrics), window
//! functions and ROWNUM limits drop to rows for the affected stage.

use crate::engine::{combined_layout, concat, null_pad, order_cmp, Engine};
use crate::eval::{compute_windows, AggAcc, Bindings, EvalCtx};
use crate::vexpr::{compile, CompileCtx, VecExpr};
use cbqt_common::failpoint;
use cbqt_common::{Error, Result, Row, Value};
use cbqt_optimizer::{weights, JoinMethod, Layout, PlanJoinKind, PlanNode, SelectPlan};
use cbqt_qgm::QExpr;
use std::collections::{HashMap, HashSet};

/// Target rows per batch: large enough to amortize per-batch dispatch,
/// small enough to keep a batch's columns cache-resident.
pub(crate) const BATCH_SIZE: usize = 1024;

/// A columnar batch: `cols[j][i]` is column `j` of row `i`.
///
/// A zero-width batch (`cols` empty) still carries `len` rows — the
/// OneRow source produces exactly that shape.
#[derive(Debug, Clone, Default)]
pub(crate) struct Batch {
    pub cols: Vec<Vec<Value>>,
    pub len: usize,
}

impl Batch {
    /// Reassembles row `i` as a wide row (for row-wise fallbacks).
    pub fn gather_row(&self, i: usize) -> Row {
        self.cols.iter().map(|c| c[i].clone()).collect()
    }

    /// Keeps only the rows named by `sel`, in order.
    pub fn gather(&self, sel: &[usize]) -> Batch {
        Batch {
            cols: self
                .cols
                .iter()
                .map(|c| sel.iter().map(|&i| c[i].clone()).collect())
                .collect(),
            len: sel.len(),
        }
    }

    /// Moves the batch into row form.
    pub fn into_rows(self) -> Vec<Row> {
        let mut iters: Vec<_> = self.cols.into_iter().map(|c| c.into_iter()).collect();
        (0..self.len)
            .map(|_| iters.iter_mut().map(|it| it.next().unwrap()).collect())
            .collect()
    }
}

/// Transposes rows into batches of at most [`BATCH_SIZE`], moving values.
pub(crate) fn rows_to_batches(rows: Vec<Row>, width: usize) -> Vec<Batch> {
    let mut out = Vec::with_capacity(rows.len().div_ceil(BATCH_SIZE).max(1));
    let mut cols: Vec<Vec<Value>> = vec![Vec::new(); width];
    let mut n = 0usize;
    for row in rows {
        for (j, v) in row.into_iter().enumerate().take(width) {
            cols[j].push(v);
        }
        n += 1;
        if n == BATCH_SIZE {
            out.push(Batch {
                cols: std::mem::replace(&mut cols, vec![Vec::new(); width]),
                len: n,
            });
            n = 0;
        }
    }
    if n > 0 {
        out.push(Batch { cols, len: n });
    }
    out
}

/// Flattens batches back into rows, moving values.
pub(crate) fn batches_to_rows(batches: Vec<Batch>) -> Vec<Row> {
    let mut out = Vec::new();
    for b in batches {
        out.extend(b.into_rows());
    }
    out
}

/// Whether the batch interpreter executes this node natively. Lateral
/// joins re-execute their right side per left row, and nested-loop /
/// merge joins are row-wise by nature — those run through the row
/// engine wholesale.
fn batchable(node: &PlanNode) -> bool {
    match node {
        PlanNode::Join {
            method, lateral, ..
        } => !*lateral && matches!(method, JoinMethod::Hash),
        _ => true,
    }
}

/// Executes a plan node into batches, recording per-operator metrics
/// under the same stable plan-node id the row engine uses (so EXPLAIN
/// ANALYZE output and the differential oracle line up across engines).
pub(crate) fn exec_node_batched(
    eng: &Engine<'_>,
    node: &PlanNode,
    binds: &Bindings<'_>,
) -> Result<Vec<Batch>> {
    if !batchable(node) {
        // exec_node records its own metrics for this node and its subtree
        let rows = eng.exec_node(node, binds)?;
        return Ok(rows_to_batches(rows, node.width()));
    }
    if !eng.metrics_enabled() {
        return exec_node_batched_inner(eng, node, binds);
    }
    let work0 = eng.work_now();
    let start = eng.metrics_timed().then(std::time::Instant::now);
    let out = exec_node_batched_inner(eng, node, binds)?;
    eng.record_metric(
        node as *const PlanNode as usize,
        out.iter().map(|b| b.len as u64).sum(),
        eng.work_now() - work0,
        start.map(|s| s.elapsed()).unwrap_or_default(),
    );
    Ok(out)
}

fn exec_node_batched_inner(
    eng: &Engine<'_>,
    node: &PlanNode,
    binds: &Bindings<'_>,
) -> Result<Vec<Batch>> {
    match node {
        PlanNode::OneRow => {
            eng.add_work(weights::ROW);
            Ok(vec![Batch {
                cols: Vec::new(),
                len: 1,
            }])
        }
        PlanNode::ScanBase {
            table,
            refid,
            width,
            access,
            filter,
            ..
        } => {
            cbqt_common::failpoint!(failpoint::EXEC_SCAN);
            let w = *width;
            let layout = Layout {
                slots: vec![(*refid, 0, w)],
                width: w,
            };
            let ctx = eng.simple_ctx(&layout, binds);
            let data = eng.snapshot().table(*table)?;
            let ordinals = eng.scan_ordinals(access, &ctx, &data)?;
            let cxp = CompileCtx::plain(&layout, eng.params());
            let progs: Vec<VecExpr> = filter.iter().map(|c| compile(c, &cxp)).collect();
            let needs_full = progs.iter().any(VecExpr::uses_fallback);
            let have = needed_cols(&progs, w, needs_full);
            let mut out = Vec::new();
            for chunk in ordinals.chunks(BATCH_SIZE) {
                eng.tick_rows(chunk.len() as u64)?;
                // materialize only the columns the filter reads; the
                // ROWID pseudo-column sits at index `w - 1`
                let mut fb = Batch {
                    cols: vec![Vec::new(); w],
                    len: chunk.len(),
                };
                for (j, col) in fb.cols.iter_mut().enumerate() {
                    if !have[j] {
                        continue;
                    }
                    col.reserve(chunk.len());
                    if j + 1 == w {
                        col.extend(chunk.iter().map(|&o| Value::Int(o as i64)));
                    } else {
                        col.extend(chunk.iter().map(|&o| data.row(o)[j].clone()));
                    }
                }
                let sel = filter_batch(eng, &fb, &progs, &ctx)?;
                if sel.is_empty() {
                    continue;
                }
                // full-width output for the survivors only
                let mut ob = Batch {
                    cols: vec![Vec::with_capacity(sel.len()); w],
                    len: sel.len(),
                };
                for (j, col) in ob.cols.iter_mut().enumerate() {
                    if have[j] {
                        col.extend(sel.iter().map(|&k| fb.cols[j][k].clone()));
                    } else if j + 1 == w {
                        col.extend(sel.iter().map(|&k| Value::Int(chunk[k] as i64)));
                    } else {
                        col.extend(sel.iter().map(|&k| data.row(chunk[k])[j].clone()));
                    }
                }
                out.push(ob);
            }
            Ok(out)
        }
        PlanNode::ScanView {
            refid,
            width,
            plan,
            filter,
            ..
        } => {
            let rows = eng.execute_cached(plan, binds)?;
            let w = *width;
            let layout = Layout {
                slots: vec![(*refid, 0, w)],
                width: w,
            };
            let ctx = eng.simple_ctx(&layout, binds);
            let cxp = CompileCtx::plain(&layout, eng.params());
            let progs: Vec<VecExpr> = filter.iter().map(|c| compile(c, &cxp)).collect();
            let needs_full = progs.iter().any(VecExpr::uses_fallback);
            let have = needed_cols(&progs, w, needs_full);
            let mut out = Vec::new();
            let mut start = 0usize;
            while start < rows.len() {
                let end = (start + BATCH_SIZE).min(rows.len());
                let n = end - start;
                eng.tick_rows(n as u64)?;
                eng.add_work(n as f64 * weights::ROW);
                let mut fb = Batch {
                    cols: vec![Vec::new(); w],
                    len: n,
                };
                for (j, col) in fb.cols.iter_mut().enumerate() {
                    if !have[j] {
                        continue;
                    }
                    col.reserve(n);
                    col.extend(rows[start..end].iter().map(|r| r[j].clone()));
                }
                let sel = filter_batch(eng, &fb, &progs, &ctx)?;
                if !sel.is_empty() {
                    let mut ob = Batch {
                        cols: vec![Vec::with_capacity(sel.len()); w],
                        len: sel.len(),
                    };
                    for (j, col) in ob.cols.iter_mut().enumerate() {
                        if have[j] {
                            col.extend(sel.iter().map(|&k| fb.cols[j][k].clone()));
                        } else {
                            col.extend(sel.iter().map(|&k| rows[start + k][j].clone()));
                        }
                    }
                    out.push(ob);
                }
                start = end;
            }
            Ok(out)
        }
        PlanNode::Join {
            left,
            right,
            kind,
            equi,
            residual,
            ..
        } => hash_join_batched(eng, left, right, *kind, equi, residual, binds, node.width()),
    }
}

/// Column mask for sparse scan materialization: which of the `w` batch
/// columns the filter programs read. Fallback programs gather full rows,
/// so they force every column on.
fn needed_cols(progs: &[VecExpr], w: usize, needs_full: bool) -> Vec<bool> {
    let mut have = vec![needs_full; w];
    if !needs_full {
        let mut idx = Vec::new();
        for p in progs {
            p.collect_cols(&mut idx);
        }
        for j in idx {
            if j < w {
                have[j] = true;
            }
        }
    }
    have
}

/// Applies compiled filter conjuncts to a batch with selection
/// refinement. Charges one PRED per conjunct per row still selected —
/// the aggregate of the row engine's per-row break-on-fail charges.
pub(crate) fn filter_batch(
    eng: &Engine<'_>,
    b: &Batch,
    progs: &[VecExpr],
    ctx: &EvalCtx<'_>,
) -> Result<Vec<usize>> {
    let mut sel: Vec<usize> = (0..b.len).collect();
    for p in progs {
        if sel.is_empty() {
            break;
        }
        eng.add_work(sel.len() as f64 * weights::PRED);
        let t = p.eval_truth(b, &sel, ctx)?;
        sel = sel
            .iter()
            .zip(t.iter())
            .filter(|(_, t)| t.passes())
            .map(|(&i, _)| i)
            .collect();
    }
    Ok(sel)
}

/// Hash join over batches: build and probe keys are computed column-wise
/// per batch; candidate matching, residual predicates, and output
/// emission mirror the row engine's `hash_join` exactly (same tick
/// counts, same work charges, same null-aware anti-join semantics).
#[allow(clippy::too_many_arguments)]
fn hash_join_batched(
    eng: &Engine<'_>,
    left: &PlanNode,
    right: &PlanNode,
    kind: PlanJoinKind,
    equi: &[(QExpr, QExpr)],
    residual: &[QExpr],
    binds: &Bindings<'_>,
    out_width: usize,
) -> Result<Vec<Batch>> {
    cbqt_common::failpoint!(failpoint::EXEC_JOIN);
    let lbatches = exec_node_batched(eng, left, binds)?;
    let llayout = Layout::from_node(left);
    let rlayout = Layout::from_node(right);
    let combined = combined_layout(&llayout, &rlayout);
    let rwidth = right.width();
    let cctx = eng.simple_ctx(&combined, binds);
    let rkctx = eng.simple_ctx(&rlayout, binds);
    let lkctx = eng.simple_ctx(&llayout, binds);
    let rbatches = exec_node_batched(eng, right, binds)?;

    // build on right
    let rprogs: Vec<VecExpr> = {
        let cxr = CompileCtx::plain(&rlayout, eng.params());
        equi.iter().map(|(_, re)| compile(re, &cxr)).collect()
    };
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    let mut right_has_null_key = false;
    let mut base = 0usize;
    for b in &rbatches {
        eng.tick_rows(b.len as u64)?;
        eng.add_work(b.len as f64 * weights::HASH_BUILD);
        let sel: Vec<usize> = (0..b.len).collect();
        let kcols: Vec<Vec<Value>> = rprogs
            .iter()
            .map(|p| p.eval(b, &sel, &rkctx))
            .collect::<Result<_>>()?;
        for i in 0..b.len {
            let key: Vec<Value> = kcols.iter().map(|c| c[i].clone()).collect();
            if key.iter().any(Value::is_null) {
                right_has_null_key = true;
                continue;
            }
            table.entry(key).or_default().push(base + i);
        }
        base += b.len;
    }
    let rrows = batches_to_rows(rbatches);

    // probe keys, column-wise per left batch
    let lprogs: Vec<VecExpr> = {
        let cxl = CompileCtx::plain(&llayout, eng.params());
        equi.iter().map(|(le, _)| compile(le, &cxl)).collect()
    };
    let mut lkeys: Vec<Vec<Value>> = Vec::new();
    for b in &lbatches {
        eng.tick_rows(b.len as u64)?;
        eng.add_work(b.len as f64 * weights::HASH_PROBE);
        let sel: Vec<usize> = (0..b.len).collect();
        let kcols: Vec<Vec<Value>> = lprogs
            .iter()
            .map(|p| p.eval(b, &sel, &lkctx))
            .collect::<Result<_>>()?;
        for i in 0..b.len {
            lkeys.push(kcols.iter().map(|c| c[i].clone()).collect());
        }
    }
    let lrows = batches_to_rows(lbatches);

    let mut out: Vec<Row> = Vec::new();
    for (k, lrow) in lrows.iter().enumerate() {
        let key = &lkeys[k];
        let null_key = key.iter().any(Value::is_null);
        let hits = if null_key { None } else { table.get(key) };
        let mut matched = false;
        if let Some(idxs) = hits {
            for &i in idxs {
                eng.tick()?;
                let rrow = &rrows[i];
                if !residual.is_empty() {
                    eng.add_work(residual.len() as f64 * weights::PRED);
                    let crow = concat(lrow, rrow);
                    let mut pass = true;
                    for c in residual {
                        if !cctx.eval_truth(c, &crow)?.passes() {
                            pass = false;
                            break;
                        }
                    }
                    if !pass {
                        continue;
                    }
                }
                matched = true;
                match kind {
                    PlanJoinKind::Inner | PlanJoinKind::LeftOuter => {
                        out.push(concat(lrow, rrow));
                    }
                    PlanJoinKind::Semi => {
                        out.push(lrow.clone());
                        break;
                    }
                    PlanJoinKind::Anti { .. } => break,
                }
            }
        }
        if !matched {
            match kind {
                PlanJoinKind::LeftOuter => out.push(null_pad(lrow, rwidth)),
                PlanJoinKind::Anti { null_aware } => {
                    if null_aware {
                        // NOT IN: a NULL probe key never qualifies unless
                        // the right side is empty
                        if rrows.is_empty() || (!null_key && !right_has_null_key) {
                            out.push(lrow.clone());
                        }
                    } else {
                        out.push(lrow.clone());
                    }
                }
                _ => {}
            }
        }
    }
    eng.add_work(out.len() as f64 * weights::ROW);
    Ok(rows_to_batches(out, out_width))
}

/// Vectorized select-block pipeline: the batch counterpart of
/// `Engine::exec_select`, stage for stage.
pub(crate) fn exec_select_batched(
    eng: &Engine<'_>,
    sp: &SelectPlan,
    binds: &Bindings<'_>,
) -> Result<Vec<Row>> {
    let mut batches = exec_node_batched(eng, &sp.join, binds)?;
    let base_ctx = EvalCtx {
        engine: eng,
        layout: &sp.layout,
        aggs: &sp.aggs,
        agg_base: sp.layout.width,
        windows: &sp.windows,
        win_base: sp.layout.width + sp.aggs.len(),
        subplans: &sp.subplans,
        outer: binds.clone(),
    };
    let cx = CompileCtx {
        layout: &sp.layout,
        aggs: &sp.aggs,
        agg_base: sp.layout.width,
        windows: &sp.windows,
        win_base: sp.layout.width + sp.aggs.len(),
        params: eng.params(),
    };

    // WHERE residue + ROWNUM
    if sp.rownum_limit.is_some() {
        // the limit's early exit decides exactly which rows ever get
        // evaluated — reuse the shared row loop
        let rows = eng.post_filter_rows(sp, &base_ctx, batches_to_rows(batches))?;
        batches = rows_to_batches(rows, sp.layout.width);
    } else {
        let progs: Vec<VecExpr> = sp.post_filter.iter().map(|c| compile(c, &cx)).collect();
        let mut kept = Vec::with_capacity(batches.len());
        for b in batches {
            eng.tick_rows(b.len as u64)?;
            let sel = filter_batch(eng, &b, &progs, &base_ctx)?;
            if sel.len() == b.len {
                kept.push(b);
            } else if !sel.is_empty() {
                kept.push(b.gather(&sel));
            }
        }
        batches = kept;
    }

    // aggregation + HAVING
    let aggregated = !sp.group_by.is_empty()
        || sp.grouping_sets.is_some()
        || !sp.aggs.is_empty()
        || !sp.having.is_empty();
    if aggregated {
        batches = aggregate_batched(eng, sp, &base_ctx, &cx, batches)?;
        let progs: Vec<VecExpr> = sp.having.iter().map(|c| compile(c, &cx)).collect();
        let mut kept = Vec::with_capacity(batches.len());
        for b in batches {
            // no governor tick here: the row engine doesn't tick HAVING
            let sel = filter_batch(eng, &b, &progs, &base_ctx)?;
            if sel.len() == b.len {
                kept.push(b);
            } else if !sel.is_empty() {
                kept.push(b.gather(&sel));
            }
        }
        batches = kept;
    }

    // window functions: row-wise stage shared with the row engine
    if !sp.windows.is_empty() {
        let mut rows = batches_to_rows(batches);
        compute_windows(&base_ctx, &mut rows, &sp.windows)?;
        let w = rows.first().map(|r| r.len()).unwrap_or(0);
        batches = rows_to_batches(rows, w);
    }

    // distinct / distinct-on: first-occurrence order across batches
    if sp.distinct || sp.distinct_keys.is_some() {
        let keys: Vec<QExpr> = match &sp.distinct_keys {
            Some(k) => k.clone(),
            None => sp.select.clone(),
        };
        let kprogs: Vec<VecExpr> = keys.iter().map(|e| compile(e, &cx)).collect();
        let mut seen: HashSet<Vec<Value>> = HashSet::new();
        let mut kept = Vec::with_capacity(batches.len());
        for b in batches {
            eng.add_work(b.len as f64 * weights::DEDUP);
            let sel: Vec<usize> = (0..b.len).collect();
            let kcols: Vec<Vec<Value>> = kprogs
                .iter()
                .map(|p| p.eval(&b, &sel, &base_ctx))
                .collect::<Result<_>>()?;
            let mut keep = Vec::new();
            for i in 0..b.len {
                let key: Vec<Value> = kcols.iter().map(|c| c[i].clone()).collect();
                if seen.insert(key) {
                    keep.push(i);
                }
            }
            if keep.len() == b.len {
                kept.push(b);
            } else if !keep.is_empty() {
                kept.push(b.gather(&keep));
            }
        }
        batches = kept;
    }

    // order by: keys computed column-wise, then one stable sort
    if !sp.order_by.is_empty() {
        let total: usize = batches.iter().map(|b| b.len).sum();
        let n = total.max(2) as f64;
        eng.add_work(weights::SORT * n * n.log2());
        let oprogs: Vec<VecExpr> = sp.order_by.iter().map(|o| compile(&o.expr, &cx)).collect();
        let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(total);
        for b in batches {
            let sel: Vec<usize> = (0..b.len).collect();
            let kcols: Vec<Vec<Value>> = oprogs
                .iter()
                .map(|p| p.eval(&b, &sel, &base_ctx))
                .collect::<Result<_>>()?;
            for (i, r) in b.into_rows().into_iter().enumerate() {
                keyed.push((kcols.iter().map(|c| c[i].clone()).collect(), r));
            }
        }
        keyed.sort_by(|a, b| {
            for (j, o) in sp.order_by.iter().enumerate() {
                let ord = order_cmp(&a.0[j], &b.0[j], o.desc, o.nulls_first);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let rows: Vec<Row> = keyed.into_iter().map(|(_, r)| r).collect();
        let w = rows.first().map(|r| r.len()).unwrap_or(0);
        batches = rows_to_batches(rows, w);
    }

    // projection
    let sprogs: Vec<VecExpr> = sp.select.iter().map(|e| compile(e, &cx)).collect();
    let mut out: Vec<Row> = Vec::new();
    for b in batches {
        eng.tick_rows(b.len as u64)?;
        eng.add_work(b.len as f64 * weights::ROW);
        let sel: Vec<usize> = (0..b.len).collect();
        let pcols: Vec<Vec<Value>> = sprogs
            .iter()
            .map(|p| p.eval(&b, &sel, &base_ctx))
            .collect::<Result<_>>()?;
        out.extend(
            Batch {
                cols: pcols,
                len: b.len,
            }
            .into_rows(),
        );
    }
    Ok(out)
}

/// Batch-granular hash aggregation with representative-row semantics,
/// grouping sets, and the empty-input scalar group — the exact semantics
/// of `Engine::aggregate`, with group keys and aggregate arguments
/// evaluated column-wise per batch.
fn aggregate_batched(
    eng: &Engine<'_>,
    sp: &SelectPlan,
    ctx: &EvalCtx<'_>,
    cx: &CompileCtx<'_>,
    batches: Vec<Batch>,
) -> Result<Vec<Batch>> {
    cbqt_common::failpoint!(failpoint::EXEC_AGG);
    let sets: Vec<Vec<usize>> = match &sp.grouping_sets {
        Some(s) => s.clone(),
        None => vec![(0..sp.group_by.len()).collect()],
    };
    let make_accs = || -> Result<Vec<AggAcc>> {
        sp.aggs
            .iter()
            .map(|a| match a {
                QExpr::Agg { func, distinct, .. } => Ok(if *distinct {
                    AggAcc::new_distinct(*func)
                } else {
                    AggAcc::new(*func)
                }),
                _ => Err(Error::execution("non-aggregate in agg slot list")),
            })
            .collect()
    };
    let gprogs: Vec<VecExpr> = sp.group_by.iter().map(|g| compile(g, cx)).collect();
    // aggregate argument programs; a non-Agg slot errors later via
    // make_accs, matching the row engine
    let aprogs: Vec<Option<VecExpr>> = sp
        .aggs
        .iter()
        .map(|a| match a {
            QExpr::Agg { arg, .. } => arg.as_ref().map(|x| compile(x, cx)),
            _ => None,
        })
        .collect();

    let mut out_rows: Vec<Row> = Vec::new();
    for set in &sets {
        let mut groups: HashMap<Vec<Value>, (Row, Vec<AggAcc>)> = HashMap::new();
        let mut order: Vec<Vec<Value>> = Vec::new();
        for b in &batches {
            eng.tick_rows(b.len as u64)?;
            eng.add_work(b.len as f64 * weights::AGG);
            let sel: Vec<usize> = (0..b.len).collect();
            let kcols: Vec<Vec<Value>> = set
                .iter()
                .map(|&i| gprogs[i].eval(b, &sel, ctx))
                .collect::<Result<_>>()?;
            let acols: Vec<Option<Vec<Value>>> = aprogs
                .iter()
                .map(|p| match p {
                    Some(p) => p.eval(b, &sel, ctx).map(Some),
                    None => Ok(None),
                })
                .collect::<Result<_>>()?;
            for i in 0..b.len {
                let key: Vec<Value> = kcols.iter().map(|c| c[i].clone()).collect();
                let entry = match groups.get_mut(&key) {
                    Some(e) => e,
                    None => {
                        order.push(key.clone());
                        groups
                            .entry(key.clone())
                            .or_insert((b.gather_row(i), make_accs()?))
                    }
                };
                for (j, acc) in entry.1.iter_mut().enumerate() {
                    let v = match &acols[j] {
                        Some(c) => c[i].clone(),
                        None => Value::Int(1),
                    };
                    acc.add(&v);
                }
            }
        }
        // scalar aggregate over empty input: one all-NULL group
        if groups.is_empty() && sp.group_by.is_empty() && sets.len() == 1 {
            let mut row: Row = vec![Value::Null; sp.layout.width];
            for acc in &make_accs()? {
                row.push(acc.finish());
            }
            out_rows.push(row);
            continue;
        }
        let full_set: HashSet<usize> = set.iter().copied().collect();
        for key in order {
            let (mut rep, accs) = groups.remove(&key).unwrap();
            // grouping-set semantics: group-by columns not in this set
            // read as NULL (simple column group-bys only, which is all
            // the builder produces for ROLLUP)
            if sp.grouping_sets.is_some() {
                for (i, g) in sp.group_by.iter().enumerate() {
                    if !full_set.contains(&i) {
                        if let QExpr::Col { table, column } = g {
                            if let Some((off, w)) = sp.layout.offset_of(*table) {
                                if *column < w {
                                    rep[off + column] = Value::Null;
                                }
                            }
                        }
                    }
                }
            }
            for acc in &accs {
                rep.push(acc.finish());
            }
            out_rows.push(rep);
        }
    }
    Ok(rows_to_batches(out_rows, sp.layout.width + sp.aggs.len()))
}
