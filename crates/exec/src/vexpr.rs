//! Compiled per-batch expression programs for the vectorized engine.
//!
//! A [`VecExpr`] is compiled **once per operator** from a `QExpr` by
//! resolving every column reference to a direct batch-column index (the
//! row engine re-walks the layout per row), then evaluated with a
//! per-batch loop over a *selection vector*. Short-circuiting constructs
//! (`AND`/`OR`, `CASE`, `IN`-lists, `NVL`) refine the selection instead
//! of branching per row, so the set of `(row, subexpression)`
//! evaluations — and therefore every `EXPENSIVE()` burn and work unit —
//! is exactly the set the Volcano oracle produces.
//!
//! Constructs the batch form cannot express natively (subqueries, outer
//! correlation frames, unknown slots) compile to [`VecExpr::Fallback`],
//! which gathers the affected rows and evaluates them through the
//! ordinary row-wise [`EvalCtx`] — same TIS caches, same errors.

use crate::batch::Batch;
use crate::eval::{display_raw, like_match, truth_value, EvalCtx};
use cbqt_common::{Error, Result, Truth, Value};
use cbqt_optimizer::{weights, Layout};
use cbqt_qgm::{BinOp, QExpr};

/// Slot mapping used while compiling: mirrors the fields of [`EvalCtx`]
/// that decide how a `QExpr` resolves to a row position.
pub(crate) struct CompileCtx<'a> {
    pub layout: &'a Layout,
    pub aggs: &'a [QExpr],
    pub agg_base: usize,
    pub windows: &'a [QExpr],
    pub win_base: usize,
    /// Bind values for this execution; `QExpr::Param` compiles to the
    /// resolved constant (programs are rebuilt per execution, so the
    /// constant is always current).
    pub params: &'a [Value],
}

impl<'a> CompileCtx<'a> {
    /// A context with no aggregate / window slots (scans, join keys).
    pub fn plain(layout: &'a Layout, params: &'a [Value]) -> CompileCtx<'a> {
        CompileCtx {
            layout,
            aggs: &[],
            agg_base: 0,
            windows: &[],
            win_base: 0,
            params,
        }
    }
}

/// Built-in scalar functions the batch interpreter executes natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FuncOp {
    Expensive,
    Nvl,
    Lnnvl,
    Upper,
    Lower,
    Length,
    Abs,
    Mod,
    Floor,
    Ceil,
    Sign,
}

/// One compiled expression node.
#[derive(Debug, Clone)]
pub(crate) enum VecExpr {
    /// Local column, resolved to a direct batch-column index.
    Col(usize),
    /// Aggregate output slot; errors like the row engine when the batch
    /// does not (yet) carry aggregate columns.
    AggSlot(usize),
    /// Window output slot.
    WinSlot(usize),
    Lit(Value),
    /// Non-logical binary operator (arithmetic, comparison, `||`).
    Bin {
        op: BinOp,
        l: Box<VecExpr>,
        r: Box<VecExpr>,
    },
    And {
        l: Box<VecExpr>,
        r: Box<VecExpr>,
    },
    Or {
        l: Box<VecExpr>,
        r: Box<VecExpr>,
    },
    Not(Box<VecExpr>),
    Neg(Box<VecExpr>),
    IsNull {
        e: Box<VecExpr>,
        negated: bool,
    },
    InList {
        e: Box<VecExpr>,
        list: Vec<VecExpr>,
        negated: bool,
    },
    Like {
        e: Box<VecExpr>,
        pattern: Box<VecExpr>,
        negated: bool,
    },
    Case {
        operand: Option<Box<VecExpr>>,
        branches: Vec<(VecExpr, VecExpr)>,
        else_expr: Option<Box<VecExpr>>,
    },
    Func {
        op: FuncOp,
        args: Vec<VecExpr>,
    },
    /// Errors with the given message when evaluated over a non-empty
    /// selection; the row engine raises the same error per row, i.e.
    /// only if the expression is ever reached.
    LazyErr(String),
    /// Row-wise escape hatch: gather the row, evaluate via [`EvalCtx`].
    Fallback(QExpr),
}

/// Compiles a `QExpr` against the given slot mapping.
pub(crate) fn compile(e: &QExpr, cx: &CompileCtx<'_>) -> VecExpr {
    match e {
        QExpr::Col { table, column } => match cx.layout.offset_of(*table) {
            Some((off, w)) if *column < w => VecExpr::Col(off + column),
            Some(_) => VecExpr::LazyErr(format!("column {column} out of range for r{}", table.0)),
            // outer reference: resolved per row through the binding frames
            None => VecExpr::Fallback(e.clone()),
        },
        QExpr::Lit(v) => VecExpr::Lit(v.clone()),
        QExpr::Param { slot, peek } => VecExpr::Lit(cx.params.get(*slot).unwrap_or(peek).clone()),
        QExpr::Bin {
            op: BinOp::And,
            left,
            right,
        } => VecExpr::And {
            l: Box::new(compile(left, cx)),
            r: Box::new(compile(right, cx)),
        },
        QExpr::Bin {
            op: BinOp::Or,
            left,
            right,
        } => VecExpr::Or {
            l: Box::new(compile(left, cx)),
            r: Box::new(compile(right, cx)),
        },
        QExpr::Bin { op, left, right } => VecExpr::Bin {
            op: *op,
            l: Box::new(compile(left, cx)),
            r: Box::new(compile(right, cx)),
        },
        QExpr::Not(x) => VecExpr::Not(Box::new(compile(x, cx))),
        QExpr::Neg(x) => VecExpr::Neg(Box::new(compile(x, cx))),
        QExpr::IsNull { expr, negated } => VecExpr::IsNull {
            e: Box::new(compile(expr, cx)),
            negated: *negated,
        },
        QExpr::InList {
            expr,
            list,
            negated,
        } => VecExpr::InList {
            e: Box::new(compile(expr, cx)),
            list: list.iter().map(|i| compile(i, cx)).collect(),
            negated: *negated,
        },
        QExpr::Like {
            expr,
            pattern,
            negated,
        } => VecExpr::Like {
            e: Box::new(compile(expr, cx)),
            pattern: Box::new(compile(pattern, cx)),
            negated: *negated,
        },
        QExpr::Case {
            operand,
            branches,
            else_expr,
        } => VecExpr::Case {
            operand: operand.as_ref().map(|o| Box::new(compile(o, cx))),
            branches: branches
                .iter()
                .map(|(w, t)| (compile(w, cx), compile(t, cx)))
                .collect(),
            else_expr: else_expr.as_ref().map(|x| Box::new(compile(x, cx))),
        },
        QExpr::Func { name, args } => {
            let op = match name.as_str() {
                "EXPENSIVE" => FuncOp::Expensive,
                "NVL" => FuncOp::Nvl,
                "LNNVL" => FuncOp::Lnnvl,
                "UPPER" => FuncOp::Upper,
                "LOWER" => FuncOp::Lower,
                "LENGTH" => FuncOp::Length,
                "ABS" => FuncOp::Abs,
                "MOD" => FuncOp::Mod,
                "FLOOR" => FuncOp::Floor,
                "CEIL" => FuncOp::Ceil,
                "SIGN" => FuncOp::Sign,
                other => return VecExpr::LazyErr(format!("unknown function {other} at runtime")),
            };
            VecExpr::Func {
                op,
                args: args.iter().map(|a| compile(a, cx)).collect(),
            }
        }
        QExpr::Agg { .. } => match cx.aggs.iter().position(|a| a == e) {
            Some(i) => VecExpr::AggSlot(cx.agg_base + i),
            None => VecExpr::LazyErr("aggregate used outside aggregation context".into()),
        },
        QExpr::Win { .. } => match cx.windows.iter().position(|w| w == e) {
            Some(i) => VecExpr::WinSlot(cx.win_base + i),
            None => VecExpr::LazyErr("window function not computed".into()),
        },
        QExpr::Subq { .. } => VecExpr::Fallback(e.clone()),
    }
}

impl VecExpr {
    /// Whether any node in this program needs a gathered full row
    /// (subquery / outer-reference fallback). Such programs require the
    /// batch to be fully materialized.
    pub(crate) fn uses_fallback(&self) -> bool {
        let mut found = false;
        self.walk(&mut |n| {
            if matches!(n, VecExpr::Fallback(_)) {
                found = true;
            }
        });
        found
    }

    /// Collects every batch-column index the program reads directly.
    pub(crate) fn collect_cols(&self, out: &mut Vec<usize>) {
        self.walk(&mut |n| {
            if let VecExpr::Col(i) | VecExpr::AggSlot(i) | VecExpr::WinSlot(i) = n {
                out.push(*i);
            }
        });
    }

    fn walk(&self, f: &mut impl FnMut(&VecExpr)) {
        f(self);
        match self {
            VecExpr::Bin { l, r, .. } | VecExpr::And { l, r } | VecExpr::Or { l, r } => {
                l.walk(f);
                r.walk(f);
            }
            VecExpr::Not(x) | VecExpr::Neg(x) => x.walk(f),
            VecExpr::IsNull { e, .. } => e.walk(f),
            VecExpr::InList { e, list, .. } => {
                e.walk(f);
                for i in list {
                    i.walk(f);
                }
            }
            VecExpr::Like { e, pattern, .. } => {
                e.walk(f);
                pattern.walk(f);
            }
            VecExpr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(o) = operand {
                    o.walk(f);
                }
                for (w, t) in branches {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(x) = else_expr {
                    x.walk(f);
                }
            }
            VecExpr::Func { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            VecExpr::Col(_)
            | VecExpr::AggSlot(_)
            | VecExpr::WinSlot(_)
            | VecExpr::Lit(_)
            | VecExpr::LazyErr(_)
            | VecExpr::Fallback(_) => {}
        }
    }

    /// Evaluates the program over the rows named by `sel`; the result is
    /// aligned with `sel` (entry `k` is the value for row `sel[k]`).
    pub(crate) fn eval(
        &self,
        batch: &Batch,
        sel: &[usize],
        ctx: &EvalCtx<'_>,
    ) -> Result<Vec<Value>> {
        match self {
            VecExpr::Col(i) => Ok(sel.iter().map(|&r| batch.cols[*i][r].clone()).collect()),
            VecExpr::AggSlot(i) => {
                if sel.is_empty() {
                    return Ok(Vec::new());
                }
                if *i >= batch.cols.len() {
                    return Err(Error::execution("aggregate slot out of range"));
                }
                Ok(sel.iter().map(|&r| batch.cols[*i][r].clone()).collect())
            }
            VecExpr::WinSlot(i) => {
                if sel.is_empty() {
                    return Ok(Vec::new());
                }
                if *i >= batch.cols.len() {
                    return Err(Error::execution("window slot out of range"));
                }
                Ok(sel.iter().map(|&r| batch.cols[*i][r].clone()).collect())
            }
            VecExpr::Lit(v) => Ok(vec![v.clone(); sel.len()]),
            VecExpr::Bin { op, l, r } => {
                let lv = l.eval(batch, sel, ctx)?;
                let rv = r.eval(batch, sel, ctx)?;
                let mut out = Vec::with_capacity(sel.len());
                match op {
                    BinOp::Add => {
                        for (a, b) in lv.iter().zip(rv.iter()) {
                            out.push(a.numeric_add(b)?);
                        }
                    }
                    BinOp::Sub => {
                        for (a, b) in lv.iter().zip(rv.iter()) {
                            out.push(a.numeric_sub(b)?);
                        }
                    }
                    BinOp::Mul => {
                        for (a, b) in lv.iter().zip(rv.iter()) {
                            out.push(a.numeric_mul(b)?);
                        }
                    }
                    BinOp::Div => {
                        for (a, b) in lv.iter().zip(rv.iter()) {
                            out.push(a.numeric_div(b)?);
                        }
                    }
                    BinOp::Concat => {
                        for (a, b) in lv.iter().zip(rv.iter()) {
                            if a.is_null() || b.is_null() {
                                out.push(Value::Null);
                            } else {
                                out.push(Value::str(format!(
                                    "{}{}",
                                    display_raw(a),
                                    display_raw(b)
                                )));
                            }
                        }
                    }
                    BinOp::Eq
                    | BinOp::NotEq
                    | BinOp::Lt
                    | BinOp::LtEq
                    | BinOp::Gt
                    | BinOp::GtEq => {
                        for (a, b) in lv.iter().zip(rv.iter()) {
                            out.push(match a.sql_cmp(b) {
                                None => Value::Null,
                                Some(ord) => Value::Bool(match op {
                                    BinOp::Eq => ord == std::cmp::Ordering::Equal,
                                    BinOp::NotEq => ord != std::cmp::Ordering::Equal,
                                    BinOp::Lt => ord == std::cmp::Ordering::Less,
                                    BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                                    BinOp::Gt => ord == std::cmp::Ordering::Greater,
                                    BinOp::GtEq => ord != std::cmp::Ordering::Less,
                                    _ => unreachable!(),
                                }),
                            });
                        }
                    }
                    BinOp::And | BinOp::Or => unreachable!("compiled to And/Or variants"),
                }
                Ok(out)
            }
            VecExpr::And { .. } | VecExpr::Or { .. } | VecExpr::Not(_) => {
                let t = self.eval_truth(batch, sel, ctx)?;
                Ok(t.into_iter().map(truth_value).collect())
            }
            VecExpr::Neg(x) => {
                let v = x.eval(batch, sel, ctx)?;
                v.into_iter()
                    .map(|v| match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Double(d) => Ok(Value::Double(-d)),
                        other => Err(Error::execution(format!("cannot negate {other}"))),
                    })
                    .collect()
            }
            VecExpr::IsNull { e, negated } => {
                let v = e.eval(batch, sel, ctx)?;
                Ok(v.into_iter()
                    .map(|v| Value::Bool(v.is_null() != *negated))
                    .collect())
            }
            VecExpr::InList { e, list, negated } => {
                let v = e.eval(batch, sel, ctx)?;
                // selection refinement mirrors the row engine's per-row
                // break on the first matching list item
                let mut found = vec![false; sel.len()];
                let mut unknown = vec![false; sel.len()];
                let mut remaining: Vec<usize> = (0..sel.len()).collect();
                for item in list {
                    if remaining.is_empty() {
                        break;
                    }
                    let rows: Vec<usize> = remaining.iter().map(|&p| sel[p]).collect();
                    let iv = item.eval(batch, &rows, ctx)?;
                    let mut next = Vec::with_capacity(remaining.len());
                    for (k, &p) in remaining.iter().enumerate() {
                        match v[p].sql_eq(&iv[k]) {
                            Some(true) => found[p] = true,
                            Some(false) => next.push(p),
                            None => {
                                unknown[p] = true;
                                next.push(p);
                            }
                        }
                    }
                    remaining = next;
                }
                Ok((0..sel.len())
                    .map(|p| {
                        let t = if found[p] {
                            Truth::True
                        } else if unknown[p] {
                            Truth::Unknown
                        } else {
                            Truth::False
                        };
                        truth_value(if *negated { t.not() } else { t })
                    })
                    .collect())
            }
            VecExpr::Like {
                e,
                pattern,
                negated,
            } => {
                let v = e.eval(batch, sel, ctx)?;
                let p = pattern.eval(batch, sel, ctx)?;
                Ok(v.iter()
                    .zip(p.iter())
                    .map(|(v, p)| match (v.as_str(), p.as_str()) {
                        (Some(s), Some(pat)) => Value::Bool(like_match(s, pat) != *negated),
                        _ => Value::Null,
                    })
                    .collect())
            }
            VecExpr::Case {
                operand,
                branches,
                else_expr,
            } => {
                let mut out = vec![Value::Null; sel.len()];
                let mut remaining: Vec<usize> = (0..sel.len()).collect();
                for (w, t) in branches {
                    if remaining.is_empty() {
                        break;
                    }
                    let rows: Vec<usize> = remaining.iter().map(|&p| sel[p]).collect();
                    let fire: Vec<bool> = match operand {
                        // the row engine re-evaluates the operand per
                        // branch; mirror that for side-effect parity
                        Some(op) => {
                            let ov = op.eval(batch, &rows, ctx)?;
                            let wv = w.eval(batch, &rows, ctx)?;
                            ov.iter()
                                .zip(wv.iter())
                                .map(|(o, w)| o.sql_eq(w) == Some(true))
                                .collect()
                        }
                        None => {
                            let tw = w.eval_truth(batch, &rows, ctx)?;
                            tw.into_iter().map(|t| t.passes()).collect()
                        }
                    };
                    let fired: Vec<usize> = remaining
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| fire[*k])
                        .map(|(_, &p)| p)
                        .collect();
                    if !fired.is_empty() {
                        let frows: Vec<usize> = fired.iter().map(|&p| sel[p]).collect();
                        let tv = t.eval(batch, &frows, ctx)?;
                        for (k, &p) in fired.iter().enumerate() {
                            out[p] = tv[k].clone();
                        }
                    }
                    remaining = remaining
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| !fire[*k])
                        .map(|(_, &p)| p)
                        .collect();
                }
                if let Some(x) = else_expr {
                    if !remaining.is_empty() {
                        let rows: Vec<usize> = remaining.iter().map(|&p| sel[p]).collect();
                        let xv = x.eval(batch, &rows, ctx)?;
                        for (k, &p) in remaining.iter().enumerate() {
                            out[p] = xv[k].clone();
                        }
                    }
                }
                Ok(out)
            }
            VecExpr::Func { op, args } => self.eval_func(*op, args, batch, sel, ctx),
            VecExpr::LazyErr(msg) => {
                if sel.is_empty() {
                    Ok(Vec::new())
                } else {
                    Err(Error::execution(msg.clone()))
                }
            }
            VecExpr::Fallback(q) => sel
                .iter()
                .map(|&r| ctx.eval(q, &batch.gather_row(r)))
                .collect(),
        }
    }

    fn eval_func(
        &self,
        op: FuncOp,
        args: &[VecExpr],
        batch: &Batch,
        sel: &[usize],
        ctx: &EvalCtx<'_>,
    ) -> Result<Vec<Value>> {
        match op {
            FuncOp::Expensive => {
                let units: Vec<f64> = match args.get(1) {
                    Some(u) => u
                        .eval(batch, sel, ctx)?
                        .iter()
                        .map(|v| v.as_f64().unwrap_or(weights::EXPENSIVE_DEFAULT))
                        .collect(),
                    None => vec![weights::EXPENSIVE_DEFAULT; sel.len()],
                };
                for u in units {
                    ctx.engine.burn(u);
                }
                args[0].eval(batch, sel, ctx)
            }
            FuncOp::Nvl => {
                let mut v = args[0].eval(batch, sel, ctx)?;
                // lazy second argument, evaluated only for NULL rows
                let nulls: Vec<usize> = (0..sel.len()).filter(|&k| v[k].is_null()).collect();
                if !nulls.is_empty() {
                    let rows: Vec<usize> = nulls.iter().map(|&k| sel[k]).collect();
                    let w = args[1].eval(batch, &rows, ctx)?;
                    for (j, &k) in nulls.iter().enumerate() {
                        v[k] = w[j].clone();
                    }
                }
                Ok(v)
            }
            FuncOp::Lnnvl => {
                let t = args[0].eval_truth(batch, sel, ctx)?;
                Ok(t.into_iter().map(|t| Value::Bool(!t.passes())).collect())
            }
            FuncOp::Upper | FuncOp::Lower => {
                let v = args[0].eval(batch, sel, ctx)?;
                Ok(v.iter()
                    .map(|v| match v.as_str() {
                        Some(s) => {
                            if op == FuncOp::Upper {
                                Value::str(s.to_uppercase())
                            } else {
                                Value::str(s.to_lowercase())
                            }
                        }
                        None => Value::Null,
                    })
                    .collect())
            }
            FuncOp::Length => {
                let v = args[0].eval(batch, sel, ctx)?;
                Ok(v.iter()
                    .map(|v| match v.as_str() {
                        Some(s) => Value::Int(s.chars().count() as i64),
                        None => Value::Null,
                    })
                    .collect())
            }
            FuncOp::Abs => {
                let v = args[0].eval(batch, sel, ctx)?;
                v.into_iter()
                    .map(|v| match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(i.abs())),
                        Value::Double(d) => Ok(Value::Double(d.abs())),
                        other => Err(Error::execution(format!("ABS of {other}"))),
                    })
                    .collect()
            }
            FuncOp::Mod => {
                let a = args[0].eval(batch, sel, ctx)?;
                let b = args[1].eval(batch, sel, ctx)?;
                a.iter()
                    .zip(b.iter())
                    .map(|(a, b)| match (a.as_i64(), b.as_i64()) {
                        (Some(_), Some(0)) => Err(Error::execution("MOD by zero")),
                        (Some(x), Some(y)) => Ok(Value::Int(x % y)),
                        _ => Ok(Value::Null),
                    })
                    .collect()
            }
            FuncOp::Floor | FuncOp::Ceil => {
                let v = args[0].eval(batch, sel, ctx)?;
                Ok(v.iter()
                    .map(|v| match v.as_f64() {
                        Some(d) => Value::Int(if op == FuncOp::Floor {
                            d.floor()
                        } else {
                            d.ceil()
                        } as i64),
                        None => Value::Null,
                    })
                    .collect())
            }
            FuncOp::Sign => {
                let v = args[0].eval(batch, sel, ctx)?;
                Ok(v.iter()
                    .map(|v| match v.as_f64() {
                        Some(d) => Value::Int(if d > 0.0 {
                            1
                        } else if d < 0.0 {
                            -1
                        } else {
                            0
                        }),
                        None => Value::Null,
                    })
                    .collect())
            }
        }
    }

    /// A direct operand — a column or a literal — whose value for a row
    /// can be borrowed without materializing an operand vector. Backs
    /// the comparison fast path in [`eval_truth`](VecExpr::eval_truth).
    fn direct_at<'v>(&'v self, batch: &'v Batch, row: usize) -> Option<&'v Value> {
        match self {
            VecExpr::Col(i) => Some(&batch.cols[*i][row]),
            VecExpr::Lit(v) => Some(v),
            _ => None,
        }
    }

    fn is_direct(&self) -> bool {
        matches!(self, VecExpr::Col(_) | VecExpr::Lit(_))
    }

    /// Evaluates the program as a three-valued truth per selected row,
    /// with `AND`/`OR` short-circuiting by selection refinement.
    pub(crate) fn eval_truth(
        &self,
        batch: &Batch,
        sel: &[usize],
        ctx: &EvalCtx<'_>,
    ) -> Result<Vec<Truth>> {
        match self {
            // fast path for the ubiquitous `col <cmp> lit` / `col <cmp>
            // col` filter shape: compare operands in place instead of
            // cloning both sides into operand vectors. Semantics are
            // identical to the generic Bin arm (same `sql_cmp`, and this
            // shape cannot raise).
            VecExpr::Bin { op, l, r }
                if matches!(
                    op,
                    BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
                ) && l.is_direct()
                    && r.is_direct() =>
            {
                let mut out = Vec::with_capacity(sel.len());
                for &row in sel {
                    let a = l.direct_at(batch, row).unwrap();
                    let b = r.direct_at(batch, row).unwrap();
                    out.push(match a.sql_cmp(b) {
                        None => Truth::Unknown,
                        Some(ord) => Truth::from_opt(Some(match op {
                            BinOp::Eq => ord == std::cmp::Ordering::Equal,
                            BinOp::NotEq => ord != std::cmp::Ordering::Equal,
                            BinOp::Lt => ord == std::cmp::Ordering::Less,
                            BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                            BinOp::Gt => ord == std::cmp::Ordering::Greater,
                            BinOp::GtEq => ord != std::cmp::Ordering::Less,
                            _ => unreachable!(),
                        })),
                    });
                }
                Ok(out)
            }
            VecExpr::And { l, r } => {
                let lt = l.eval_truth(batch, sel, ctx)?;
                let need: Vec<usize> = (0..sel.len()).filter(|&k| lt[k] != Truth::False).collect();
                let rows: Vec<usize> = need.iter().map(|&k| sel[k]).collect();
                let rt = r.eval_truth(batch, &rows, ctx)?;
                let mut out = lt;
                for (j, &k) in need.iter().enumerate() {
                    out[k] = out[k].and(rt[j]);
                }
                Ok(out)
            }
            VecExpr::Or { l, r } => {
                let lt = l.eval_truth(batch, sel, ctx)?;
                let need: Vec<usize> = (0..sel.len()).filter(|&k| lt[k] != Truth::True).collect();
                let rows: Vec<usize> = need.iter().map(|&k| sel[k]).collect();
                let rt = r.eval_truth(batch, &rows, ctx)?;
                let mut out = lt;
                for (j, &k) in need.iter().enumerate() {
                    out[k] = out[k].or(rt[j]);
                }
                Ok(out)
            }
            VecExpr::Not(x) => {
                let t = x.eval_truth(batch, sel, ctx)?;
                Ok(t.into_iter().map(|t| t.not()).collect())
            }
            VecExpr::Fallback(q) => sel
                .iter()
                .map(|&r| ctx.eval_truth(q, &batch.gather_row(r)))
                .collect(),
            _ => {
                let v = self.eval(batch, sel, ctx)?;
                v.into_iter()
                    .map(|v| match v {
                        Value::Null => Ok(Truth::Unknown),
                        Value::Bool(b) => Ok(Truth::from_opt(Some(b))),
                        other => Err(Error::execution(format!(
                            "expected boolean predicate, got {other}"
                        ))),
                    })
                    .collect()
            }
        }
    }
}
