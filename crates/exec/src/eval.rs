//! Expression evaluation over executor rows, with outer-binding frames
//! for correlation and slot-mapped aggregate / window values.

use crate::engine::Engine;
use cbqt_common::{Error, Result, Row, Truth, Value};
use cbqt_optimizer::{weights, Layout};
use cbqt_qgm::{BinOp, QExpr, Quant, SubqKind, WinFunc};

/// One level of bindings: the layout of a row plus the row itself.
#[derive(Clone, Copy)]
pub struct Frame<'a> {
    pub layout: &'a Layout,
    pub row: &'a [Value],
}

/// Stack of binding frames, innermost last.
#[derive(Clone, Default)]
pub struct Bindings<'a> {
    pub frames: Vec<Frame<'a>>,
}

impl<'a> Bindings<'a> {
    pub fn push(&self, layout: &'a Layout, row: &'a [Value]) -> Bindings<'a> {
        let mut b = self.clone();
        b.frames.push(Frame { layout, row });
        b
    }
}

/// Evaluation context for one block's rows.
pub struct EvalCtx<'a> {
    pub engine: &'a Engine<'a>,
    pub layout: &'a Layout,
    /// Aggregate expressions whose values sit at `agg_base + i`.
    pub aggs: &'a [QExpr],
    pub agg_base: usize,
    /// Window expressions whose values sit at `win_base + i`.
    pub windows: &'a [QExpr],
    pub win_base: usize,
    /// Plans for subquery blocks referenced by expressions.
    pub subplans: &'a [(cbqt_qgm::BlockId, cbqt_optimizer::BlockPlan)],
    /// Outer binding frames (for correlated evaluation).
    pub outer: Bindings<'a>,
}

impl<'a> EvalCtx<'a> {
    /// Resolves a column reference against the local row, then the outer
    /// frames from innermost to outermost.
    fn resolve_col(&self, refid: cbqt_qgm::RefId, col: usize, row: &[Value]) -> Result<Value> {
        if let Some((off, w)) = self.layout.offset_of(refid) {
            if col < w {
                return Ok(row[off + col].clone());
            }
            return Err(Error::execution(format!(
                "column {col} out of range for r{}",
                refid.0
            )));
        }
        for f in self.outer.frames.iter().rev() {
            if let Some((off, w)) = f.layout.offset_of(refid) {
                if col < w {
                    return Ok(f.row[off + col].clone());
                }
                return Err(Error::execution(format!(
                    "column {col} out of range for outer r{}",
                    refid.0
                )));
            }
        }
        Err(Error::execution(format!(
            "unbound table reference r{}",
            refid.0
        )))
    }

    /// Evaluates an expression to a value (`NULL` represents UNKNOWN for
    /// boolean expressions).
    pub fn eval(&self, e: &QExpr, row: &[Value]) -> Result<Value> {
        match e {
            QExpr::Col { table, column } => self.resolve_col(*table, *column, row),
            QExpr::Lit(v) => Ok(v.clone()),
            QExpr::Param { slot, peek } => Ok(self.engine.param(*slot, peek).clone()),
            QExpr::Bin { op, left, right } => self.eval_binary(*op, left, right, row),
            QExpr::Not(x) => Ok(truth_value(self.eval_truth(x, row)?.not())),
            QExpr::Neg(x) => {
                let v = self.eval(x, row)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Double(d) => Ok(Value::Double(-d)),
                    other => Err(Error::execution(format!("cannot negate {other}"))),
                }
            }
            QExpr::IsNull { expr, negated } => {
                let v = self.eval(expr, row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            QExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.eval(expr, row)?;
                let mut unknown = false;
                let mut found = false;
                for item in list {
                    let iv = self.eval(item, row)?;
                    match v.sql_eq(&iv) {
                        Some(true) => {
                            found = true;
                            break;
                        }
                        Some(false) => {}
                        None => unknown = true,
                    }
                }
                let t = if found {
                    Truth::True
                } else if unknown {
                    Truth::Unknown
                } else {
                    Truth::False
                };
                Ok(truth_value(if *negated { t.not() } else { t }))
            }
            QExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.eval(expr, row)?;
                let p = self.eval(pattern, row)?;
                match (v.as_str(), p.as_str()) {
                    (Some(s), Some(pat)) => {
                        let m = like_match(s, pat);
                        Ok(Value::Bool(m != *negated))
                    }
                    _ => Ok(Value::Null),
                }
            }
            QExpr::Case {
                operand,
                branches,
                else_expr,
            } => {
                for (w, t) in branches {
                    let fire = match operand {
                        Some(op) => {
                            let ov = self.eval(op, row)?;
                            let wv = self.eval(w, row)?;
                            ov.sql_eq(&wv) == Some(true)
                        }
                        None => self.eval_truth(w, row)?.passes(),
                    };
                    if fire {
                        return self.eval(t, row);
                    }
                }
                match else_expr {
                    Some(x) => self.eval(x, row),
                    None => Ok(Value::Null),
                }
            }
            QExpr::Func { name, args } => self.eval_func(name, args, row),
            QExpr::Agg { .. } => match self.aggs.iter().position(|a| a == e) {
                Some(i) => Ok(row
                    .get(self.agg_base + i)
                    .cloned()
                    .ok_or_else(|| Error::execution("aggregate slot out of range"))?),
                None => Err(Error::execution(
                    "aggregate used outside aggregation context",
                )),
            },
            QExpr::Win { .. } => match self.windows.iter().position(|w| w == e) {
                Some(i) => Ok(row
                    .get(self.win_base + i)
                    .cloned()
                    .ok_or_else(|| Error::execution("window slot out of range"))?),
                None => Err(Error::execution("window function not computed")),
            },
            QExpr::Subq { block, kind } => self.eval_subquery(*block, kind, row),
        }
    }

    /// Evaluates an expression as a three-valued truth.
    pub fn eval_truth(&self, e: &QExpr, row: &[Value]) -> Result<Truth> {
        match e {
            QExpr::Bin {
                op: BinOp::And,
                left,
                right,
            } => {
                let l = self.eval_truth(left, row)?;
                if l == Truth::False {
                    return Ok(Truth::False);
                }
                Ok(l.and(self.eval_truth(right, row)?))
            }
            QExpr::Bin {
                op: BinOp::Or,
                left,
                right,
            } => {
                let l = self.eval_truth(left, row)?;
                if l == Truth::True {
                    return Ok(Truth::True);
                }
                Ok(l.or(self.eval_truth(right, row)?))
            }
            _ => {
                let v = self.eval(e, row)?;
                Ok(match v {
                    Value::Null => Truth::Unknown,
                    Value::Bool(b) => Truth::from_opt(Some(b)),
                    other => {
                        return Err(Error::execution(format!(
                            "expected boolean predicate, got {other}"
                        )))
                    }
                })
            }
        }
    }

    fn eval_binary(&self, op: BinOp, left: &QExpr, right: &QExpr, row: &[Value]) -> Result<Value> {
        match op {
            BinOp::And | BinOp::Or => {
                let t = self.eval_truth(
                    &QExpr::Bin {
                        op,
                        left: Box::new(left.clone()),
                        right: Box::new(right.clone()),
                    },
                    row,
                )?;
                Ok(truth_value(t))
            }
            BinOp::Add => self.eval(left, row)?.numeric_add(&self.eval(right, row)?),
            BinOp::Sub => self.eval(left, row)?.numeric_sub(&self.eval(right, row)?),
            BinOp::Mul => self.eval(left, row)?.numeric_mul(&self.eval(right, row)?),
            BinOp::Div => self.eval(left, row)?.numeric_div(&self.eval(right, row)?),
            BinOp::Concat => {
                let (l, r) = (self.eval(left, row)?, self.eval(right, row)?);
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::str(format!(
                    "{}{}",
                    display_raw(&l),
                    display_raw(&r)
                )))
            }
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                let (l, r) = (self.eval(left, row)?, self.eval(right, row)?);
                Ok(match l.sql_cmp(&r) {
                    None => Value::Null,
                    Some(ord) => Value::Bool(match op {
                        BinOp::Eq => ord == std::cmp::Ordering::Equal,
                        BinOp::NotEq => ord != std::cmp::Ordering::Equal,
                        BinOp::Lt => ord == std::cmp::Ordering::Less,
                        BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                        BinOp::Gt => ord == std::cmp::Ordering::Greater,
                        BinOp::GtEq => ord != std::cmp::Ordering::Less,
                        _ => unreachable!(),
                    }),
                })
            }
        }
    }

    fn eval_func(&self, name: &str, args: &[QExpr], row: &[Value]) -> Result<Value> {
        match name {
            "EXPENSIVE" => {
                let units = match args.get(1) {
                    Some(u) => self
                        .eval(u, row)?
                        .as_f64()
                        .unwrap_or(weights::EXPENSIVE_DEFAULT),
                    None => weights::EXPENSIVE_DEFAULT,
                };
                self.engine.burn(units);
                self.eval(&args[0], row)
            }
            "NVL" => {
                let v = self.eval(&args[0], row)?;
                if v.is_null() {
                    self.eval(&args[1], row)
                } else {
                    Ok(v)
                }
            }
            "LNNVL" => {
                // LNNVL(p): TRUE if p is FALSE or UNKNOWN
                let t = self.eval_truth(&args[0], row)?;
                Ok(Value::Bool(!t.passes()))
            }
            "UPPER" | "LOWER" => {
                let v = self.eval(&args[0], row)?;
                Ok(match v.as_str() {
                    Some(s) => {
                        if name == "UPPER" {
                            Value::str(s.to_uppercase())
                        } else {
                            Value::str(s.to_lowercase())
                        }
                    }
                    None => Value::Null,
                })
            }
            "LENGTH" => {
                let v = self.eval(&args[0], row)?;
                Ok(match v.as_str() {
                    Some(s) => Value::Int(s.chars().count() as i64),
                    None => Value::Null,
                })
            }
            "ABS" => {
                let v = self.eval(&args[0], row)?;
                Ok(match v {
                    Value::Null => Value::Null,
                    Value::Int(i) => Value::Int(i.abs()),
                    Value::Double(d) => Value::Double(d.abs()),
                    other => return Err(Error::execution(format!("ABS of {other}"))),
                })
            }
            "MOD" => {
                let a = self.eval(&args[0], row)?;
                let b = self.eval(&args[1], row)?;
                match (a.as_i64(), b.as_i64()) {
                    (Some(_), Some(0)) => Err(Error::execution("MOD by zero")),
                    (Some(x), Some(y)) => Ok(Value::Int(x % y)),
                    _ => Ok(Value::Null),
                }
            }
            "FLOOR" | "CEIL" => {
                let v = self.eval(&args[0], row)?;
                Ok(match v.as_f64() {
                    Some(d) => {
                        Value::Int(if name == "FLOOR" { d.floor() } else { d.ceil() } as i64)
                    }
                    None => Value::Null,
                })
            }
            "SIGN" => {
                let v = self.eval(&args[0], row)?;
                Ok(match v.as_f64() {
                    Some(d) => Value::Int(if d > 0.0 {
                        1
                    } else if d < 0.0 {
                        -1
                    } else {
                        0
                    }),
                    None => Value::Null,
                })
            }
            other => Err(Error::execution(format!(
                "unknown function {other} at runtime"
            ))),
        }
    }

    fn eval_subquery(
        &self,
        block: cbqt_qgm::BlockId,
        kind: &SubqKind,
        row: &[Value],
    ) -> Result<Value> {
        let plan = self
            .subplans
            .iter()
            .find(|(b, _)| *b == block)
            .map(|(_, p)| p)
            .ok_or_else(|| Error::execution(format!("no subplan for {block}")))?;
        let binds = self.outer.push(self.layout, row);
        let rows = self.engine.execute_cached(plan, &binds)?;
        match kind {
            SubqKind::Scalar => match rows.len() {
                0 => Ok(Value::Null),
                1 => Ok(rows[0][0].clone()),
                _ => Err(Error::execution(
                    "single-row subquery returns more than one row",
                )),
            },
            SubqKind::Exists { negated } => Ok(Value::Bool(rows.is_empty() == *negated)),
            SubqKind::In { lhs, negated } => {
                let keys: Vec<Value> = lhs
                    .iter()
                    .map(|e| self.eval(e, row))
                    .collect::<Result<_>>()?;
                let mut unknown = false;
                let mut found = false;
                for r in rows.iter() {
                    let mut all_true = true;
                    let mut any_unknown = false;
                    for (k, v) in keys.iter().zip(r.iter()) {
                        match k.sql_eq(v) {
                            Some(true) => {}
                            Some(false) => {
                                all_true = false;
                                break;
                            }
                            None => {
                                any_unknown = true;
                                all_true = false;
                            }
                        }
                    }
                    if all_true {
                        found = true;
                        break;
                    }
                    if any_unknown {
                        unknown = true;
                    }
                }
                let t = if found {
                    Truth::True
                } else if unknown {
                    Truth::Unknown
                } else {
                    Truth::False
                };
                Ok(truth_value(if *negated { t.not() } else { t }))
            }
            SubqKind::Quant { op, quant, lhs } => {
                let l = self.eval(lhs, row)?;
                let mut result = match quant {
                    Quant::All => Truth::True,
                    Quant::Any => Truth::False,
                };
                for r in rows.iter() {
                    let cmp = match l.sql_cmp(&r[0]) {
                        None => Truth::Unknown,
                        Some(ord) => Truth::from_opt(Some(match op {
                            BinOp::Eq => ord == std::cmp::Ordering::Equal,
                            BinOp::NotEq => ord != std::cmp::Ordering::Equal,
                            BinOp::Lt => ord == std::cmp::Ordering::Less,
                            BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                            BinOp::Gt => ord == std::cmp::Ordering::Greater,
                            BinOp::GtEq => ord != std::cmp::Ordering::Less,
                            _ => return Err(Error::execution("bad quantified operator")),
                        })),
                    };
                    result = match quant {
                        Quant::All => result.and(cmp),
                        Quant::Any => result.or(cmp),
                    };
                }
                Ok(truth_value(result))
            }
        }
    }
}

/// Converts a truth value to a SQL boolean value.
pub fn truth_value(t: Truth) -> Value {
    match t {
        Truth::True => Value::Bool(true),
        Truth::False => Value::Bool(false),
        Truth::Unknown => Value::Null,
    }
}

pub(crate) fn display_raw(v: &Value) -> String {
    match v {
        Value::Str(s) => s.to_string(),
        other => other.to_string(),
    }
}

/// SQL LIKE matcher (`%` any run, `_` exactly one character; no escape
/// support).
///
/// Iterative two-pointer scan with single-level `%` backtracking —
/// O(len(s)·len(p)) worst case, unlike the naive recursive formulation
/// whose `%` branch is exponential on patterns like `%a%a%a%…` — and it
/// walks `char`s, so `_` consumes one whole character even in multi-byte
/// UTF-8 text.
pub fn like_match(s: &str, p: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = p.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    // position after the most recent `%`, and the input position its
    // run currently extends to
    let mut star: Option<(usize, usize)> = None;
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, si));
            pi += 1;
        } else if let Some((sp, ss)) = star {
            // mismatch after a `%`: grow its run by one char and retry
            star = Some((sp, ss + 1));
            pi = sp;
            si = ss + 1;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// Window-function computation over a block's row set.
///
/// `rows` are mutated in place: each window expression's value is pushed
/// onto every row (in `windows` order).
pub fn compute_windows(ctx: &EvalCtx<'_>, rows: &mut [Row], windows: &[QExpr]) -> Result<()> {
    for w in windows {
        let QExpr::Win {
            func,
            arg,
            partition_by,
            order_by,
        } = w
        else {
            return Err(Error::execution("non-window expr in window list"));
        };
        // partition rows by key
        let mut parts: std::collections::HashMap<Vec<Value>, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, r) in rows.iter().enumerate() {
            let key: Vec<Value> = partition_by
                .iter()
                .map(|e| ctx.eval(e, r))
                .collect::<Result<_>>()?;
            parts.entry(key).or_default().push(i);
        }
        let mut values: Vec<Value> = vec![Value::Null; rows.len()];
        for (_, mut idxs) in parts {
            if !order_by.is_empty() {
                // sort partition by the order spec
                let mut keyed: Vec<(Vec<Value>, usize)> = idxs
                    .iter()
                    .map(|&i| {
                        let k: Vec<Value> = order_by
                            .iter()
                            .map(|o| ctx.eval(&o.expr, &rows[i]))
                            .collect::<Result<_>>()?;
                        Ok((k, i))
                    })
                    .collect::<Result<_>>()?;
                keyed.sort_by(|a, b| {
                    for (j, o) in order_by.iter().enumerate() {
                        let ord = crate::engine::order_cmp(&a.0[j], &b.0[j], o.desc, o.nulls_first);
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                idxs = keyed.into_iter().map(|(_, i)| i).collect();
                ctx.engine.add_work(
                    weights::SORT * (idxs.len().max(2) as f64).log2() * idxs.len() as f64,
                );
            }
            match func {
                WinFunc::RowNumber => {
                    for (n, &i) in idxs.iter().enumerate() {
                        values[i] = Value::Int(n as i64 + 1);
                    }
                }
                WinFunc::Agg(af) => {
                    if order_by.is_empty() {
                        // whole-partition aggregate
                        let mut acc = AggAcc::new(*af);
                        for &i in &idxs {
                            let v = match arg {
                                Some(a) => ctx.eval(a, &rows[i])?,
                                None => Value::Int(1),
                            };
                            acc.add(&v);
                        }
                        let out = acc.finish();
                        for &i in &idxs {
                            values[i] = out.clone();
                        }
                    } else {
                        // running aggregate: unbounded preceding..current
                        let mut acc = AggAcc::new(*af);
                        for &i in &idxs {
                            let v = match arg {
                                Some(a) => ctx.eval(a, &rows[i])?,
                                None => Value::Int(1),
                            };
                            acc.add(&v);
                            values[i] = acc.finish();
                        }
                    }
                }
            }
            ctx.engine.add_work(idxs.len() as f64 * weights::AGG);
        }
        for (i, r) in rows.iter_mut().enumerate() {
            r.push(values[i].clone());
        }
    }
    Ok(())
}

/// Streaming aggregate accumulator shared by GROUP BY and window frames.
#[derive(Debug, Clone)]
pub struct AggAcc {
    func: cbqt_qgm::AggFunc,
    count: i64,
    sum: f64,
    sum_is_int: bool,
    isum: i64,
    min: Option<Value>,
    max: Option<Value>,
    distinct: Option<std::collections::HashSet<Value>>,
}

impl AggAcc {
    pub fn new(func: cbqt_qgm::AggFunc) -> AggAcc {
        AggAcc {
            func,
            count: 0,
            sum: 0.0,
            sum_is_int: true,
            isum: 0,
            min: None,
            max: None,
            distinct: None,
        }
    }

    pub fn new_distinct(func: cbqt_qgm::AggFunc) -> AggAcc {
        let mut a = AggAcc::new(func);
        a.distinct = Some(std::collections::HashSet::new());
        a
    }

    pub fn add(&mut self, v: &Value) {
        use cbqt_qgm::AggFunc::*;
        if self.func == CountStar {
            self.count += 1;
            return;
        }
        if v.is_null() {
            return;
        }
        if let Some(set) = &mut self.distinct {
            if !set.insert(v.clone()) {
                return;
            }
        }
        self.count += 1;
        match self.func {
            Sum | Avg => match v {
                Value::Int(i) => {
                    self.isum = self.isum.wrapping_add(*i);
                    self.sum += *i as f64;
                }
                _ => {
                    self.sum_is_int = false;
                    self.sum += v.as_f64().unwrap_or(0.0);
                }
            },
            Min => {
                if self
                    .min
                    .as_ref()
                    .map(|m| v.total_cmp(m).is_lt())
                    .unwrap_or(true)
                {
                    self.min = Some(v.clone());
                }
            }
            Max => {
                if self
                    .max
                    .as_ref()
                    .map(|m| v.total_cmp(m).is_gt())
                    .unwrap_or(true)
                {
                    self.max = Some(v.clone());
                }
            }
            Count | CountStar => {}
        }
    }

    pub fn finish(&self) -> Value {
        use cbqt_qgm::AggFunc::*;
        match self.func {
            Count | CountStar => Value::Int(self.count),
            Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.sum_is_int {
                    Value::Int(self.isum)
                } else {
                    Value::Double(self.sum)
                }
            }
            Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Double(self.sum / self.count as f64)
                }
            }
            Min => self.min.clone().unwrap_or(Value::Null),
            Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbqt_qgm::AggFunc;

    #[test]
    fn like_matcher() {
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(!like_match("hello", "h_lo"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", ""));
        assert!(like_match("abc", "%%c"));
        assert!(like_match("abc", "a%b%c"));
        assert!(!like_match("abc", "a%b%d"));
        assert!(like_match("mississippi", "%issi%ippi"));
    }

    #[test]
    fn like_matcher_counts_chars_not_bytes() {
        // `_` must consume one whole multi-byte character
        assert!(like_match("déjà", "d_j_"));
        assert!(like_match("日本語", "___"));
        assert!(!like_match("日本語", "____"));
        assert!(like_match("naïve", "na%ve"));
        assert!(like_match("日本語", "日%"));
    }

    #[test]
    fn like_matcher_pathological_pattern_is_fast() {
        // the old recursive matcher was exponential on this shape; the
        // iterative matcher is O(n·m) and finishes instantly
        let s = "a".repeat(64);
        let p = format!("{}b", "%a".repeat(24));
        let t0 = std::time::Instant::now();
        assert!(!like_match(&s, &p));
        let q = format!("{}%", "%a".repeat(24));
        assert!(like_match(&s, &q));
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "pathological LIKE took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn agg_count_star_counts_nulls() {
        let mut a = AggAcc::new(AggFunc::CountStar);
        a.add(&Value::Null);
        a.add(&Value::Int(1));
        assert_eq!(a.finish(), Value::Int(2));
    }

    #[test]
    fn agg_count_skips_nulls() {
        let mut a = AggAcc::new(AggFunc::Count);
        a.add(&Value::Null);
        a.add(&Value::Int(1));
        assert_eq!(a.finish(), Value::Int(1));
    }

    #[test]
    fn agg_sum_avg() {
        let mut s = AggAcc::new(AggFunc::Sum);
        let mut av = AggAcc::new(AggFunc::Avg);
        for i in 1..=4 {
            s.add(&Value::Int(i));
            av.add(&Value::Int(i));
        }
        assert_eq!(s.finish(), Value::Int(10));
        assert_eq!(av.finish(), Value::Double(2.5));
    }

    #[test]
    fn agg_sum_empty_is_null() {
        let s = AggAcc::new(AggFunc::Sum);
        assert!(s.finish().is_null());
        let c = AggAcc::new(AggFunc::Count);
        assert_eq!(c.finish(), Value::Int(0));
    }

    #[test]
    fn agg_min_max() {
        let mut mn = AggAcc::new(AggFunc::Min);
        let mut mx = AggAcc::new(AggFunc::Max);
        for v in [3i64, 1, 4, 1, 5] {
            mn.add(&Value::Int(v));
            mx.add(&Value::Int(v));
        }
        assert_eq!(mn.finish(), Value::Int(1));
        assert_eq!(mx.finish(), Value::Int(5));
    }

    #[test]
    fn agg_distinct_sum() {
        let mut s = AggAcc::new_distinct(AggFunc::Sum);
        for v in [2i64, 2, 3, 3, 3] {
            s.add(&Value::Int(v));
        }
        assert_eq!(s.finish(), Value::Int(5));
    }
}
