//! Property tests for the SQL LIKE matcher: the iterative two-pointer
//! implementation must agree with the obviously-correct (but
//! exponential) recursive reference on every generated string/pattern
//! pair, and stay fast on adversarial `%`-heavy patterns.

use cbqt_exec::eval::like_match;
use cbqt_testkit::prop::string_of;
use cbqt_testkit::props;

/// The naive recursive definition of LIKE, over chars — correct by
/// inspection, usable as an oracle only on short inputs because its `%`
/// branch is exponential.
fn like_reference(s: &[char], p: &[char]) -> bool {
    match p.first() {
        None => s.is_empty(),
        Some('%') => (0..=s.len()).any(|i| like_reference(&s[i..], &p[1..])),
        Some('_') => !s.is_empty() && like_reference(&s[1..], &p[1..]),
        Some(c) => s.first() == Some(c) && like_reference(&s[1..], &p[1..]),
    }
}

const SUBJECT: &str = "abcé日";
const PATTERN: &str = "abcé日%_";

props! {
    fn like_matches_reference(s in string_of(SUBJECT, 0..=10), p in string_of(PATTERN, 0..=8)) {
        let sc: Vec<char> = s.chars().collect();
        let pc: Vec<char> = p.chars().collect();
        assert_eq!(
            like_match(&s, &p),
            like_reference(&sc, &pc),
            "s={s:?} p={p:?}"
        );
    }

    fn literal_pattern_is_equality(s in string_of(SUBJECT, 0..=10)) {
        // a pattern with no wildcards matches exactly itself
        assert!(like_match(&s, &s));
        assert!(like_match(&format!("x{s}"), &format!("_{s}")));
        assert!(like_match(&s, &format!("{s}%")));
        assert!(like_match(&s, &format!("%{s}")));
    }
}
