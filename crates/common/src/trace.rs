//! Structured optimizer tracing — the 10053-event idiom.
//!
//! Oracle practitioners debug the cost-based transformation framework
//! through event 10053, a text trace of every decision the optimizer
//! takes. This module is the structured equivalent for this engine: the
//! transformation framework and the physical optimizer emit one
//! [`TraceEvent`] per transformation examined, per state costed, per
//! cost cut-off taken (§3.4.1) and per cost-annotation hit or miss
//! (§3.4.2), plus the before/after SQL of the winning state.
//!
//! Tracing is **off by default and free when off**: producers hold a
//! [`Tracer`] handle (a copyable `Option<&dyn TraceSink>`) and build
//! events inside a closure that [`Tracer::emit`] never calls while the
//! tracer is disabled. Enabling costs one sink call per event.
//!
//! The crate deliberately has no dependencies: a sink is anything
//! implementing [`TraceSink`], and [`TraceBuffer`] is the bundled
//! collecting sink (interior mutability via `Mutex`, so a shared
//! `&Database` can trace concurrently).

use std::fmt;
use std::sync::Mutex;

/// One optimizer trace event.
///
/// Events appear in emission order: heuristic phase first, then per
/// cost-based transformation a `TransformBegin`, its `StateCosted` /
/// `CutoffTaken` stream and a `TransformEnd`, interspersed with
/// `AnnotationHit` / `BlockCosted` from the physical optimizer, and
/// finally `QueryRewritten` + `FinalPlan`.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Summary of the heuristic (always-beneficial) rewrites of §2.
    Heuristics { summary: String },
    /// A cost-based transformation started enumerating its state space
    /// over `targets` transformation objects with the given §3.2 search
    /// strategy.
    TransformBegin {
        transform: String,
        targets: usize,
        strategy: String,
    },
    /// One state was costed on a deep copy of the query tree. `merges`
    /// is the §3.3.1 interleaving sub-choice (one flag per view created
    /// by the state; empty when the state creates no views); `cost` is
    /// `None` when the §3.4.1 cost cut-off aborted the evaluation.
    StateCosted {
        transform: String,
        state: Vec<usize>,
        merges: Vec<bool>,
        cost: Option<f64>,
    },
    /// The §3.4.1 cost cut-off aborted the state above: its partial cost
    /// already exceeded the best complete state.
    CutoffTaken {
        transform: String,
        state: Vec<usize>,
    },
    /// The winning state of the transformation was applied to the main
    /// query tree.
    TransformEnd {
        transform: String,
        best_state: Vec<usize>,
        interleaved: bool,
        cost: f64,
    },
    /// §3.4.2 cost-annotation reuse: the block's plan was served from
    /// the annotation cache instead of being re-optimized.
    AnnotationHit { block: String },
    /// Annotation miss: the block was optimized from scratch.
    BlockCosted { block: String },
    /// The memoized bushy join enumerator started on a block's FROM
    /// items (only the bushy tier traces begin/end; the left-deep DP and
    /// greedy tiers predate the memo and stay silent).
    JoinEnumBegin { block: String, items: usize },
    /// The bushy enumerator finished: `memo_entries` connected subsets
    /// were costed (each charged one unit of the per-block state
    /// allowance), `memo_hits` memo lookups were served while pairing,
    /// and `pairs` csg-cmp pairs were actually costed. `degraded` is
    /// true when the allowance ran out mid-enumeration and the block
    /// fell back to the greedy join order.
    JoinEnumEnd {
        block: String,
        memo_entries: usize,
        memo_hits: usize,
        pairs: usize,
        degraded: bool,
    },
    /// The statement's optimizer-state budget ran out mid-search: the
    /// framework stops costing states and keeps the best state found so
    /// far (or the heuristic plan if none was costed). The statement
    /// still executes, flagged `degraded`.
    SearchDegraded { transform: String, states_used: u64 },
    /// The query text before any transformation and after the winning
    /// states of every transformation were applied.
    QueryRewritten { before: String, after: String },
    /// Final physical plan summary for the transformed query.
    FinalPlan { cost: f64, est_rows: f64 },
    /// The shared plan cache served a fully optimized plan for this
    /// normalized SQL text (compiled under the current catalog version).
    PlanCacheHit { key: String, version: u64 },
    /// No cached plan existed for this normalized SQL text; the query
    /// goes through the full CBQT pipeline and the result is cached.
    PlanCacheMiss { key: String },
    /// A cached plan existed but was compiled under an older catalog
    /// version (DDL or statistics changed since); it was evicted and the
    /// query re-optimized.
    PlanCacheInvalidated {
        key: String,
        cached_version: u64,
        current_version: u64,
    },
    /// A plan family exists for this canonical query text, but none of
    /// its cached variants was compiled for the selectivity bucket of the
    /// incoming bind values; the query is re-optimized with the new binds
    /// peeked and cached as a sibling variant.
    PlanCacheBindMismatch { key: String, bucket: String },
    /// A sibling plan was added to an existing family after a bind
    /// mismatch; `variants` is the family's variant count afterwards.
    PlanCacheFamilySplit { key: String, variants: usize },
    /// A cached variant had been marked suspect (runtime actuals diverged
    /// from its estimates beyond the configured ratio); this probe
    /// recompiles it with the observed cardinalities fed back.
    PlanCacheReoptimize { key: String, bucket: String },
    /// The estimator replaced an NDV-based scan cardinality guess with a
    /// previously observed actual from the feedback store.
    FeedbackApplied {
        table: String,
        pred: String,
        observed: f64,
        estimate: f64,
    },
    /// A transaction opened; `snapshot` is the commit watermark it reads
    /// as of.
    TxnBegin { txn: u64, snapshot: u64 },
    /// A transaction committed, publishing `versions` row versions at
    /// the new commit watermark.
    TxnCommit {
        txn: u64,
        watermark: u64,
        versions: usize,
    },
    /// A transaction rolled back (explicitly, or aborted by an error /
    /// contained panic / injected fault), discarding `versions` row
    /// versions.
    TxnRollback { txn: u64, versions: usize },
    /// First-updater-wins write-write conflict: `txn` lost to `winner`
    /// on a row of `table`.
    TxnConflict {
        txn: u64,
        winner: u64,
        table: String,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Heuristics { summary } => write!(f, "HEURISTICS {summary}"),
            TraceEvent::TransformBegin {
                transform,
                targets,
                strategy,
            } => write!(f, "TRANSFORM {transform}: {targets} target(s), {strategy}"),
            TraceEvent::StateCosted {
                transform,
                state,
                merges,
                cost,
            } => {
                write!(f, "STATE {transform} {state:?}")?;
                if merges.iter().any(|&m| m) {
                    write!(f, " interleaved {merges:?}")?;
                }
                match cost {
                    Some(c) => write!(f, " cost={c:.0}"),
                    None => write!(f, " cost=CUTOFF"),
                }
            }
            TraceEvent::CutoffTaken { transform, state } => {
                write!(f, "CUTOFF {transform} {state:?}")
            }
            TraceEvent::TransformEnd {
                transform,
                best_state,
                interleaved,
                cost,
            } => write!(
                f,
                "DECISION {transform}: best {best_state:?}{} cost={cost:.0}",
                if *interleaved {
                    " + interleaved merge"
                } else {
                    ""
                }
            ),
            TraceEvent::SearchDegraded {
                transform,
                states_used,
            } => write!(
                f,
                "SEARCH DEGRADED at {transform}: optimizer state budget exhausted \
                 after {states_used} state(s), keeping best plan so far"
            ),
            TraceEvent::AnnotationHit { block } => write!(f, "ANNOTATION HIT {block}"),
            TraceEvent::BlockCosted { block } => write!(f, "BLOCK COSTED {block}"),
            TraceEvent::JoinEnumBegin { block, items } => {
                write!(f, "JOIN ENUM BEGIN {block}: {items} item(s), tier=bushy")
            }
            TraceEvent::JoinEnumEnd {
                block,
                memo_entries,
                memo_hits,
                pairs,
                degraded,
            } => write!(
                f,
                "JOIN ENUM END {block}: memo={memo_entries} hits={memo_hits} \
                 pairs={pairs}{}",
                if *degraded {
                    " DEGRADED to greedy (state allowance exhausted)"
                } else {
                    ""
                }
            ),
            TraceEvent::QueryRewritten { before, after } => {
                write!(f, "REWRITE\n  before: {before}\n  after:  {after}")
            }
            TraceEvent::FinalPlan { cost, est_rows } => {
                write!(f, "FINAL PLAN cost={cost:.0} est_rows={est_rows:.0}")
            }
            TraceEvent::PlanCacheHit { key, version } => {
                write!(f, "PLAN CACHE HIT v{version} {key}")
            }
            TraceEvent::PlanCacheMiss { key } => write!(f, "PLAN CACHE MISS {key}"),
            TraceEvent::PlanCacheInvalidated {
                key,
                cached_version,
                current_version,
            } => write!(
                f,
                "PLAN CACHE INVALIDATED v{cached_version} -> v{current_version} {key}"
            ),
            TraceEvent::PlanCacheBindMismatch { key, bucket } => {
                write!(f, "PLAN CACHE BIND MISMATCH bucket={bucket} {key}")
            }
            TraceEvent::PlanCacheFamilySplit { key, variants } => {
                write!(f, "PLAN CACHE FAMILY SPLIT variants={variants} {key}")
            }
            TraceEvent::PlanCacheReoptimize { key, bucket } => {
                write!(f, "PLAN CACHE REOPTIMIZE bucket={bucket} {key}")
            }
            TraceEvent::FeedbackApplied {
                table,
                pred,
                observed,
                estimate,
            } => write!(
                f,
                "FEEDBACK APPLIED {table}[{pred}]: est_rows={estimate:.1} -> observed={observed:.1}"
            ),
            TraceEvent::TxnBegin { txn, snapshot } => {
                write!(f, "TXN BEGIN txn={txn} snapshot=w{snapshot}")
            }
            TraceEvent::TxnCommit {
                txn,
                watermark,
                versions,
            } => write!(
                f,
                "TXN COMMIT txn={txn} watermark=w{watermark} versions={versions}"
            ),
            TraceEvent::TxnRollback { txn, versions } => {
                write!(f, "TXN ROLLBACK txn={txn} versions={versions}")
            }
            TraceEvent::TxnConflict { txn, winner, table } => {
                write!(f, "TXN CONFLICT txn={txn} lost to txn={winner} on {table}")
            }
        }
    }
}

/// Receives trace events. `record` takes `&self` so a sink can be shared
/// by reference across the whole optimization pipeline.
pub trait TraceSink {
    fn record(&self, event: TraceEvent);
}

/// A copyable handle producers carry; `Tracer::disabled()` makes every
/// [`Tracer::emit`] a no-op that never even constructs its event.
#[derive(Clone, Copy, Default)]
pub struct Tracer<'a> {
    sink: Option<&'a dyn TraceSink>,
}

impl<'a> Tracer<'a> {
    /// The no-op tracer: zero overhead beyond one pointer-null test.
    pub const fn disabled() -> Tracer<'a> {
        Tracer { sink: None }
    }

    pub fn new(sink: &'a dyn TraceSink) -> Tracer<'a> {
        Tracer { sink: Some(sink) }
    }

    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records the event built by `f`, which is only called when the
    /// tracer is enabled — callers can format strings inside the closure
    /// without paying for them in the disabled case.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.sink {
            sink.record(f());
        }
    }
}

impl fmt::Debug for Tracer<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// The bundled collecting sink: appends every event to an in-memory
/// list. Interior mutability lets a `&Database` (possibly shared behind
/// `Arc`) trace without a mutable borrow.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceBuffer {
    pub fn new() -> TraceBuffer {
        TraceBuffer::default()
    }

    /// Removes and returns all recorded events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for TraceBuffer {
    fn record(&self, event: TraceEvent) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_builds_events() {
        let tracer = Tracer::disabled();
        let mut built = false;
        tracer.emit(|| {
            built = true;
            TraceEvent::FinalPlan {
                cost: 0.0,
                est_rows: 0.0,
            }
        });
        assert!(!built);
        assert!(!tracer.enabled());
    }

    #[test]
    fn buffer_collects_in_order() {
        let buf = TraceBuffer::new();
        let tracer = Tracer::new(&buf);
        assert!(tracer.enabled());
        tracer.emit(|| TraceEvent::AnnotationHit {
            block: "QB1".into(),
        });
        tracer.emit(|| TraceEvent::BlockCosted {
            block: "QB2".into(),
        });
        assert_eq!(buf.len(), 2);
        let events = buf.take();
        assert!(buf.is_empty());
        assert_eq!(
            events,
            vec![
                TraceEvent::AnnotationHit {
                    block: "QB1".into()
                },
                TraceEvent::BlockCosted {
                    block: "QB2".into()
                },
            ]
        );
    }

    #[test]
    fn display_is_one_line_per_event() {
        let e = TraceEvent::StateCosted {
            transform: "subquery unnesting (inline view)".into(),
            state: vec![1, 0],
            merges: vec![true],
            cost: Some(42.0),
        };
        let s = e.to_string();
        assert!(s.contains("interleaved"), "{s}");
        assert!(s.contains("cost=42"), "{s}");
        let cut = TraceEvent::StateCosted {
            transform: "x".into(),
            state: vec![1],
            merges: vec![],
            cost: None,
        };
        assert!(cut.to_string().contains("CUTOFF"));
    }
}
