//! SQL values and rows.
//!
//! `Value` provides two comparison regimes:
//!
//! * [`Value::sql_cmp`] / [`Value::sql_eq`] — SQL semantics where any
//!   comparison involving `NULL` yields `None` (UNKNOWN), and numeric
//!   types compare across `Int`/`Double`.
//! * The [`Ord`] implementation — a *total* order used for sorting and as
//!   B-tree index keys, with `NULL` ordered last (Oracle's default for
//!   ascending sorts).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{Error, Result};

/// Data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Double,
    Str,
    Bool,
    /// Days since an arbitrary epoch; keeps date arithmetic trivial.
    Date,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Double => write!(f, "DOUBLE"),
            DataType::Str => write!(f, "VARCHAR"),
            DataType::Bool => write!(f, "BOOLEAN"),
            DataType::Date => write!(f, "DATE"),
        }
    }
}

impl DataType {
    /// Parses a type name as it appears in DDL.
    pub fn parse(name: &str) -> Result<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "NUMBER" | "SMALLINT" => Ok(DataType::Int),
            "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" | "NUMERIC" => Ok(DataType::Double),
            "VARCHAR" | "VARCHAR2" | "CHAR" | "TEXT" | "STRING" => Ok(DataType::Str),
            "BOOLEAN" | "BOOL" => Ok(DataType::Bool),
            "DATE" => Ok(DataType::Date),
            other => Err(Error::parse(format!("unknown data type {other}"))),
        }
    }

    /// True when values of this type are numeric.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Double)
    }
}

/// A single SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Double(f64),
    Str(Arc<str>),
    Bool(bool),
    Date(i32),
}

/// Alias emphasising "a value inside a row" in executor code.
pub type Datum = Value;

/// A row of values. Executor rows concatenate the columns of the joined
/// table references in order.
pub type Row = Vec<Value>;

impl Value {
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The data type of this value, `None` for `NULL`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// Numeric view of the value, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            Value::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Date(d) => Some(*d as i64),
            Value::Double(d) if d.fract() == 0.0 => Some(*d as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison: `None` when either side is `NULL` or the types are
    /// incomparable; numeric types compare across `Int`/`Double`/`Date`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// SQL equality under three-valued logic: `None` when NULL is involved.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Null-tolerant equality used by set operators (INTERSECT/MINUS) and
    /// GROUP BY / DISTINCT, where `NULL` matches `NULL`.
    pub fn null_safe_eq(&self, other: &Value) -> bool {
        match (self.is_null(), other.is_null()) {
            (true, true) => true,
            (true, false) | (false, true) => false,
            (false, false) => self.sql_eq(other).unwrap_or(false),
        }
    }

    /// Total-order comparison used for sorting and B-tree keys.
    /// `NULL` sorts last; cross-type falls back to a type-rank order so the
    /// order is total even on heterogeneous data.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Greater,
            (_, Null) => Ordering::Less,
            _ => self
                .sql_cmp(other)
                .unwrap_or_else(|| self.type_rank().cmp(&other.type_rank())),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 5,
            Value::Bool(_) => 0,
            Value::Int(_) | Value::Double(_) | Value::Date(_) => 1,
            Value::Str(_) => 2,
        }
    }

    /// Adds two numeric values with SQL NULL propagation.
    pub fn numeric_add(&self, other: &Value) -> Result<Value> {
        Value::numeric_binop(self, other, "+", |a, b| a + b, i64::checked_add)
    }

    pub fn numeric_sub(&self, other: &Value) -> Result<Value> {
        Value::numeric_binop(self, other, "-", |a, b| a - b, i64::checked_sub)
    }

    pub fn numeric_mul(&self, other: &Value) -> Result<Value> {
        Value::numeric_binop(self, other, "*", |a, b| a * b, i64::checked_mul)
    }

    pub fn numeric_div(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        let (a, b) = (
            self.as_f64()
                .ok_or_else(|| Error::execution("non-numeric operand to /"))?,
            other
                .as_f64()
                .ok_or_else(|| Error::execution("non-numeric operand to /"))?,
        );
        if b == 0.0 {
            return Err(Error::execution("division by zero"));
        }
        Ok(Value::Double(a / b))
    }

    fn numeric_binop(
        a: &Value,
        b: &Value,
        op: &str,
        f: fn(f64, f64) -> f64,
        g: fn(i64, i64) -> Option<i64>,
    ) -> Result<Value> {
        match (a, b) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(x), Value::Int(y)) => match g(*x, *y) {
                Some(v) => Ok(Value::Int(v)),
                None => Ok(Value::Double(f(*x as f64, *y as f64))),
            },
            _ => {
                let (x, y) = (
                    a.as_f64()
                        .ok_or_else(|| Error::execution(format!("non-numeric operand to {op}")))?,
                    b.as_f64()
                        .ok_or_else(|| Error::execution(format!("non-numeric operand to {op}")))?,
                );
                Ok(Value::Double(f(x, y)))
            }
        }
    }
}

impl PartialEq for Value {
    /// Structural, null-safe equality (NULL == NULL). Use [`Value::sql_eq`]
    /// for SQL comparison semantics.
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal && self.is_null() == other.is_null()
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Ints and integral doubles that compare equal must hash equal.
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Double(d) => {
                1u8.hash(state);
                // Normalize -0.0 to 0.0 so equal values hash equal.
                let d = if *d == 0.0 { 0.0 } else { *d };
                d.to_bits().hash(state);
            }
            Value::Date(d) => {
                1u8.hash(state);
                (*d as f64).to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Date(d) => write!(f, "DATE {d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_cross_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Double(3.0).sql_cmp(&Value::Int(2)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn null_safe_eq_matches_nulls() {
        assert!(Value::Null.null_safe_eq(&Value::Null));
        assert!(!Value::Null.null_safe_eq(&Value::Int(1)));
        assert!(Value::Int(1).null_safe_eq(&Value::Int(1)));
        assert!(!Value::Int(1).null_safe_eq(&Value::Int(2)));
    }

    #[test]
    fn total_order_puts_null_last() {
        let mut vals = vec![Value::Null, Value::Int(3), Value::Int(1)];
        vals.sort();
        assert_eq!(vals, vec![Value::Int(1), Value::Int(3), Value::Null]);
    }

    #[test]
    fn equal_int_double_hash_equal() {
        assert_eq!(Value::Int(7), Value::Double(7.0));
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Double(7.0)));
        // negative zero
        assert_eq!(hash_of(&Value::Double(0.0)), hash_of(&Value::Double(-0.0)));
    }

    #[test]
    fn arithmetic_null_propagates() {
        assert!(Value::Null.numeric_add(&Value::Int(1)).unwrap().is_null());
        assert!(Value::Int(1).numeric_mul(&Value::Null).unwrap().is_null());
    }

    #[test]
    fn arithmetic_int_and_mixed() {
        assert_eq!(
            Value::Int(2).numeric_add(&Value::Int(3)).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            Value::Int(2).numeric_add(&Value::Double(0.5)).unwrap(),
            Value::Double(2.5)
        );
        assert_eq!(
            Value::Int(7).numeric_div(&Value::Int(2)).unwrap(),
            Value::Double(3.5)
        );
    }

    #[test]
    fn int_overflow_widen_to_double() {
        let v = Value::Int(i64::MAX).numeric_add(&Value::Int(1)).unwrap();
        assert_eq!(v.data_type(), Some(DataType::Double));
    }

    #[test]
    fn division_by_zero_is_error() {
        assert!(Value::Int(1).numeric_div(&Value::Int(0)).is_err());
    }

    #[test]
    fn datatype_parse_aliases() {
        assert_eq!(DataType::parse("integer").unwrap(), DataType::Int);
        assert_eq!(DataType::parse("VARCHAR2").unwrap(), DataType::Str);
        assert_eq!(DataType::parse("number").unwrap(), DataType::Int);
        assert!(DataType::parse("BLOB").is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::str("a").to_string(), "'a'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
    }
}
