//! Shared primitives for the CBQT engine: SQL values, data types, rows,
//! error handling, and small utilities used by every other crate.
//!
//! The value model is deliberately small — `NULL`, 64-bit integers, 64-bit
//! floats, strings, booleans and dates — which is enough to express every
//! query shape the paper's transformations target while keeping the
//! executor simple and fast.

pub mod error;
pub mod failpoint;
pub mod governor;
pub mod trace;
pub mod value;

pub use error::{Error, Result};
pub use governor::{CancelToken, ExecutionLimits, Governor, StateCharge};
pub use trace::{TraceBuffer, TraceEvent, TraceSink, Tracer};
pub use value::{DataType, Datum, Row, Value};

/// Total-order "strictly cheaper" comparison for plan costs.
///
/// Cost arithmetic can produce NaN (degenerate statistics, 0/0 in
/// selectivity math); `f64::total_cmp` sorts NaN *above* `+∞`, so a NaN
/// cost never wins against any finite or infinite alternative and never
/// panics the way `partial_cmp().unwrap()` does. Every cost comparison
/// in the optimizer and the transformation framework goes through this
/// helper (or `total_cmp` directly for sorts).
#[inline]
pub fn cost_lt(a: f64, b: f64) -> bool {
    a.total_cmp(&b) == std::cmp::Ordering::Less
}

/// How far apart an estimated and an observed cardinality are, as a
/// symmetric ratio ≥ 1 (`max(a/e, e/a)`): 1.0 means perfect, 10.0 means
/// a 10× miss in either direction.
///
/// The math is deliberately NaN/zero-safe — cardinality feedback feeds
/// this with raw runtime counters, and degenerate inputs must never
/// produce NaN/∞ or trigger a re-optimization storm:
/// - both sides are floored at one row before dividing (estimate=0 and
///   actual=0 are common and legitimate — an empty scan estimated empty
///   is a *perfect* estimate, ratio 1.0, not 0/0);
/// - non-finite inputs (a NaN cost, an ∞ blow-up) return `f64::MAX`
///   rather than propagating — a plan costed on garbage *should* look
///   maximally divergent, but comparably so (`MAX > any threshold`,
///   while NaN compares false against everything and would mask the
///   miss).
#[inline]
pub fn divergence_ratio(estimate: f64, actual: f64) -> f64 {
    if !estimate.is_finite() || !actual.is_finite() {
        return f64::MAX;
    }
    let e = estimate.max(1.0);
    let a = actual.max(1.0);
    (a / e).max(e / a)
}

/// Which interpreter the engine uses to execute physical plans.
///
/// Both interpreters run the *same* plans and must produce identical
/// results, per-operator row counts, and governor outcomes — the
/// row-at-a-time engine is kept as the correctness oracle for the
/// vectorized one (see the fuzzer's `--differential-exec` mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Columnar batch interpreter: operators exchange ~1024-row batches
    /// and expressions are compiled once per operator instead of being
    /// tree-walked per row. The default.
    #[default]
    Vectorized,
    /// Row-at-a-time Volcano interpreter, kept as the differential
    /// oracle and as a fallback.
    Volcano,
}

impl ExecutionMode {
    /// Parses a mode name (case-insensitive); anything other than
    /// `volcano` / `row` selects the vectorized engine.
    pub fn parse(s: &str) -> ExecutionMode {
        match s.trim().to_ascii_lowercase().as_str() {
            "volcano" | "row" => ExecutionMode::Volcano,
            _ => ExecutionMode::Vectorized,
        }
    }

    /// The process-wide default, read once from `CBQT_EXEC_MODE`
    /// (`volcano` selects the oracle engine; unset or anything else
    /// selects the vectorized engine).
    pub fn from_env() -> ExecutionMode {
        static MODE: std::sync::OnceLock<ExecutionMode> = std::sync::OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("CBQT_EXEC_MODE") {
            Ok(v) => ExecutionMode::parse(&v),
            Err(_) => ExecutionMode::Vectorized,
        })
    }

    pub fn as_str(self) -> &'static str {
        match self {
            ExecutionMode::Vectorized => "vectorized",
            ExecutionMode::Volcano => "volcano",
        }
    }
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Truth value of SQL three-valued logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    True,
    False,
    Unknown,
}

impl Truth {
    /// Converts a nullable boolean into a truth value.
    pub fn from_opt(b: Option<bool>) -> Truth {
        match b {
            Some(true) => Truth::True,
            Some(false) => Truth::False,
            None => Truth::Unknown,
        }
    }

    /// True iff this truth value passes a WHERE/HAVING filter.
    pub fn passes(self) -> bool {
        self == Truth::True
    }

    /// SQL `AND` with three-valued semantics.
    pub fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// SQL `OR` with three-valued semantics.
    pub fn or(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// SQL `NOT` with three-valued semantics.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_and_table() {
        use Truth::*;
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(False), False);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(Unknown.and(Unknown), Unknown);
    }

    #[test]
    fn truth_or_table() {
        use Truth::*;
        assert_eq!(False.or(False), False);
        assert_eq!(False.or(True), True);
        assert_eq!(Unknown.or(True), True);
        assert_eq!(Unknown.or(False), Unknown);
        assert_eq!(Unknown.or(Unknown), Unknown);
    }

    #[test]
    fn truth_not() {
        assert_eq!(Truth::True.not(), Truth::False);
        assert_eq!(Truth::False.not(), Truth::True);
        assert_eq!(Truth::Unknown.not(), Truth::Unknown);
    }

    #[test]
    fn truth_passes() {
        assert!(Truth::True.passes());
        assert!(!Truth::False.passes());
        assert!(!Truth::Unknown.passes());
    }

    #[test]
    fn divergence_ratio_is_symmetric_and_floored() {
        assert_eq!(divergence_ratio(10.0, 100.0), 10.0);
        assert_eq!(divergence_ratio(100.0, 10.0), 10.0);
        assert_eq!(divergence_ratio(50.0, 50.0), 1.0);
        // sub-row estimates are floored at one row: 0.25 est vs 5 actual
        // is a 5x miss, not a 20x one
        assert_eq!(divergence_ratio(0.25, 5.0), 5.0);
    }

    #[test]
    fn divergence_ratio_degenerate_inputs_are_safe() {
        // empty scan estimated empty: perfect, never a reopt trigger
        assert_eq!(divergence_ratio(0.0, 0.0), 1.0);
        assert_eq!(divergence_ratio(0.0, 1.0), 1.0);
        assert_eq!(divergence_ratio(1.0, 0.0), 1.0);
        // negatives floor to one row rather than flipping the ratio sign
        assert_eq!(divergence_ratio(-3.0, 4.0), 4.0);
        // non-finite inputs look maximally divergent, never NaN
        for (e, a) in [
            (f64::NAN, 10.0),
            (10.0, f64::NAN),
            (f64::INFINITY, 10.0),
            (10.0, f64::NEG_INFINITY),
        ] {
            let r = divergence_ratio(e, a);
            assert!(r.is_finite(), "divergence_ratio({e}, {a}) = {r}");
            assert_eq!(r, f64::MAX);
        }
        // and every finite result is >= 1
        assert!(divergence_ratio(1e-300, 1e300) >= 1.0);
    }
}
