//! Error type shared across the engine.

use std::fmt;

/// Convenient result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Engine-wide error type.
///
/// Each variant corresponds to the phase that raised it, so callers can
/// distinguish a syntax error from, say, a planner invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexical or syntactic error in SQL text.
    Parse(String),
    /// Name-resolution or semantic error (unknown table/column, ambiguous
    /// reference, grouping violations, ...).
    Analysis(String),
    /// Catalog-level error (duplicate table, unknown index, ...).
    Catalog(String),
    /// A transformation was asked to do something invalid.
    Transform(String),
    /// Physical optimization failed an invariant.
    Plan(String),
    /// Runtime execution error (type mismatch at runtime, division by
    /// zero, ...).
    Execution(String),
    /// Feature recognized but not supported by this engine.
    Unsupported(String),
    /// A statement-level resource limit (wall-clock deadline, executor
    /// row/work budget) was exceeded. See [`crate::governor`].
    ResourceExhausted(String),
    /// The statement was cancelled cooperatively via a
    /// [`CancelToken`](crate::governor::CancelToken).
    Cancelled,
    /// An internal fault (a caught panic, an injected failure) was
    /// contained at the `Database` boundary. The database and its plan
    /// cache remain usable; the statement that hit the fault is lost.
    Internal(String),
    /// First-updater-wins write-write conflict under snapshot
    /// isolation: the statement tried to update or delete a row version
    /// that a concurrent transaction already superseded. The losing
    /// transaction is rolled back; retrying on a fresh snapshot is the
    /// standard remedy.
    WriteConflict(String),
}

impl Error {
    pub fn parse(msg: impl Into<String>) -> Error {
        Error::Parse(msg.into())
    }
    pub fn analysis(msg: impl Into<String>) -> Error {
        Error::Analysis(msg.into())
    }
    pub fn catalog(msg: impl Into<String>) -> Error {
        Error::Catalog(msg.into())
    }
    pub fn transform(msg: impl Into<String>) -> Error {
        Error::Transform(msg.into())
    }
    pub fn plan(msg: impl Into<String>) -> Error {
        Error::Plan(msg.into())
    }
    pub fn execution(msg: impl Into<String>) -> Error {
        Error::Execution(msg.into())
    }
    pub fn unsupported(msg: impl Into<String>) -> Error {
        Error::Unsupported(msg.into())
    }
    pub fn resource_exhausted(msg: impl Into<String>) -> Error {
        Error::ResourceExhausted(msg.into())
    }
    pub fn internal(msg: impl Into<String>) -> Error {
        Error::Internal(msg.into())
    }
    pub fn write_conflict(msg: impl Into<String>) -> Error {
        Error::WriteConflict(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Analysis(m) => write!(f, "analysis error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Transform(m) => write!(f, "transform error: {m}"),
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
            Error::Cancelled => write!(f, "statement cancelled"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
            Error::WriteConflict(m) => write!(f, "write conflict: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase() {
        assert_eq!(
            Error::parse("unexpected token").to_string(),
            "parse error: unexpected token"
        );
        assert_eq!(
            Error::execution("div by zero").to_string(),
            "execution error: div by zero"
        );
        assert_eq!(
            Error::unsupported("MODEL clause").to_string(),
            "unsupported: MODEL clause"
        );
        assert_eq!(
            Error::resource_exhausted("deadline").to_string(),
            "resource exhausted: deadline"
        );
        assert_eq!(Error::Cancelled.to_string(), "statement cancelled");
        assert_eq!(
            Error::internal("caught panic").to_string(),
            "internal error: caught panic"
        );
    }

    #[test]
    fn constructors_map_to_variants() {
        assert!(matches!(Error::analysis("x"), Error::Analysis(_)));
        assert!(matches!(Error::catalog("x"), Error::Catalog(_)));
        assert!(matches!(Error::transform("x"), Error::Transform(_)));
        assert!(matches!(Error::plan("x"), Error::Plan(_)));
        assert!(matches!(
            Error::write_conflict("x"),
            Error::WriteConflict(_)
        ));
        assert_eq!(
            Error::write_conflict("row 3 of emp").to_string(),
            "write conflict: row 3 of emp"
        );
    }
}
