//! Fault-injection points ("failpoints") compiled into the engine.
//!
//! A failpoint is a named site in production code — a storage scan, an
//! executor operator, the optimizer — where a test can inject a failure.
//! Sites are spelled with the [`failpoint!`](crate::failpoint!) macro:
//!
//! ```ignore
//! cbqt_common::failpoint!(cbqt_common::failpoint::EXEC_JOIN);
//! ```
//!
//! **Zero cost when disabled**: the macro's expansion is one relaxed
//! atomic load of a global "any failpoint armed" flag; the registry map
//! is consulted only while at least one failpoint is armed, which only
//! happens inside the fault-injection test harness
//! (`cbqt_testkit::failpoints`). Production serving never arms any.
//!
//! An armed failpoint either returns [`Error::Internal`] from the site
//! (the common case) or panics there (to exercise the `catch_unwind` +
//! lock-poison recovery at the `Database` boundary).
//!
//! Site names are declared here as constants so the set of registered
//! failpoints ([`ALL`]) is a compile-time fact the robustness suite can
//! enumerate; a site and its name can't drift apart.

use crate::error::{Error, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Storage: table lookup feeding every base-table scan.
pub const STORAGE_SCAN: &str = "storage.scan";
/// Storage: index lookup feeding index-driven access paths.
pub const STORAGE_INDEX: &str = "storage.index";
/// Executor: base-table scan operator.
pub const EXEC_SCAN: &str = "exec.scan";
/// Executor: join operator (hash / merge / nested-loop / lateral).
pub const EXEC_JOIN: &str = "exec.join";
/// Executor: aggregation operator.
pub const EXEC_AGG: &str = "exec.agg";
/// Executor: set-operation operator (UNION/INTERSECT/EXCEPT).
pub const EXEC_SETOP: &str = "exec.setop";
/// Optimizer: per-block physical planning.
pub const OPTIMIZER_PLAN: &str = "optimizer.plan_block";
/// Storage: appending an uncommitted row version (first write path of a
/// transaction; fires before any mutation so an injected fault leaves
/// the heap untouched).
pub const STORAGE_WRITE_VERSION: &str = "storage.write.version";
/// Storage: commit publish — the atomic restamp that makes a
/// transaction's versions visible and advances the watermark. Fires
/// before publish, so a fault here aborts the transaction whole.
pub const STORAGE_COMMIT_PUBLISH: &str = "storage.commit.publish";
/// Transaction: first-updater-wins conflict check on UPDATE/DELETE.
pub const TXN_CONFLICT_CHECK: &str = "txn.conflict.check";

/// Every failpoint compiled into the engine.
pub const ALL: &[&str] = &[
    STORAGE_SCAN,
    STORAGE_INDEX,
    EXEC_SCAN,
    EXEC_JOIN,
    EXEC_AGG,
    EXEC_SETOP,
    OPTIMIZER_PLAN,
    STORAGE_WRITE_VERSION,
    STORAGE_COMMIT_PUBLISH,
    TXN_CONFLICT_CHECK,
];

/// What an armed failpoint does when its site is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// The site returns `Error::Internal`.
    Error,
    /// The site panics (exercising unwind containment).
    Panic,
}

/// Fast-path gate: true iff at least one failpoint is armed.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<&'static str, FailAction>> {
    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, FailAction>>> = OnceLock::new();
    REGISTRY.get_or_init(Mutex::default)
}

fn lock_registry() -> std::sync::MutexGuard<'static, HashMap<&'static str, FailAction>> {
    // A panic injected *while* the registry lock is held can't happen
    // (arming and firing never panic inside the critical section), but
    // recover anyway: a poisoned registry must never wedge the harness.
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms `name` with `action`. `name` must be one of [`ALL`].
pub fn arm(name: &'static str, action: FailAction) {
    assert!(ALL.contains(&name), "unknown failpoint {name:?}");
    let mut reg = lock_registry();
    reg.insert(name, action);
    ANY_ARMED.store(true, Ordering::SeqCst);
}

/// Disarms `name`; a site reached afterwards behaves normally.
pub fn disarm(name: &'static str) {
    let mut reg = lock_registry();
    reg.remove(name);
    if reg.is_empty() {
        ANY_ARMED.store(false, Ordering::SeqCst);
    }
}

/// Disarms everything (test teardown / fuzzer round reset).
pub fn disarm_all() {
    let mut reg = lock_registry();
    reg.clear();
    ANY_ARMED.store(false, Ordering::SeqCst);
}

/// Called by the [`failpoint!`](crate::failpoint!) macro at each site.
/// Returns `Err(Error::Internal)` or panics iff `name` is armed.
#[inline]
pub fn fire(name: &'static str) -> Result<()> {
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    fire_slow(name)
}

#[cold]
fn fire_slow(name: &'static str) -> Result<()> {
    let action = lock_registry().get(name).copied();
    match action {
        None => Ok(()),
        Some(FailAction::Error) => Err(Error::internal(format!(
            "injected failure at failpoint {name}"
        ))),
        Some(FailAction::Panic) => panic!("injected panic at failpoint {name}"),
    }
}

/// Declares a fault-injection site. Expands to a `?`-propagated
/// [`fire`] call, so the enclosing function must return
/// [`crate::Result`]. One relaxed atomic load when nothing is armed.
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {
        $crate::failpoint::fire($name)?
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Failpoint state is process-global; keep this module's tests in a
    // single #[test] so parallel test threads can't interleave arming.
    #[test]
    fn arm_fire_disarm_cycle() {
        assert!(fire(EXEC_SCAN).is_ok());

        arm(EXEC_SCAN, FailAction::Error);
        let err = fire(EXEC_SCAN).unwrap_err();
        assert!(matches!(err, Error::Internal(_)), "{err}");
        assert!(err.to_string().contains(EXEC_SCAN));
        // other points are unaffected
        assert!(fire(EXEC_JOIN).is_ok());

        disarm(EXEC_SCAN);
        assert!(fire(EXEC_SCAN).is_ok());

        arm(EXEC_AGG, FailAction::Panic);
        let caught = std::panic::catch_unwind(|| fire(EXEC_AGG).unwrap());
        assert!(caught.is_err());
        disarm_all();
        assert!(fire(EXEC_AGG).is_ok());

        // the macro compiles inside a Result-returning fn
        fn site() -> Result<()> {
            crate::failpoint!(EXEC_SETOP);
            Ok(())
        }
        assert!(site().is_ok());
    }

    #[test]
    #[should_panic(expected = "unknown failpoint")]
    fn arming_unknown_name_is_rejected() {
        arm("no.such.point", FailAction::Error);
    }
}
