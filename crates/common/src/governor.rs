//! Statement-level resource governor.
//!
//! The paper's §3.4.1 cost cut-off bounds *per-state* optimizer work; this
//! module bounds a *whole statement*. A [`Governor`] is built once per
//! statement from [`ExecutionLimits`] and threaded through the
//! transformation search, the join enumerator, and every executor loop.
//! Checks are designed to be cheap enough for per-row call sites: the
//! unlimited governor is a single `Option` test, and a limited one is an
//! atomic load plus occasional clock reads.
//!
//! Two very different failure semantics coexist here, on purpose:
//!
//! - **Optimizer-state budget** — exhausting it *degrades* the search:
//!   the framework keeps the best-costed state found so far (or the
//!   heuristic plan if nothing was costed yet) and the statement still
//!   runs, flagged `degraded`. Planning effort is advisory.
//! - **Wall-clock deadline, executor row/work budgets, cancellation** —
//!   these hard-fail with [`Error::ResourceExhausted`] /
//!   [`Error::Cancelled`]. Execution effort is a hard promise.

use crate::error::{Error, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-statement resource limits. All fields default to "unlimited";
/// build with the `with_*` methods.
///
/// ```
/// use cbqt_common::governor::ExecutionLimits;
/// use std::time::Duration;
/// let limits = ExecutionLimits::none()
///     .with_deadline(Duration::from_millis(250))
///     .with_optimizer_states(64)
///     .with_row_budget(1_000_000);
/// assert!(limits.is_limited());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecutionLimits {
    /// Wall-clock budget for the whole statement (compile + execute).
    pub deadline: Option<Duration>,
    /// Maximum number of transformation states the CBQT search may cost.
    /// Exhausting it degrades the search instead of failing the query.
    pub optimizer_states: Option<u64>,
    /// Maximum number of rows the executor may process (scanned, joined,
    /// or emitted — a proxy for memory and CPU).
    pub row_budget: Option<u64>,
    /// Maximum executor work units (the engine's internal cost-like
    /// accounting currency, roughly rows touched per operator).
    pub work_budget: Option<f64>,
}

impl ExecutionLimits {
    /// No limits at all.
    pub fn none() -> ExecutionLimits {
        ExecutionLimits::default()
    }

    pub fn with_deadline(mut self, d: Duration) -> ExecutionLimits {
        self.deadline = Some(d);
        self
    }

    pub fn with_optimizer_states(mut self, states: u64) -> ExecutionLimits {
        self.optimizer_states = Some(states);
        self
    }

    pub fn with_row_budget(mut self, rows: u64) -> ExecutionLimits {
        self.row_budget = Some(rows);
        self
    }

    pub fn with_work_budget(mut self, work: f64) -> ExecutionLimits {
        self.work_budget = Some(work);
        self
    }

    /// True if any limit is set.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some()
            || self.optimizer_states.is_some()
            || self.row_budget.is_some()
            || self.work_budget.is_some()
    }
}

/// Cooperative cancellation handle: cheap to clone (one `Arc`), safe to
/// trigger from any thread. Statements governed by a [`Governor`] built
/// over this token observe the flag at their next check point.
///
/// Tokens form a tree: [`CancelToken::child`] derives a token that also
/// observes every ancestor, so a database-wide token can fence all
/// sessions while cancelling one session's token leaves its siblings
/// untouched.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    parent: Option<Arc<CancelToken>>,
}

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A new token linked under this one: the child reports cancelled
    /// when it — or any ancestor — is cancelled, but cancelling the
    /// child never affects the parent or sibling children.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            parent: Some(Arc::new(self.clone())),
        }
    }

    /// Requests cancellation of every statement governed by this token
    /// or a [`child`](CancelToken::child) of it. The flag is sticky:
    /// call [`CancelToken::reset`] before reusing the token for new
    /// statements.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.parent.as_ref().is_some_and(|p| p.is_cancelled())
    }

    /// Clears a previous [`CancelToken::cancel`] on *this* token so
    /// subsequent statements run normally. A cancelled ancestor must be
    /// reset separately.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Relaxed);
    }
}

/// Outcome of charging one state against the optimizer budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateCharge {
    /// Within budget; the state may be costed.
    Charged,
    /// The budget ran out on *this* charge — the caller should emit its
    /// one-time degradation trace event, then stop costing states.
    ExhaustedNow,
    /// The budget was already exhausted earlier.
    Exhausted,
}

struct Inner {
    cancel: CancelToken,
    start: Instant,
    deadline: Option<Duration>,
    optimizer_states: Option<u64>,
    states_used: AtomicU64,
    row_budget: Option<u64>,
    rows_used: AtomicU64,
    work_budget: Option<f64>,
    degraded: AtomicBool,
    /// Join enumeration exhausted its per-block memo allowance and fell
    /// back to the greedy path. Kept separate from `degraded` so the
    /// parallel search's speculative-charge refunds (`clear_degraded`)
    /// can never erase an enumeration degradation that really happened.
    enum_degraded: AtomicBool,
    /// Counts interrupt checks so `Instant::now()` is consulted only
    /// every few checks (call sites already batch per ~128 rows).
    checks: AtomicU64,
}

/// The per-statement governor handle threaded through planner and
/// executor. `Governor::unlimited()` is a no-op on every path (a single
/// `Option` test), so ungoverned statements pay nothing.
#[derive(Clone, Default)]
pub struct Governor {
    inner: Option<Arc<Inner>>,
}

/// Check the wall clock on every Nth interrupt check; call sites batch
/// their checks per ~128 rows, so the deadline is still observed promptly.
const CLOCK_CHECK_MASK: u64 = 0x7;

impl Governor {
    /// A governor that enforces nothing. This is the default for every
    /// entry point that doesn't take explicit limits.
    pub fn unlimited() -> Governor {
        Governor { inner: None }
    }

    /// Builds a governor enforcing `limits`, observing `cancel`. The
    /// wall clock starts now.
    pub fn new(limits: &ExecutionLimits, cancel: CancelToken) -> Governor {
        Governor {
            inner: Some(Arc::new(Inner {
                cancel,
                start: Instant::now(),
                deadline: limits.deadline,
                optimizer_states: limits.optimizer_states,
                states_used: AtomicU64::new(0),
                row_budget: limits.row_budget,
                rows_used: AtomicU64::new(0),
                work_budget: limits.work_budget,
                degraded: AtomicBool::new(false),
                enum_degraded: AtomicBool::new(false),
                checks: AtomicU64::new(0),
            })),
        }
    }

    /// True when this governor enforces at least cancellation.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Checks cancellation and the wall-clock deadline. Used from
    /// planner loops, where row/work budgets don't apply.
    #[inline]
    pub fn check_interrupt(&self) -> Result<()> {
        match &self.inner {
            None => Ok(()),
            Some(inner) => inner.check_interrupt(),
        }
    }

    /// Charges `rows` processed rows and the engine's current `work`
    /// total against the executor budgets, and checks interrupts.
    /// Call sites batch (~128 rows) so this stays off the per-row path.
    #[inline]
    pub fn charge_exec(&self, rows: u64, work: f64) -> Result<()> {
        match &self.inner {
            None => Ok(()),
            Some(inner) => inner.charge_exec(rows, work),
        }
    }

    /// Charges one transformation state against the optimizer budget.
    /// Never fails: exhaustion degrades the search rather than erroring.
    #[inline]
    pub fn charge_state(&self) -> StateCharge {
        let Some(inner) = &self.inner else {
            return StateCharge::Charged;
        };
        let Some(budget) = inner.optimizer_states else {
            return StateCharge::Charged;
        };
        let used = inner.states_used.fetch_add(1, Ordering::Relaxed);
        if used < budget {
            StateCharge::Charged
        } else if !inner.degraded.swap(true, Ordering::Relaxed) {
            StateCharge::ExhaustedNow
        } else {
            StateCharge::Exhausted
        }
    }

    /// True once the statement's optimizer work has been degraded in any
    /// way: the CBQT search ran out of transformation states, or a join
    /// enumeration exhausted its memo allowance mid-block. Degraded
    /// plans are valid but reflect a truncated search — callers use this
    /// to flag `QueryStats::degraded` and to skip plan-cache publishing.
    pub fn optimizer_exhausted(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.degraded.load(Ordering::Relaxed)
                    || inner.enum_degraded.load(Ordering::Relaxed)
            }
        }
    }

    /// True once the CBQT *search* budget specifically has run out (the
    /// framework stops costing candidate states). Join-enumeration
    /// degradation is deliberately excluded: it is local to one block of
    /// one state and must not flip later states to the greedy tier —
    /// wave workers cost states before earlier commits land, so any
    /// cross-state coupling through this flag would make the parallel
    /// search diverge from serial.
    pub fn search_exhausted(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => inner.degraded.load(Ordering::Relaxed),
        }
    }

    /// The configured optimizer-state budget, if any. Join enumeration
    /// uses it as the per-block memo allowance (each memo entry costed
    /// charges one unit) — a snapshot of the *configured* budget rather
    /// than the live counter, so a block's plan depends only on the
    /// block itself and stays identical across serial and parallel
    /// searches (and across annotation-cache hits vs. recomputation).
    pub fn state_budget(&self) -> Option<u64> {
        self.inner.as_ref().and_then(|inner| inner.optimizer_states)
    }

    /// Records that a join enumeration exhausted its memo allowance and
    /// degraded to the greedy path. Sticky for the statement; never
    /// cleared by [`Governor::clear_degraded`]. Callers must only invoke
    /// this at deterministic points (serial costing, or wave commit in
    /// state order) so the flag's final value matches a serial run.
    pub fn mark_enum_degraded(&self) {
        if let Some(inner) = &self.inner {
            inner.enum_degraded.store(true, Ordering::Relaxed);
        }
    }

    /// Number of states charged so far (for stats/tracing).
    pub fn states_used(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.states_used.load(Ordering::Relaxed),
        }
    }

    /// Returns `n` state charges to the budget. The parallel CBQT search
    /// pre-charges every state of a wave before costing it; when the
    /// wave is cut short (an earlier state stopped the scan), the
    /// charges of the discarded states are refunded so a parallel run
    /// consumes exactly the budget a serial run would have.
    pub fn refund_states(&self, n: u64) {
        if let Some(inner) = &self.inner {
            inner.states_used.fetch_sub(n, Ordering::Relaxed);
        }
    }

    /// Clears the degraded flag. Only valid when the charge that tripped
    /// [`StateCharge::ExhaustedNow`] was speculative and has just been
    /// refunded (a serial run would never have made it), so the budget
    /// is back under its limit and the search was not actually degraded.
    pub fn clear_degraded(&self) {
        if let Some(inner) = &self.inner {
            inner.degraded.store(false, Ordering::Relaxed);
        }
    }
}

impl Inner {
    #[inline]
    fn check_interrupt(&self) -> Result<()> {
        if self.cancel.is_cancelled() {
            return Err(Error::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            let n = self.checks.fetch_add(1, Ordering::Relaxed);
            if n & CLOCK_CHECK_MASK == 0 && self.start.elapsed() > deadline {
                return Err(Error::resource_exhausted(format!(
                    "wall-clock deadline of {deadline:?} exceeded"
                )));
            }
        }
        Ok(())
    }

    #[inline]
    fn charge_exec(&self, rows: u64, work: f64) -> Result<()> {
        if let Some(budget) = self.row_budget {
            let used = self.rows_used.fetch_add(rows, Ordering::Relaxed) + rows;
            if used > budget {
                return Err(Error::resource_exhausted(format!(
                    "executor row budget of {budget} rows exceeded"
                )));
            }
        }
        if let Some(budget) = self.work_budget {
            if work > budget {
                return Err(Error::resource_exhausted(format!(
                    "executor work budget of {budget} exceeded"
                )));
            }
        }
        self.check_interrupt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_free_and_passes() {
        let g = Governor::unlimited();
        assert!(!g.is_active());
        assert!(g.check_interrupt().is_ok());
        assert!(g.charge_exec(1_000_000, 1e18).is_ok());
        assert_eq!(g.charge_state(), StateCharge::Charged);
        assert!(!g.optimizer_exhausted());
    }

    #[test]
    fn cancellation_is_observed() {
        let token = CancelToken::new();
        let g = Governor::new(&ExecutionLimits::none(), token.clone());
        assert!(g.check_interrupt().is_ok());
        token.cancel();
        assert_eq!(g.check_interrupt(), Err(Error::Cancelled));
        assert_eq!(g.charge_exec(1, 0.0), Err(Error::Cancelled));
        token.reset();
        assert!(g.check_interrupt().is_ok());
    }

    #[test]
    fn deadline_trips() {
        let limits = ExecutionLimits::none().with_deadline(Duration::from_millis(0));
        let g = Governor::new(&limits, CancelToken::new());
        std::thread::sleep(Duration::from_millis(2));
        // The clock is only consulted every few checks; hammer it.
        let tripped =
            (0..64).any(|_| matches!(g.check_interrupt(), Err(Error::ResourceExhausted(_))));
        assert!(tripped);
    }

    #[test]
    fn row_budget_trips_and_reports() {
        let limits = ExecutionLimits::none().with_row_budget(100);
        let g = Governor::new(&limits, CancelToken::new());
        assert!(g.charge_exec(60, 0.0).is_ok());
        let err = g.charge_exec(60, 0.0).unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)), "{err}");
        assert!(err.to_string().contains("row budget"));
    }

    #[test]
    fn work_budget_trips() {
        let limits = ExecutionLimits::none().with_work_budget(500.0);
        let g = Governor::new(&limits, CancelToken::new());
        assert!(g.charge_exec(0, 499.0).is_ok());
        assert!(matches!(
            g.charge_exec(0, 501.0),
            Err(Error::ResourceExhausted(_))
        ));
    }

    #[test]
    fn state_budget_degrades_once() {
        let limits = ExecutionLimits::none().with_optimizer_states(2);
        let g = Governor::new(&limits, CancelToken::new());
        assert_eq!(g.charge_state(), StateCharge::Charged);
        assert_eq!(g.charge_state(), StateCharge::Charged);
        assert!(!g.optimizer_exhausted());
        assert_eq!(g.charge_state(), StateCharge::ExhaustedNow);
        assert_eq!(g.charge_state(), StateCharge::Exhausted);
        assert!(g.optimizer_exhausted());
        assert_eq!(g.states_used(), 4);
    }

    #[test]
    fn clones_share_state() {
        let limits = ExecutionLimits::none().with_optimizer_states(1);
        let g = Governor::new(&limits, CancelToken::new());
        let g2 = g.clone();
        assert_eq!(g.charge_state(), StateCharge::Charged);
        assert_eq!(g2.charge_state(), StateCharge::ExhaustedNow);
        assert!(g.optimizer_exhausted());
    }
}
