//! Property-based tests of the value model: ordering laws, hash/eq
//! consistency, three-valued logic, arithmetic NULL propagation.

use cbqt_common::{Truth, Value};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1.0e12..1.0e12f64).prop_map(Value::Double),
        "[a-z]{0,8}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
        (-100000..100000i32).prop_map(Value::Date),
    ]
}

fn arb_truth() -> impl Strategy<Value = Truth> {
    prop_oneof![Just(Truth::True), Just(Truth::False), Just(Truth::Unknown)]
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #[test]
    fn total_cmp_is_total_order(a in arb_value(), b in arb_value(), c in arb_value()) {
        // antisymmetry
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        // transitivity
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
        // reflexivity
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn eq_implies_same_hash(a in arb_value(), b in arb_value()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn sql_eq_none_iff_null(a in arb_value(), b in arb_value()) {
        if a.is_null() || b.is_null() {
            prop_assert_eq!(a.sql_cmp(&b), None);
        }
        // and symmetric when defined
        if let Some(t) = a.sql_eq(&b) {
            prop_assert_eq!(b.sql_eq(&a), Some(t));
        }
    }

    #[test]
    fn null_safe_eq_is_reflexive_and_symmetric(a in arb_value(), b in arb_value()) {
        prop_assert!(a.null_safe_eq(&a));
        prop_assert_eq!(a.null_safe_eq(&b), b.null_safe_eq(&a));
    }

    #[test]
    fn arithmetic_null_propagates(a in arb_value()) {
        prop_assert!(Value::Null.numeric_add(&a).unwrap().is_null());
        prop_assert!(a.numeric_mul(&Value::Null).unwrap().is_null());
        prop_assert!(Value::Null.numeric_sub(&a).unwrap().is_null());
    }

    #[test]
    fn int_add_commutes(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let x = Value::Int(a).numeric_add(&Value::Int(b)).unwrap();
        let y = Value::Int(b).numeric_add(&Value::Int(a)).unwrap();
        prop_assert_eq!(x, y);
    }

    #[test]
    fn truth_de_morgan(a in arb_truth(), b in arb_truth()) {
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
        prop_assert_eq!(a.or(b).not(), a.not().and(b.not()));
    }

    #[test]
    fn truth_and_or_commute(a in arb_truth(), b in arb_truth()) {
        prop_assert_eq!(a.and(b), b.and(a));
        prop_assert_eq!(a.or(b), b.or(a));
    }

    #[test]
    fn sort_with_total_cmp_never_panics(mut vs in proptest::collection::vec(arb_value(), 0..40)) {
        vs.sort_by(|a, b| a.total_cmp(b));
        // nulls must be a suffix
        let first_null = vs.iter().position(Value::is_null);
        if let Some(i) = first_null {
            prop_assert!(vs[i..].iter().all(Value::is_null));
        }
    }
}
