//! Property-based tests of the value model: ordering laws, hash/eq
//! consistency, three-valued logic, arithmetic NULL propagation.

use cbqt_common::{Truth, Value};
use cbqt_testkit::prop::{any_bool, any_i64, just, string_of, vec_of, SBox, Strategy, ALPHA_LOWER};
use cbqt_testkit::{one_of, props};
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn arb_value() -> SBox<Value> {
    one_of![
        just(Value::Null),
        any_i64().prop_map(Value::Int),
        (-1.0e12..1.0e12f64).prop_map(Value::Double),
        string_of(ALPHA_LOWER, 0..=8).prop_map(Value::str),
        any_bool().prop_map(Value::Bool),
        (-100_000..100_000i32).prop_map(Value::Date),
    ]
    .boxed()
}

fn arb_truth() -> SBox<Truth> {
    one_of![just(Truth::True), just(Truth::False), just(Truth::Unknown)].boxed()
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

props! {
    fn total_cmp_is_total_order(a in arb_value(), b in arb_value(), c in arb_value()) {
        // antisymmetry
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        assert_eq!(ab, ba.reverse());
        // transitivity
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
        // reflexivity
        assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    fn eq_implies_same_hash(a in arb_value(), b in arb_value()) {
        if a == b {
            assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    fn sql_eq_none_iff_null(a in arb_value(), b in arb_value()) {
        if a.is_null() || b.is_null() {
            assert_eq!(a.sql_cmp(&b), None);
        }
        // and symmetric when defined
        if let Some(t) = a.sql_eq(&b) {
            assert_eq!(b.sql_eq(&a), Some(t));
        }
    }

    fn null_safe_eq_is_reflexive_and_symmetric(a in arb_value(), b in arb_value()) {
        assert!(a.null_safe_eq(&a));
        assert_eq!(a.null_safe_eq(&b), b.null_safe_eq(&a));
    }

    fn arithmetic_null_propagates(a in arb_value()) {
        assert!(Value::Null.numeric_add(&a).unwrap().is_null());
        assert!(a.numeric_mul(&Value::Null).unwrap().is_null());
        assert!(Value::Null.numeric_sub(&a).unwrap().is_null());
    }

    fn int_add_commutes(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let x = Value::Int(a).numeric_add(&Value::Int(b)).unwrap();
        let y = Value::Int(b).numeric_add(&Value::Int(a)).unwrap();
        assert_eq!(x, y);
    }

    fn truth_de_morgan(a in arb_truth(), b in arb_truth()) {
        assert_eq!(a.and(b).not(), a.not().or(b.not()));
        assert_eq!(a.or(b).not(), a.not().and(b.not()));
    }

    fn truth_and_or_commute(a in arb_truth(), b in arb_truth()) {
        assert_eq!(a.and(b), b.and(a));
        assert_eq!(a.or(b), b.or(a));
    }

    fn sort_with_total_cmp_never_panics(vs in vec_of(arb_value(), 0..=40)) {
        let mut vs = vs;
        vs.sort_by(|a, b| a.total_cmp(b));
        // nulls must be a suffix
        let first_null = vs.iter().position(Value::is_null);
        if let Some(i) = first_null {
            assert!(vs[i..].iter().all(Value::is_null));
        }
    }
}
