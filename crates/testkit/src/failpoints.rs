//! Test-facing fault-injection harness over the engine's compiled-in
//! failpoints ([`cbqt_common::failpoint`](mod@cbqt_common::failpoint)).
//!
//! Production code declares injection sites with
//! `cbqt_common::failpoint!`; this module is how tests *arm* them:
//!
//! ```
//! use cbqt_testkit::failpoints::{self, Fail};
//! let _serial = failpoints::serial(); // failpoints are process-global
//! {
//!     let _fp = Fail::error(cbqt_common::failpoint::EXEC_SCAN);
//!     // ... run a query; the scan operator returns Error::Internal ...
//! } // disarmed on drop
//! ```
//!
//! Failpoint state is process-global, and Rust runs tests in one process
//! on many threads — every test that arms failpoints must hold the
//! [`serial`] guard for its whole body so arming can't bleed into
//! unrelated tests.

use cbqt_common::failpoint::{self, FailAction};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// RAII guard: arms one failpoint on construction, disarms it on drop
/// (including drop-during-unwind, so a failing assertion can't leave a
/// site armed for the next test).
pub struct Fail {
    name: &'static str,
}

impl Fail {
    /// Arms `name` to return `Error::Internal` when reached.
    pub fn error(name: &'static str) -> Fail {
        failpoint::arm(name, FailAction::Error);
        Fail { name }
    }

    /// Arms `name` to panic when reached (exercising the `Database`
    /// boundary's `catch_unwind` + lock-poison recovery).
    pub fn panic(name: &'static str) -> Fail {
        failpoint::arm(name, FailAction::Panic);
        Fail { name }
    }
}

impl Drop for Fail {
    fn drop(&mut self) {
        failpoint::disarm(self.name);
    }
}

/// Every failpoint compiled into the engine, re-exported so suites can
/// loop over the whole registry.
pub fn all() -> &'static [&'static str] {
    failpoint::ALL
}

/// Disarms every failpoint (belt-and-braces teardown for harnesses that
/// arm without the [`Fail`] guard, like the fuzzer).
pub fn disarm_all() {
    failpoint::disarm_all();
}

/// Serializes fault-injection tests: hold the returned guard for the
/// whole test body. Recovers from poisoning — a previous test failing
/// mid-injection must not wedge the rest of the suite.
pub fn serial() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = GATE
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    // A poisoned gate means a previous test died mid-injection; make
    // sure it didn't leave sites armed.
    disarm_all();
    guard
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_disarms_on_drop_even_on_unwind() {
        let _serial = serial();
        {
            let _fp = Fail::error(failpoint::EXEC_SCAN);
            assert!(failpoint::fire(failpoint::EXEC_SCAN).is_err());
        }
        assert!(failpoint::fire(failpoint::EXEC_SCAN).is_ok());

        let unwound = std::panic::catch_unwind(|| {
            let _fp = Fail::error(failpoint::EXEC_JOIN);
            panic!("test body failed");
        });
        assert!(unwound.is_err());
        assert!(failpoint::fire(failpoint::EXEC_JOIN).is_ok());
    }

    #[test]
    fn registry_is_nonempty_and_armable() {
        let _serial = serial();
        assert!(!all().is_empty());
        for name in all() {
            let _fp = Fail::error(name);
            assert!(failpoint::fire(name).is_err(), "{name} did not fire");
        }
        for name in all() {
            assert!(failpoint::fire(name).is_ok(), "{name} left armed");
        }
    }
}
