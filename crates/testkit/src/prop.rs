//! Minimal property-based testing: strategies, a deterministic runner, and
//! tape-based shrinking.
//!
//! Replaces the `proptest` dependency for this repository's suites. The
//! design follows Hypothesis rather than QuickCheck: every random draw a
//! strategy makes goes through a [`Gen`], which records the raw `u64`
//! choices on a *tape*. When a property fails, the runner shrinks the tape
//! (deleting chunks, binary-searching individual draws toward zero) and
//! replays the generator on the shrunk tape — so shrinking composes through
//! `map`, recursion and collections with no per-type shrink code. All draw
//! mappings are monotone, so smaller tape values mean simpler values.
//!
//! Knobs (environment variables):
//! - `TESTKIT_CASES`:   cases per property (default 64; `#[cases(n)]` in
//!   [`crate::props!`] overrides per test)
//! - `TESTKIT_SEED`:    base seed, for reproducing a reported failure
//! - `TESTKIT_SHRINKS`: shrink-attempt budget on failure (default 1500)

use crate::rng::{Rng, SplitMix64};
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Generation context
// ---------------------------------------------------------------------------

/// The source of randomness handed to strategies: either recording fresh
/// draws from an [`Rng`], or replaying a (possibly shrunk) tape. Reads past
/// the end of a replay tape return 0 — the "simplest" draw — which is what
/// makes tape truncation a valid shrink step.
pub struct Gen {
    mode: Mode,
    notes: Vec<String>,
    capture: bool,
}

enum Mode {
    Record { rng: Rng, tape: Vec<u64> },
    Replay { tape: Vec<u64>, pos: usize },
}

impl Gen {
    fn record(rng: Rng) -> Gen {
        Gen {
            mode: Mode::Record {
                rng,
                tape: Vec::new(),
            },
            notes: Vec::new(),
            capture: false,
        }
    }

    fn replay(tape: &[u64]) -> Gen {
        Gen {
            mode: Mode::Replay {
                tape: tape.to_vec(),
                pos: 0,
            },
            notes: Vec::new(),
            capture: false,
        }
    }

    fn into_tape(self) -> Vec<u64> {
        match self.mode {
            Mode::Record { tape, .. } => tape,
            Mode::Replay { tape, .. } => tape,
        }
    }

    /// One raw draw. Everything a strategy does reduces to this.
    pub fn next_u64(&mut self) -> u64 {
        match &mut self.mode {
            Mode::Record { rng, tape } => {
                let v = rng.next_u64();
                tape.push(v);
                v
            }
            Mode::Replay { tape, pos } => {
                let v = tape.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                v
            }
        }
    }

    /// Uniform in `[0, n)`, monotone in the underlying draw.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`, monotone in the underlying draw.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Records `name = value` for the failure report (used by [`crate::props!`];
    /// a no-op except on the final replay of a shrunk counterexample).
    pub fn note(&mut self, name: &str, value: &dyn Debug) {
        if self.capture {
            self.notes.push(format!("  {name} = {value:?}"));
        }
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type from a [`Gen`].
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, g: &mut Gen) -> Self::Value;

    /// Transforms generated values (the `prop_map` of this harness).
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases to a shared, clonable strategy handle.
    fn boxed(self) -> SBox<Self::Value>
    where
        Self: Sized + 'static,
    {
        Rc::new(self)
    }
}

/// A shared, type-erased strategy (clonable — recursion builds on this).
pub type SBox<T> = Rc<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for SBox<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        (**self).generate(g)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        (self.f)(self.inner.generate(g))
    }
}

/// Always produces a clone of one value.
pub struct Just<T: Clone + Debug>(pub T);

pub fn just<T: Clone + Debug>(v: T) -> Just<T> {
    Just(v)
}

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _g: &mut Gen) -> T {
        self.0.clone()
    }
}

// Integer and float ranges are strategies directly: `(0i64..100)`.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "strategy: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + g.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return g.next_u64() as $t;
                }
                (lo as i128 + g.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, g: &mut Gen) -> f64 {
        assert!(self.start < self.end, "strategy: empty range");
        let v = self.start + g.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Full-range `i64` (shrinks toward 0 via the tape).
pub fn any_i64() -> impl Strategy<Value = i64> {
    FromFn(|g: &mut Gen| g.next_u64() as i64)
}

pub fn any_bool() -> impl Strategy<Value = bool> {
    FromFn(|g: &mut Gen| g.below(2) == 1)
}

struct FromFn<F>(F);

impl<T: Debug, F: Fn(&mut Gen) -> T> Strategy for FromFn<F> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        (self.0)(g)
    }
}

// Tuples of strategies generate tuples of values.
macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, g: &mut Gen) -> Self::Value {
                ($(self.$idx.generate(g),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Uniform choice among alternatives (see the [`crate::one_of!`] macro). Earlier
/// alternatives are "simpler": the choice index shrinks toward 0.
pub struct Union<T> {
    options: Vec<SBox<T>>,
}

pub fn union<T: Debug>(options: Vec<SBox<T>>) -> Union<T> {
    assert!(!options.is_empty(), "union of zero strategies");
    Union { options }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        let i = g.below(self.options.len() as u64) as usize;
        self.options[i].generate(g)
    }
}

/// `Vec` of values with a length drawn from `len` (inclusive bounds).
pub fn vec_of<S: Strategy>(
    elem: S,
    len: core::ops::RangeInclusive<usize>,
) -> impl Strategy<Value = Vec<S::Value>> {
    let (lo, hi) = (*len.start(), *len.end());
    FromFn(move |g: &mut Gen| {
        let n = lo + g.below((hi - lo + 1) as u64) as usize;
        (0..n).map(|_| elem.generate(g)).collect()
    })
}

/// `Option` of a value; `None` (the simpler case) roughly a quarter of the
/// time, and under shrinking.
pub fn option_of<S: Strategy>(inner: S) -> impl Strategy<Value = Option<S::Value>> {
    FromFn(move |g: &mut Gen| {
        if g.below(4) == 0 {
            None
        } else {
            Some(inner.generate(g))
        }
    })
}

/// Strings over a fixed alphabet with length in `len` (inclusive).
pub fn string_of(
    alphabet: &str,
    len: core::ops::RangeInclusive<usize>,
) -> impl Strategy<Value = String> {
    let chars: Vec<char> = alphabet.chars().collect();
    assert!(!chars.is_empty(), "string_of: empty alphabet");
    let (lo, hi) = (*len.start(), *len.end());
    FromFn(move |g: &mut Gen| {
        let n = lo + g.below((hi - lo + 1) as u64) as usize;
        (0..n)
            .map(|_| chars[g.below(chars.len() as u64) as usize])
            .collect()
    })
}

pub const ALPHA_LOWER: &str = "abcdefghijklmnopqrstuvwxyz";

/// Adversarial strings for robustness properties: ASCII printables plus
/// quotes, escapes, control characters, NUL and multi-byte code points —
/// a superset of proptest's `\PC` class, on purpose (a parser that must
/// not panic should not panic on control bytes either).
pub fn adversarial_string(len: core::ops::RangeInclusive<usize>) -> impl Strategy<Value = String> {
    const EXTRA: &[char] = &[
        '\0', '\n', '\t', '\r', '\x07', '\x1b', '\'', '"', '`', '\\', '\u{80}', '\u{a0}', 'Å', 'ß',
        'Ω', '€', '語', '🦀', '\u{202e}', '\u{fffd}',
    ];
    let (lo, hi) = (*len.start(), *len.end());
    FromFn(move |g: &mut Gen| {
        let n = lo + g.below((hi - lo + 1) as u64) as usize;
        (0..n)
            .map(|_| {
                let k = g.below(100);
                if k < 85 {
                    // printable ASCII
                    char::from(b' ' + g.below(95) as u8)
                } else {
                    EXTRA[g.below(EXTRA.len() as u64) as usize]
                }
            })
            .collect()
    })
}

/// Bounded recursion: at each of `depth` levels, pick the leaf or one level
/// of `branch` applied to the strategy built so far (the `prop_recursive`
/// of this harness).
pub fn recursive<T: Debug + 'static>(
    leaf: SBox<T>,
    depth: usize,
    branch: impl Fn(SBox<T>) -> SBox<T>,
) -> SBox<T> {
    let mut cur = leaf.clone();
    for _ in 0..depth {
        let deeper = branch(cur);
        cur = union(vec![leaf.clone(), deeper]).boxed();
    }
    cur
}

/// Uniform choice among strategies producing the same type:
/// `one_of![just(1), 10i64..20, any_i64()]`. Put the simplest first — the
/// shrinker steers toward earlier alternatives.
#[macro_export]
macro_rules! one_of {
    ($($s:expr),+ $(,)?) => {
        $crate::prop::union(vec![$($crate::prop::Strategy::boxed($s)),+])
    };
}

// ---------------------------------------------------------------------------
// Runner + shrinking
// ---------------------------------------------------------------------------

const DEFAULT_CASES: u32 = 64;
const DEFAULT_SHRINK_BUDGET: u32 = 1500;

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|s| {
        let s = s.trim();
        s.strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16).ok())
            .unwrap_or_else(|| s.parse().ok())
    })
}

/// Outcome of a failed property run, for reporting (and for testing the
/// shrinker itself — see `tests/prop_shrink.rs`).
#[derive(Debug)]
pub struct Failure {
    pub case: u32,
    pub seed: u64,
    pub shrink_steps: u32,
    pub tape_len: usize,
    /// `name = value` lines captured by [`Gen::note`] on the minimal case.
    pub notes: Vec<String>,
    pub message: String,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `prop` while the default panic hook is silenced, so the dozens of
/// intentional panics during shrinking don't flood stderr. Serialized
/// through a global lock because the hook is process-wide.
fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    use std::sync::Mutex;
    static HOOK_LOCK: Mutex<()> = Mutex::new(());
    let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = f();
    let _ = std::panic::take_hook();
    std::panic::set_hook(prev);
    r
}

/// Deterministic base seed per property, so unrelated properties explore
/// different inputs but every run of one property explores the same ones.
fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Core runner. Returns the shrunk failure instead of panicking;
/// [`run`] is the panicking wrapper tests go through.
pub fn check(name: &str, cases: Option<u32>, prop: impl Fn(&mut Gen)) -> Result<(), Failure> {
    let cases = cases
        .or(env_u64("TESTKIT_CASES").map(|v| v as u32))
        .unwrap_or(DEFAULT_CASES);
    let seed = env_u64("TESTKIT_SEED").unwrap_or_else(|| seed_for(name));
    let budget = env_u64("TESTKIT_SHRINKS")
        .map(|v| v as u32)
        .unwrap_or(DEFAULT_SHRINK_BUDGET);
    let mut case_seeds = SplitMix64::new(seed);
    for case in 0..cases {
        let case_seed = case_seeds.next_u64();
        let mut g = Gen::record(Rng::seed_from_u64(case_seed));
        let failed = with_quiet_panics(|| catch_unwind(AssertUnwindSafe(|| prop(&mut g))).is_err());
        if failed {
            let tape = g.into_tape();
            return Err(with_quiet_panics(|| {
                let (tape, shrink_steps) = shrink(tape, budget, &prop);
                // final replay: capture the argument notes and the message
                let mut g = Gen::replay(&tape);
                g.capture = true;
                let message = match catch_unwind(AssertUnwindSafe(|| prop(&mut g))) {
                    Err(payload) => panic_message(payload),
                    // shrinking is best-effort; flaky properties may pass on
                    // the confirming replay — still report the original case
                    Ok(()) => "<failure did not reproduce on replay — flaky property?>".to_string(),
                };
                Failure {
                    case,
                    seed,
                    shrink_steps,
                    tape_len: tape.len(),
                    notes: std::mem::take(&mut g.notes),
                    message,
                }
            }));
        }
    }
    Ok(())
}

/// Panicking wrapper around [`check`], with a reproduction recipe in the
/// failure text. This is what the [`crate::props!`] macro calls.
pub fn run(name: &str, cases: Option<u32>, prop: impl Fn(&mut Gen)) {
    if let Err(f) = check(name, cases, prop) {
        panic!(
            "[testkit] property `{name}` failed on case {case} (base seed {seed:#018x})\n\
             minimal counterexample after {steps} shrink step(s) ({len} draws):\n\
             {notes}\n  panic: {msg}\n\
             reproduce with: TESTKIT_SEED={seed:#x} cargo test {short}\n",
            case = f.case,
            seed = f.seed,
            steps = f.shrink_steps,
            len = f.tape_len,
            notes = f.notes.join("\n"),
            msg = f.message,
            short = name.rsplit("::").next().unwrap_or(name),
        );
    }
}

fn fails(tape: &[u64], prop: &impl Fn(&mut Gen)) -> bool {
    let mut g = Gen::replay(tape);
    catch_unwind(AssertUnwindSafe(|| prop(&mut g))).is_err()
}

/// Tape shrinking: (1) delete chunks, halving the chunk size, which both
/// shortens collections and simplifies recursive structures; (2) binary-
/// search each surviving draw toward 0. Every candidate is re-run; a
/// candidate is kept only if the property still fails.
fn shrink(mut tape: Vec<u64>, budget: u32, prop: &impl Fn(&mut Gen)) -> (Vec<u64>, u32) {
    let mut attempts = 0u32;
    let mut steps = 0u32;

    // Pass 1: chunk deletion.
    let mut chunk = tape.len().max(1);
    while chunk >= 1 {
        let mut start = 0;
        while start + chunk <= tape.len() && attempts < budget {
            let mut candidate = Vec::with_capacity(tape.len() - chunk);
            candidate.extend_from_slice(&tape[..start]);
            candidate.extend_from_slice(&tape[start + chunk..]);
            attempts += 1;
            if fails(&candidate, prop) {
                tape = candidate;
                steps += 1;
                // same start now names the next chunk — retry in place
            } else {
                start += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // Pass 2: per-draw value minimization, left to right, to fixpoint.
    loop {
        let mut improved = false;
        for i in 0..tape.len() {
            if tape[i] == 0 || attempts >= budget {
                continue;
            }
            let original = tape[i];
            tape[i] = 0;
            attempts += 1;
            if fails(&tape, prop) {
                steps += 1;
                improved = true;
                continue;
            }
            // binary search the smallest failing value: lo passes, hi fails
            let (mut lo, mut hi) = (0u64, original);
            while lo + 1 < hi && attempts < budget {
                let mid = lo + (hi - lo) / 2;
                tape[i] = mid;
                attempts += 1;
                if fails(&tape, prop) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            tape[i] = hi;
            if hi != original {
                steps += 1;
                improved = true;
            }
        }
        if !improved || attempts >= budget {
            break;
        }
    }
    (tape, steps)
}

/// Declares property tests. Each `fn` becomes a `#[test]`; arguments are
/// drawn from the strategy after `in`, and use plain `assert!`-family
/// macros in the body. An optional `#[cases(N)]` overrides the per-test
/// case count.
///
/// ```
/// use cbqt_testkit::{props, one_of};
/// use cbqt_testkit::prop::{Strategy, vec_of};
///
/// props! {
///     fn addition_commutes(a in -100i64..100, b in -100i64..100) {
///         assert_eq!(a + b, b + a);
///     }
///
///     #[cases(16)]
///     fn sum_of_small_vec_is_bounded(v in vec_of(0i64..10, 0..=5)) {
///         assert!(v.iter().sum::<i64>() < 50);
///     }
/// }
/// # fn main() {}
/// ```
#[macro_export]
macro_rules! props {
    () => {};
    (#[cases($n:expr)] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        #[test]
        fn $name() {
            $crate::prop::run(concat!(module_path!(), "::", stringify!($name)), Some($n), |g| {
                $(
                    let $arg = $crate::prop::Strategy::generate(&($strat), g);
                    g.note(stringify!($arg), &$arg);
                )+
                $body
            });
        }
        $crate::props! { $($rest)* }
    };
    (fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        #[test]
        fn $name() {
            $crate::prop::run(concat!(module_path!(), "::", stringify!($name)), None, |g| {
                $(
                    let $arg = $crate::prop::Strategy::generate(&($strat), g);
                    g.note(stringify!($arg), &$arg);
                )+
                $body
            });
        }
        $crate::props! { $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        assert!(check("t::pass", Some(200), |g| {
            let v = (0i64..100).generate(g);
            assert!((0..100).contains(&v));
        })
        .is_ok());
    }

    #[test]
    fn union_covers_all_alternatives() {
        let s = one_of![just(1i64), just(2i64), just(3i64)];
        let seen = std::cell::RefCell::new(std::collections::HashSet::new());
        let _ = check("t::union", Some(200), |g| {
            seen.borrow_mut().insert(s.generate(g));
        });
        assert_eq!(seen.borrow().len(), 3);
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        assert!(check("t::vec", Some(200), |g| {
            let v = vec_of(0i64..5, 2..=6).generate(g);
            assert!((2..=6).contains(&v.len()));
        })
        .is_ok());
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = recursive(just(T::Leaf).boxed(), 3, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
                .boxed()
        });
        assert!(check("t::rec", Some(300), |g| {
            let t = strat.generate(g);
            assert!(depth(&t) <= 3);
        })
        .is_ok());
    }

    #[test]
    fn failure_reports_seed_and_shrinks() {
        let f = check("t::fail", Some(500), |g| {
            let v = (0i64..1000).generate(g);
            g.note("v", &v);
            assert!(v < 500, "too big");
        })
        .expect_err("property must fail");
        assert!(f.message.contains("too big"), "message: {}", f.message);
        // the shrunk counterexample must be the boundary value
        assert_eq!(f.notes, vec!["  v = 500".to_string()]);
    }
}
