//! Minimal benchmark harness replacing the `criterion` dependency for the
//! seven harness-false benches under `crates/bench/benches/`.
//!
//! The API intentionally mirrors the criterion subset those benches used
//! (`benchmark_group` / `sample_size` / `bench_function` / `iter`), so the
//! migration is mechanical. Each bench function:
//!
//! 1. warms up (`TESTKIT_BENCH_WARMUP` invocations, default 3), then
//! 2. times `sample_size` invocations individually
//!    (`TESTKIT_BENCH_SAMPLES` overrides, e.g. `=2` for a CI smoke run),
//! 3. prints one machine-readable JSON line to **stdout** (so future
//!    `BENCH_*.json` trajectories can be captured by piping stdout) and a
//!    human-readable summary line to **stderr**. When `TESTKIT_BENCH_JSON`
//!    names a file, the same JSON line is also appended there, so CI can
//!    collect every bench target's results into one
//!    `target/bench_results.json` regardless of how stdout is interleaved.

use std::io::Write;
use std::time::Instant;

pub use std::hint::black_box;

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|s| s.trim().parse().ok())
}

/// Top-level harness handed to each registered bench function by
/// [`bench_main!`](crate::bench_main).
pub struct Harness {
    samples_override: Option<usize>,
    warmup: usize,
}

impl Harness {
    pub fn from_env() -> Harness {
        Harness {
            samples_override: env_usize("TESTKIT_BENCH_SAMPLES"),
            warmup: env_usize("TESTKIT_BENCH_WARMUP").unwrap_or(3),
        }
    }

    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    pub fn finish(self) {}
}

/// A named group of related measurements (one figure or table).
pub struct Group<'a> {
    harness: &'a Harness,
    name: String,
    sample_size: usize,
}

impl Group<'_> {
    /// Default number of timed samples per bench (env override wins).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let samples = self
            .harness
            .samples_override
            .unwrap_or(self.sample_size)
            .max(1);
        let mut b = Bencher {
            samples,
            warmup: self.harness.warmup,
            times_ns: Vec::new(),
        };
        f(&mut b);
        b.report(&self.name, id);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the bench closure; `iter` performs the measurement.
pub struct Bencher {
    samples: usize,
    warmup: usize,
    times_ns: Vec<u64>,
}

impl Bencher {
    /// Times `routine`, one sample per invocation. The return value is
    /// passed through [`black_box`] so the work is not optimized away.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        for _ in 0..self.warmup {
            black_box(routine());
        }
        self.times_ns.clear();
        self.times_ns.reserve(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.times_ns.push(t0.elapsed().as_nanos() as u64);
        }
    }

    fn report(&self, group: &str, id: &str) {
        let mut sorted = self.times_ns.clone();
        if sorted.is_empty() {
            eprintln!("{group}/{id}: bench closure never called iter()");
            return;
        }
        sorted.sort_unstable();
        let n = sorted.len();
        let min = sorted[0];
        let max = sorted[n - 1];
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2
        };
        let p95 = sorted[(((n as f64) * 0.95).ceil() as usize).clamp(1, n) - 1];
        let mean = sorted.iter().sum::<u64>() / n as u64;
        let json = format!(
            "{{\"type\":\"bench\",\"group\":\"{group}\",\"bench\":\"{id}\",\
             \"samples\":{n},\"min_ns\":{min},\"median_ns\":{median},\
             \"mean_ns\":{mean},\"p95_ns\":{p95},\"max_ns\":{max}}}"
        );
        println!("{json}");
        if let Ok(path) = std::env::var("TESTKIT_BENCH_JSON") {
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| writeln!(f, "{json}"));
            if let Err(e) = appended {
                eprintln!("TESTKIT_BENCH_JSON: cannot append to {path}: {e}");
            }
        }
        eprintln!(
            "{group}/{id}: median {} p95 {} ({n} samples)",
            fmt_ns(median),
            fmt_ns(p95)
        );
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Entry point for a harness-false bench target: takes the bench functions
/// (`fn(&mut Harness)`) to run, replacing criterion's
/// `criterion_group!` + `criterion_main!` pair.
#[macro_export]
macro_rules! bench_main {
    ($($f:path),+ $(,)?) => {
        fn main() {
            let mut harness = $crate::bench::Harness::from_env();
            $($f(&mut harness);)+
            harness.finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_computed_over_requested_samples() {
        let mut h = Harness {
            samples_override: None,
            warmup: 1,
        };
        let mut ran = 0usize;
        {
            let mut g = h.benchmark_group("g");
            g.sample_size(5);
            g.bench_function("b", |b| {
                b.iter(|| {
                    ran += 1;
                    std::hint::black_box(3 * 7)
                })
            });
            g.finish();
        }
        // 1 warmup + 5 samples
        assert_eq!(ran, 6);
    }

    #[test]
    fn env_override_shrinks_sample_count() {
        let mut h = Harness {
            samples_override: Some(2),
            warmup: 0,
        };
        let mut ran = 0usize;
        let mut g = h.benchmark_group("g");
        g.sample_size(50);
        g.bench_function("b", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert_eq!(ran, 2);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
