//! Seedable, portable PRNG: SplitMix64 for seeding and stream splitting,
//! xoshiro256** for the main generator.
//!
//! The sequence produced for a given seed is part of the repository's
//! compatibility surface: workload generators, the differential fuzzer and
//! recorded experiment trajectories all assume that seed `S` produces the
//! same database on every platform and toolchain. Golden-value tests in
//! `tests/golden_rng.rs` pin the first outputs for several seeds; do not
//! change the algorithms here without updating every recorded artifact.

/// SplitMix64 (Steele, Lea, Flood 2014). Used to expand a 64-bit seed into
/// xoshiro state and to derive independent per-case seeds in the property
/// harness.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 (Blackman, Vigna 2018), seeded via SplitMix64.
///
/// The method surface mirrors the subset of `rand::Rng` the repository
/// used before the hermetic-build migration: `gen_range` over integer and
/// float ranges, `gen_bool`, plus raw `next_u64`/`gen_f64`.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Builds a generator whose 256-bit state is expanded from `seed` with
    /// SplitMix64 — the seeding scheme recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`. Panics if `p` is outside `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        self.gen_f64() < p
    }

    /// Uniform in `[0, n)` via the multiply-shift reduction (Lemire); the
    /// bias is below `n / 2^64`, far past what any test here can observe.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform over an integer or float range, `rand`-style:
    /// `rng.gen_range(0..10)`, `rng.gen_range(1..=6)`, `rng.gen_range(0.0..1.0)`.
    ///
    /// Like `rand`, the trait is generic over the element type `T` (not an
    /// associated type) so the surrounding context can pin the type of an
    /// unsuffixed literal range: `v.get(rng.gen_range(0..5))` infers `usize`.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // the full 2^64-value range of a 64-bit type
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + rng.gen_f64() * (self.end - self.start);
        // floating-point rounding may land exactly on `end`; clamp back in
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn range_bounds_hold() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(-7i64..13);
            assert!((-7..13).contains(&v));
            let w = r.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let f = r.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn full_inclusive_range_is_supported() {
        let mut r = Rng::seed_from_u64(4);
        // must not panic on span overflow
        let _ = r.gen_range(i64::MIN..=i64::MAX);
        let _ = r.gen_range(u64::MIN..=u64::MAX);
    }

    #[test]
    fn gen_bool_edges() {
        let mut r = Rng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut r = Rng::seed_from_u64(6);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((4000..6000).contains(&hits), "hits={hits}");
    }
}
