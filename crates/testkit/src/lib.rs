//! In-tree test infrastructure for the cbqt workspace — the hermetic
//! replacement for the `rand`, `proptest` and `criterion` dependencies.
//!
//! Three modules:
//! - [`rng`]: seedable SplitMix64 / xoshiro256** PRNG with the
//!   `gen_range` / `gen_bool` surface the data and workload generators
//!   use; golden-value tests pin its output per seed across platforms.
//! - [`prop`]: property-based testing with tape-based shrinking (see the
//!   [`props!`] macro).
//! - [`mod@bench`]: a criterion-shaped benchmark harness that emits JSON
//!   lines to stdout (see the [`bench_main!`] macro).
//! - [`failpoints`]: the fault-injection harness arming the engine's
//!   compiled-in `failpoint!` sites (see `cbqt_common::failpoint`).
//!
//! This crate must never grow an *external* dependency — the CI
//! hermeticity guard (`ci/check_hermetic.sh`) fails the build if any
//! crate in the workspace resolves a registry or git dependency. Its
//! only dependency is the in-tree `cbqt-common`, which itself depends
//! on nothing.

pub mod bench;
pub mod failpoints;
pub mod prop;
pub mod rng;

pub use rng::{Rng, SplitMix64};
