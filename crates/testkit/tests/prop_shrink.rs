//! Integration tests of the property harness: a seeded failing property
//! must shrink to a minimal counterexample, and the runner must be
//! deterministic and reproducible via `TESTKIT_SEED`-style seeds.

use cbqt_testkit::prop::{check, vec_of, Strategy};
use std::cell::RefCell;

#[test]
fn failing_scalar_shrinks_to_boundary() {
    // property: x < 750 over x in [0, 10000) — minimal counterexample 750
    let f = check("shrink::scalar", Some(300), |g| {
        let x = (0i64..10_000).generate(g);
        g.note("x", &x);
        assert!(x < 750, "x exceeded bound");
    })
    .expect_err("must fail");
    assert_eq!(
        f.notes,
        vec!["  x = 750".to_string()],
        "shrunk to the exact boundary"
    );
    assert!(f.shrink_steps > 0, "shrinking must have made progress");
    assert!(f.message.contains("x exceeded bound"));
}

#[test]
fn failing_vec_shrinks_to_minimal_witness() {
    // property: no vector contains an element >= 100. The minimal
    // counterexample is a single-element vector [100].
    let f = check("shrink::vec", Some(300), |g| {
        let v = vec_of(0i64..1000, 0..=20).generate(g);
        g.note("v", &v);
        assert!(v.iter().all(|&x| x < 100), "element out of range");
    })
    .expect_err("must fail");
    assert_eq!(
        f.notes,
        vec!["  v = [100]".to_string()],
        "minimal witness is [100]"
    );
}

#[test]
fn failure_case_and_tape_are_deterministic() {
    let run = || {
        check("shrink::det", Some(200), |g| {
            let x = (0i64..100_000).generate(g);
            let y = (0i64..100_000).generate(g);
            assert!(x + y < 120_000);
        })
        .expect_err("must fail")
    };
    let a = run();
    let b = run();
    assert_eq!(a.case, b.case);
    assert_eq!(a.seed, b.seed);
    assert_eq!(a.tape_len, b.tape_len);
    assert_eq!(a.notes, b.notes);
}

#[test]
fn passing_property_runs_requested_cases() {
    let count = RefCell::new(0u32);
    check("shrink::count", Some(37), |g| {
        let _ = (0i64..10).generate(g);
        *count.borrow_mut() += 1;
    })
    .expect("must pass");
    assert_eq!(*count.borrow(), 37);
}
