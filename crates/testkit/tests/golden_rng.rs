//! Golden-value tests pinning the PRNG output per seed.
//!
//! These sequences are part of the repository's compatibility surface:
//! workload seeds, fuzz seeds and recorded experiment trajectories all
//! assume seed `S` produces identical data on every platform/toolchain.
//! If any of these tests fail, the PRNG changed — which silently
//! invalidates every recorded benchmark and regression seed.
//!
//! Cross-checks: the SplitMix64 values for seeds 0 and 1 match the
//! published reference implementation (Steele et al.), and the
//! xoshiro256** value for seed 0 matches the de-facto reference of
//! SplitMix64-expanded seeding (first output `0x99ec5f36cb75f2b4`).

use cbqt_testkit::{Rng, SplitMix64};

#[test]
fn splitmix64_reference_vectors() {
    let mut sm = SplitMix64::new(0);
    assert_eq!(sm.next_u64(), 0xe220_a839_7b1d_cdaf);
    assert_eq!(sm.next_u64(), 0x6e78_9e6a_a1b9_65f4);
    assert_eq!(sm.next_u64(), 0x06c4_5d18_8009_454f);
    assert_eq!(sm.next_u64(), 0xf88b_b8a8_724c_81ec);

    let mut sm = SplitMix64::new(1);
    assert_eq!(sm.next_u64(), 0x910a_2dec_8902_5cc1);
    assert_eq!(sm.next_u64(), 0xbeeb_8da1_658e_ec67);
}

#[test]
fn xoshiro256ss_seed0_reference() {
    let mut r = Rng::seed_from_u64(0);
    assert_eq!(r.next_u64(), 0x99ec_5f36_cb75_f2b4);
    assert_eq!(r.next_u64(), 0xbf6e_1f78_4956_452a);
    assert_eq!(r.next_u64(), 0x1a5f_849d_4933_e6e0);
    assert_eq!(r.next_u64(), 0x6aa5_94f1_262d_2d2c);
}

#[test]
fn xoshiro256ss_golden_seeds() {
    let mut r = Rng::seed_from_u64(1);
    assert_eq!(r.next_u64(), 0xb3f2_af6d_0fc7_10c5);
    assert_eq!(r.next_u64(), 0x853b_5596_4736_4cea);

    let mut r = Rng::seed_from_u64(42);
    assert_eq!(r.next_u64(), 0x1578_0b2e_0c2e_c716);
    assert_eq!(r.next_u64(), 0x6104_d986_6d11_3a7e);

    let mut r = Rng::seed_from_u64(0xDEAD_BEEF);
    assert_eq!(r.next_u64(), 0xc555_5444_a74d_7e83);
    assert_eq!(r.next_u64(), 0x65c3_0d37_b4b1_6e38);
}

#[test]
fn gen_range_golden_sequence() {
    // pins the multiply-shift range reduction, not just the raw stream
    let mut r = Rng::seed_from_u64(0);
    let ints: Vec<i64> = (0..8).map(|_| r.gen_range(0i64..1000)).collect();
    assert_eq!(ints, vec![601, 747, 103, 416, 732, 999, 422, 535]);
    let bools: Vec<bool> = (0..6).map(|_| r.gen_bool(0.5)).collect();
    assert_eq!(bools, vec![false, false, true, true, true, false]);

    let mut r = Rng::seed_from_u64(42);
    let ints: Vec<i64> = (0..8).map(|_| r.gen_range(0i64..1000)).collect();
    assert_eq!(ints, vec![83, 378, 680, 924, 991, 769, 719, 850]);
}

#[test]
fn gen_f64_golden_sequence() {
    let mut r = Rng::seed_from_u64(1);
    // 53-bit mantissa conversion is exact; compare decimal renderings to
    // keep the expectation readable
    let f: Vec<String> = (0..4).map(|_| format!("{:.6}", r.gen_f64())).collect();
    assert_eq!(f, vec!["0.702922", "0.520437", "0.574106", "0.391329"]);
}
