//! The cost-based transformation framework (§3).
//!
//! Transformations are applied **sequentially** in the paper's order
//! (§3.1): each transformation enumerates a state space over its targets
//! in the current query tree, costs candidate states on *deep copies* of
//! the tree with the physical optimizer, and the winning state is
//! applied to the main tree before the next transformation runs.
//!
//! State-space machinery (§3.2):
//! * a state is a vector of per-target choices (bits generalized to
//!   small arities so juxtaposed alternatives fit, §3.3.2/§3.3.3);
//! * four search strategies — exhaustive (2^N), iterative improvement,
//!   linear (N+1), two-pass (2) — with automatic selection based on the
//!   number of transformation objects;
//! * interleaving (§3.3.1): when unnesting creates a view, the merge of
//!   that view is evaluated *within* the same state, so "unnest + merge"
//!   can win even when "unnest" alone loses;
//! * cost annotations are shared across all states (§3.4.2) and the best
//!   cost so far is passed as a cut-off budget (§3.4.1).

use crate::costbased::view_transform::{can_merge_view, merge_view};
use crate::costbased::{default_transforms, ApplyEffect, CbTransform, Target};
use crate::heuristic::{apply_heuristics_with, HeuristicReport};
use cbqt_catalog::Catalog;
use cbqt_common::{cost_lt, Error, Governor, Result, StateCharge, TraceEvent, Tracer};
use cbqt_optimizer::{
    is_cutoff, BlockPlan, CostAnnotations, DynamicSampler, Optimizer, OptimizerConfig,
    OptimizerStats, SamplingCache,
};
use cbqt_qgm::{render, QTableSource, QueryTree};

/// Search strategies of §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Pick automatically from the object counts (the paper's default).
    Auto,
    /// All states of the space.
    Exhaustive,
    /// Iterative improvement: random restarts + greedy descent.
    Iterative,
    /// Linear: fix one coordinate at a time (N+1 states).
    Linear,
    /// Two states: nothing transformed vs. everything transformed.
    TwoPass,
}

/// Which transformations are enabled — used by the experiments to turn
/// individual transformations off or force heuristic behaviour.
#[derive(Debug, Clone)]
pub struct TransformSet {
    pub unnest: bool,
    pub view_merge: bool,
    /// Join predicate pushdown (disable independently of view merging —
    /// the paper's Figure 4 experiment).
    pub jppd: bool,
    pub setop_to_join: bool,
    pub group_by_placement: bool,
    pub predicate_pullup: bool,
    pub join_factorization: bool,
    pub or_expansion: bool,
}

impl Default for TransformSet {
    fn default() -> Self {
        TransformSet {
            unnest: true,
            view_merge: true,
            jppd: true,
            setop_to_join: true,
            group_by_placement: true,
            predicate_pullup: true,
            join_factorization: true,
            or_expansion: true,
        }
    }
}

impl TransformSet {
    fn enabled(&self, name: &str) -> bool {
        match name {
            "subquery unnesting (inline view)" => self.unnest,
            "view merging / join predicate pushdown" => self.view_merge || self.jppd,
            "MINUS/INTERSECT into join" => self.setop_to_join,
            "group-by placement" => self.group_by_placement,
            "predicate pullup" => self.predicate_pullup,
            "join factorization" => self.join_factorization,
            "disjunction into UNION ALL" => self.or_expansion,
            _ => true,
        }
    }
}

/// Framework configuration.
#[derive(Debug, Clone)]
pub struct CbqtConfig {
    /// Master switch: `false` = heuristic-only mode. Cost-based
    /// transformations are then applied by fixed rules (the pre-10g
    /// behaviour the paper compares against in §4.1).
    pub cost_based: bool,
    pub search: SearchStrategy,
    /// Per-transformation: up to this many targets → exhaustive search.
    pub exhaustive_threshold: usize,
    /// Per-transformation: above the exhaustive threshold and up to this
    /// many targets → linear; beyond → two-pass for everything.
    pub linear_threshold: usize,
    /// Total targets in the whole query beyond which every
    /// transformation uses two-pass (§3.2).
    pub total_two_pass_threshold: usize,
    /// Enable §3.3.1 interleaving of unnesting with view merging.
    pub interleave: bool,
    /// Heuristic unnesting-by-merging (§2.1.1). Disabled together with
    /// `transforms.unnest` to reproduce the paper's "unnesting completely
    /// disabled" baseline (Figure 3).
    pub heuristic_unnest_merge: bool,
    /// §3.4.1 cost cut-off during state evaluation.
    pub cost_cutoff: bool,
    pub transforms: TransformSet,
    pub optimizer: OptimizerConfig,
    /// Iterative improvement: number of restarts.
    pub iterative_restarts: usize,
    /// Iterative improvement: max states explored.
    pub iterative_max_states: usize,
}

impl Default for CbqtConfig {
    fn default() -> Self {
        CbqtConfig {
            cost_based: true,
            search: SearchStrategy::Auto,
            exhaustive_threshold: 5,
            linear_threshold: 12,
            total_two_pass_threshold: 16,
            interleave: true,
            heuristic_unnest_merge: true,
            cost_cutoff: true,
            transforms: TransformSet::default(),
            optimizer: OptimizerConfig::default(),
            iterative_restarts: 3,
            iterative_max_states: 24,
        }
    }
}

/// Result of the full optimization: the transformed tree, its physical
/// plan, and bookkeeping for the experiments.
#[derive(Debug)]
pub struct CbqtOutcome {
    pub tree: QueryTree,
    pub plan: BlockPlan,
    pub heuristics: HeuristicReport,
    /// `(transformation name, human-readable decision)` log.
    pub decisions: Vec<(String, String)>,
    /// States costed across all cost-based transformations.
    pub states_explored: u64,
    /// §3.4.1 cost cut-offs taken while costing states.
    pub cutoffs: u64,
    pub optimizer_stats: OptimizerStats,
    /// True when the statement's optimizer-state budget ran out
    /// mid-search: the plan is valid and executable but reflects the
    /// best state found before the budget tripped, not the full search.
    pub degraded: bool,
}

/// Runs the full pipeline: heuristic transformations, then each
/// cost-based transformation over its state space, then final physical
/// optimization.
pub fn optimize_query(
    tree: &QueryTree,
    catalog: &Catalog,
    config: &CbqtConfig,
    sampling_cache: &SamplingCache,
) -> Result<CbqtOutcome> {
    optimize_query_with_sampler(tree, catalog, config, sampling_cache, None)
}

/// [`optimize_query`] with a dynamic sampler for tables without
/// statistics (§3.4.4); sampling results are cached in `sampling_cache`
/// across states and across queries.
pub fn optimize_query_with_sampler(
    tree: &QueryTree,
    catalog: &Catalog,
    config: &CbqtConfig,
    sampling_cache: &SamplingCache,
    sampler: Option<&dyn DynamicSampler>,
) -> Result<CbqtOutcome> {
    optimize_query_traced(
        tree,
        catalog,
        config,
        sampling_cache,
        sampler,
        Tracer::disabled(),
    )
}

/// [`optimize_query_with_sampler`] with an optimizer trace: every
/// transformation examined, state costed, cut-off taken and annotation
/// hit/miss is emitted into `tracer`, plus the before/after rendered SQL
/// of the winning states. With `Tracer::disabled()` (what the plain
/// entry points pass) no event is ever constructed.
pub fn optimize_query_traced(
    tree: &QueryTree,
    catalog: &Catalog,
    config: &CbqtConfig,
    sampling_cache: &SamplingCache,
    sampler: Option<&dyn DynamicSampler>,
    tracer: Tracer<'_>,
) -> Result<CbqtOutcome> {
    optimize_query_governed(
        tree,
        catalog,
        config,
        sampling_cache,
        sampler,
        tracer,
        &Governor::unlimited(),
    )
}

/// [`optimize_query_traced`] under a statement-level resource
/// [`Governor`]. Cancellation and the wall-clock deadline are observed
/// between and inside state costings (hard failure); exhausting the
/// optimizer-state budget *degrades* the search instead — remaining
/// states are skipped, the best state found so far wins, and the
/// outcome is flagged [`CbqtOutcome::degraded`].
pub fn optimize_query_governed(
    tree: &QueryTree,
    catalog: &Catalog,
    config: &CbqtConfig,
    sampling_cache: &SamplingCache,
    sampler: Option<&dyn DynamicSampler>,
    tracer: Tracer<'_>,
    governor: &Governor,
) -> Result<CbqtOutcome> {
    let before_sql = if tracer.enabled() {
        render::render_tree(tree, catalog)
    } else {
        String::new()
    };
    let mut tree = tree.clone();
    let heuristics = apply_heuristics_with(&mut tree, catalog, config.heuristic_unnest_merge)?;
    tracer.emit(|| TraceEvent::Heuristics {
        summary: heuristics.summary(),
    });

    let mut annotations = CostAnnotations::new();
    let mut states_explored = 0u64;
    let mut cutoffs = 0u64;
    let mut decisions: Vec<(String, String)> = Vec::new();
    let mut opt_stats = OptimizerStats::default();

    let transforms = default_transforms();
    for t in &transforms {
        if !config.transforms.enabled(t.name()) {
            continue;
        }
        if config.cost_based {
            let session = TransformSession {
                catalog,
                config,
                annotations: &mut annotations,
                sampling_cache,
                sampler,
                states: &mut states_explored,
                cutoffs: &mut cutoffs,
                stats: &mut opt_stats,
                tracer,
                governor,
            };
            let decision = session.run(&mut tree, t.as_ref())?;
            if let Some(d) = decision {
                decisions.push((t.name().to_string(), d));
            }
            // transformations can expose heuristic work (e.g. SPJ views
            // from set-op conversion) — §3.1
            apply_heuristics_with(&mut tree, catalog, config.heuristic_unnest_merge)?;
        } else {
            let applied = apply_heuristic_rule(&mut tree, catalog, t.as_ref())?;
            if applied > 0 {
                decisions.push((
                    t.name().to_string(),
                    format!("applied by heuristic rule on {applied} object(s)"),
                ));
                apply_heuristics_with(&mut tree, catalog, config.heuristic_unnest_merge)?;
            }
        }
    }

    // final physical optimization of the winning tree; this always runs
    // (even when the search degraded) so the statement gets a valid,
    // executable plan. The governor's interrupts still apply inside.
    let mut opt = Optimizer::new(catalog, &mut annotations, sampling_cache);
    opt.sampler = sampler;
    opt.config = config.optimizer.clone();
    opt.tracer = tracer;
    opt.governor = governor.clone();
    let plan = opt.optimize(&tree, None)?;
    opt_stats.blocks_costed += opt.stats.blocks_costed;
    opt_stats.annotation_hits += opt.stats.annotation_hits;
    tracer.emit(|| TraceEvent::QueryRewritten {
        before: before_sql,
        after: render::render_tree(&tree, catalog),
    });
    tracer.emit(|| TraceEvent::FinalPlan {
        cost: plan.cost,
        est_rows: plan.rows,
    });
    Ok(CbqtOutcome {
        tree,
        plan,
        heuristics,
        decisions,
        states_explored,
        cutoffs,
        optimizer_stats: opt_stats,
        degraded: governor.optimizer_exhausted(),
    })
}

/// Heuristic-mode stand-in for the cost-based decisions (§4.1 compares
/// against this): unnesting always fires unless the pre-10g index rule
/// says otherwise; view merging always fires; the rest never fire
/// (group-by placement "is never applied using heuristics").
fn apply_heuristic_rule(
    tree: &mut QueryTree,
    catalog: &Catalog,
    t: &dyn CbTransform,
) -> Result<usize> {
    let mut applied = 0;
    match t.name() {
        "subquery unnesting (inline view)" => loop {
            let targets = t.find_targets(tree, catalog);
            let Some(target) = targets.into_iter().find(|tg| {
                let Target::Subquery { block, subq } = tg else {
                    return false;
                };
                crate::costbased::unnest_view::heuristic_would_unnest(tree, catalog, *block, *subq)
            }) else {
                return Ok(applied);
            };
            t.apply(tree, catalog, &target, 1)?;
            applied += 1;
        },
        "view merging / join predicate pushdown" => loop {
            // heuristic: always merge; never JPPD (the paper introduces
            // JPPD as a cost-based-only transformation)
            let targets = t.find_targets(tree, catalog);
            let Some(target) = targets.into_iter().find(|tg| {
                matches!(
                    tg,
                    Target::View {
                        can_merge: true,
                        ..
                    }
                )
            }) else {
                return Ok(applied);
            };
            t.apply(tree, catalog, &target, 1)?;
            applied += 1;
        },
        _ => Ok(applied),
    }
}

struct TransformSession<'a> {
    catalog: &'a Catalog,
    config: &'a CbqtConfig,
    annotations: &'a mut CostAnnotations,
    sampling_cache: &'a SamplingCache,
    sampler: Option<&'a dyn DynamicSampler>,
    states: &'a mut u64,
    cutoffs: &'a mut u64,
    stats: &'a mut OptimizerStats,
    tracer: Tracer<'a>,
    governor: &'a Governor,
}

impl<'a> TransformSession<'a> {
    /// Runs one cost-based transformation over its state space on `tree`,
    /// applying the winning state in place. Returns a decision string if
    /// the transformation had targets.
    fn run(mut self, tree: &mut QueryTree, t: &dyn CbTransform) -> Result<Option<String>> {
        let mut targets = t.find_targets(tree, self.catalog);
        // the split view-merge / JPPD switches restrict the juxtaposed
        // alternatives of view targets
        if t.name() == "view merging / join predicate pushdown" {
            let set = &self.config.transforms;
            targets = targets
                .into_iter()
                .filter_map(|tg| match tg {
                    Target::View {
                        block,
                        view_ref,
                        can_merge,
                        can_jppd,
                    } => {
                        let m = can_merge && set.view_merge;
                        let j = can_jppd && set.jppd;
                        if m || j {
                            Some(Target::View {
                                block,
                                view_ref,
                                can_merge: m,
                                can_jppd: j,
                            })
                        } else {
                            None
                        }
                    }
                    other => Some(other),
                })
                .collect();
        }
        if targets.is_empty() {
            return Ok(None);
        }
        let arities: Vec<usize> = targets.iter().map(|tg| t.arity(tg)).collect();
        let strategy = self.pick_strategy(tree, t, targets.len());
        self.tracer.emit(|| TraceEvent::TransformBegin {
            transform: t.name().to_string(),
            targets: targets.len(),
            strategy: format!("{strategy:?}"),
        });
        let space = StateSpace { arities: &arities };

        let mut best_state = vec![0usize; targets.len()];
        let mut best_sub: Vec<bool> = Vec::new();
        let mut best_cost = f64::INFINITY;

        let evaluate = |state: &[usize],
                        session: &mut TransformSession<'_>,
                        best_cost: f64|
         -> Result<Option<(f64, Vec<bool>)>> {
            session.cost_state(tree, t, &targets, state, best_cost)
        };

        match strategy {
            SearchStrategy::Exhaustive => {
                for state in space.all_states() {
                    if let Some((cost, sub)) = evaluate(&state, &mut self, best_cost)? {
                        if cost_lt(cost, best_cost) {
                            best_cost = cost;
                            best_state = state;
                            best_sub = sub;
                        }
                    }
                }
            }
            SearchStrategy::TwoPass => {
                for state in [space.zero_state(), space.one_state()] {
                    if let Some((cost, sub)) = evaluate(&state, &mut self, best_cost)? {
                        if cost_lt(cost, best_cost) {
                            best_cost = cost;
                            best_state = state;
                            best_sub = sub;
                        }
                    }
                }
            }
            SearchStrategy::Linear => {
                // dynamic-programming flavoured: start from all-zero and
                // greedily fix each coordinate at its best alternative
                let mut current = space.zero_state();
                if let Some((cost, sub)) = evaluate(&current, &mut self, best_cost)? {
                    best_cost = cost;
                    best_state = current.clone();
                    best_sub = sub;
                }
                for i in 0..targets.len() {
                    let mut local_best = current[i];
                    for c in 1..arities[i] {
                        let mut cand = current.clone();
                        cand[i] = c;
                        if let Some((cost, sub)) = evaluate(&cand, &mut self, best_cost)? {
                            if cost_lt(cost, best_cost) {
                                best_cost = cost;
                                best_state = cand.clone();
                                best_sub = sub;
                                local_best = c;
                            }
                        }
                    }
                    current[i] = local_best;
                }
            }
            SearchStrategy::Iterative => {
                let mut rng = Lcg::new(0x5DEECE66D ^ targets.len() as u64);
                let mut explored = 0usize;
                for restart in 0..self.config.iterative_restarts.max(1) {
                    let mut current: Vec<usize> = if restart == 0 {
                        space.zero_state()
                    } else {
                        arities.iter().map(|&a| rng.below(a)).collect()
                    };
                    let mut current_cost = match evaluate(&current, &mut self, best_cost)? {
                        Some((c, sub)) => {
                            if cost_lt(c, best_cost) {
                                best_cost = c;
                                best_state = current.clone();
                                best_sub = sub;
                            }
                            c
                        }
                        None => f64::INFINITY,
                    };
                    explored += 1;
                    // greedy descent over single-coordinate moves
                    let mut improved = true;
                    while improved && explored < self.config.iterative_max_states {
                        improved = false;
                        for i in 0..targets.len() {
                            for c in 0..arities[i] {
                                if c == current[i] {
                                    continue;
                                }
                                let mut cand = current.clone();
                                cand[i] = c;
                                explored += 1;
                                if let Some((cost, sub)) = evaluate(&cand, &mut self, best_cost)? {
                                    if cost_lt(cost, current_cost) {
                                        current = cand.clone();
                                        current_cost = cost;
                                        improved = true;
                                        if cost_lt(cost, best_cost) {
                                            best_cost = cost;
                                            best_state = cand;
                                            best_sub = sub;
                                        }
                                        break;
                                    }
                                }
                                if explored >= self.config.iterative_max_states {
                                    break;
                                }
                            }
                            if improved || explored >= self.config.iterative_max_states {
                                break;
                            }
                        }
                    }
                }
            }
            SearchStrategy::Auto => unreachable!("resolved in pick_strategy"),
        }

        // apply the winning state to the main tree
        if best_state.iter().any(|&c| c > 0) {
            let effects = apply_state(tree, self.catalog, t, &targets, &best_state)?;
            // interleaved merges chosen during costing
            let created: Vec<_> = effects
                .iter()
                .flat_map(|e| e.created_views.iter().copied())
                .collect();
            for (k, (parent, view_ref)) in created.iter().enumerate() {
                if best_sub.get(k).copied().unwrap_or(false) {
                    merge_view(tree, self.catalog, *parent, *view_ref)?;
                }
            }
            debug_assert!(tree.validate().is_ok(), "{:?} broke the tree", t.name());
        }
        self.tracer.emit(|| TraceEvent::TransformEnd {
            transform: t.name().to_string(),
            best_state: best_state.clone(),
            interleaved: best_sub.iter().any(|&b| b),
            cost: best_cost,
        });
        Ok(Some(format!(
            "{} target(s), strategy {:?}, best state {:?}{}, cost {:.0}",
            targets.len(),
            strategy,
            best_state,
            if best_sub.iter().any(|&b| b) {
                " + interleaved merge"
            } else {
                ""
            },
            best_cost,
        )))
    }

    fn pick_strategy(
        &self,
        tree: &QueryTree,
        _t: &dyn CbTransform,
        n_targets: usize,
    ) -> SearchStrategy {
        match self.config.search {
            SearchStrategy::Auto => {
                // total transformation objects across the whole query
                let total: usize = default_transforms()
                    .iter()
                    .map(|tt| tt.find_targets(tree, self.catalog).len())
                    .sum();
                if total > self.config.total_two_pass_threshold {
                    SearchStrategy::TwoPass
                } else if n_targets <= self.config.exhaustive_threshold {
                    SearchStrategy::Exhaustive
                } else if n_targets <= self.config.linear_threshold {
                    SearchStrategy::Linear
                } else {
                    SearchStrategy::TwoPass
                }
            }
            s => s,
        }
    }

    /// Costs one state: clone the tree, apply the choices, optimize.
    /// With interleaving, every subset of "merge the created views" is
    /// also costed and the best sub-choice returned (§3.3.1).
    fn cost_state(
        &mut self,
        tree: &QueryTree,
        t: &dyn CbTransform,
        targets: &[Target],
        state: &[usize],
        budget: f64,
    ) -> Result<Option<(f64, Vec<bool>)>> {
        // Statement-level optimizer budget (graceful degradation): once
        // it runs out, remaining states are skipped as if cut off — the
        // best state costed so far stands, or the all-zero state (the
        // heuristic tree) if nothing was costed yet.
        match self.governor.charge_state() {
            StateCharge::Charged => {}
            StateCharge::ExhaustedNow => {
                self.tracer.emit(|| TraceEvent::SearchDegraded {
                    transform: t.name().to_string(),
                    states_used: self.governor.states_used().saturating_sub(1),
                });
                return Ok(None);
            }
            StateCharge::Exhausted => return Ok(None),
        }
        // cancellation / deadline are hard interrupts even mid-search
        self.governor.check_interrupt()?;
        let mut copy = tree.clone(); // the deep copy of §3.1
        let effects = match apply_state(&mut copy, self.catalog, t, targets, state) {
            Ok(e) => e,
            Err(_) => return Ok(None), // state not applicable
        };
        let created: Vec<_> = effects
            .iter()
            .flat_map(|e| e.created_views.iter().copied())
            .collect();

        let mut best: Option<(f64, Vec<bool>)> = None;
        let budget_of = |best: &Option<(f64, Vec<bool>)>| -> f64 {
            best.as_ref().map(|(c, _)| *c).unwrap_or(budget)
        };

        // base state (no interleaved merges)
        let base_cost = self.optimize_copy(&copy, budget_of(&best))?;
        self.trace_state(t, state, vec![false; created.len()], base_cost);
        if let Some(cost) = base_cost {
            best = Some((cost, vec![false; created.len()]));
        }

        if self.config.interleave && !created.is_empty() && created.len() <= 3 {
            let n = created.len();
            for mask in 1..(1u32 << n) {
                let mut merged_copy = copy.clone();
                let mut sub = vec![false; n];
                let mut ok = true;
                for (k, (parent, view_ref)) in created.iter().enumerate() {
                    if mask & (1 << k) != 0 {
                        let vid = {
                            let Ok(p) = merged_copy.select(*parent) else {
                                ok = false;
                                break;
                            };
                            match p.table(*view_ref).map(|x| &x.source) {
                                Some(QTableSource::View(v)) => *v,
                                _ => {
                                    ok = false;
                                    break;
                                }
                            }
                        };
                        if !can_merge_view(&merged_copy, self.catalog, *parent, *view_ref, vid) {
                            ok = false;
                            break;
                        }
                        if merge_view(&mut merged_copy, self.catalog, *parent, *view_ref).is_err() {
                            ok = false;
                            break;
                        }
                        sub[k] = true;
                    }
                }
                if !ok {
                    continue;
                }
                let merged_cost = self.optimize_copy(&merged_copy, budget_of(&best))?;
                self.trace_state(t, state, sub.clone(), merged_cost);
                if let Some(cost) = merged_cost {
                    if best
                        .as_ref()
                        .map(|(c, _)| cost_lt(cost, *c))
                        .unwrap_or(true)
                    {
                        best = Some((cost, sub));
                    }
                }
            }
        }
        Ok(best)
    }

    /// Emits one `StateCosted` event (and `CutoffTaken` when the cost
    /// cut-off fired) for a just-costed `(state, merges)` combination.
    fn trace_state(
        &self,
        t: &dyn CbTransform,
        state: &[usize],
        merges: Vec<bool>,
        cost: Option<f64>,
    ) {
        self.tracer.emit(|| TraceEvent::StateCosted {
            transform: t.name().to_string(),
            state: state.to_vec(),
            merges,
            cost,
        });
        if cost.is_none() {
            self.tracer.emit(|| TraceEvent::CutoffTaken {
                transform: t.name().to_string(),
                state: state.to_vec(),
            });
        }
    }

    fn optimize_copy(&mut self, copy: &QueryTree, budget: f64) -> Result<Option<f64>> {
        *self.states += 1;
        let mut opt = Optimizer::new(self.catalog, self.annotations, self.sampling_cache);
        opt.sampler = self.sampler;
        opt.config = self.config.optimizer.clone();
        opt.tracer = self.tracer;
        opt.governor = self.governor.clone();
        let budget = if self.config.cost_cutoff && budget.is_finite() {
            Some(budget)
        } else {
            None
        };
        let res = opt.optimize(copy, budget);
        self.stats.blocks_costed += opt.stats.blocks_costed;
        self.stats.annotation_hits += opt.stats.annotation_hits;
        match res {
            Ok(plan) => Ok(Some(plan.cost)),
            Err(e) if is_cutoff(&e) => {
                *self.cutoffs += 1;
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

/// Applies a state (choice per target) to a tree.
fn apply_state(
    tree: &mut QueryTree,
    catalog: &Catalog,
    t: &dyn CbTransform,
    targets: &[Target],
    state: &[usize],
) -> Result<Vec<ApplyEffect>> {
    let mut effects = Vec::new();
    for (target, &choice) in targets.iter().zip(state.iter()) {
        if choice == 0 {
            continue;
        }
        effects.push(t.apply(tree, catalog, target, choice)?);
    }
    if tree.validate().is_err() {
        return Err(Error::transform("state application produced invalid tree"));
    }
    Ok(effects)
}

/// The state space over per-target arities.
struct StateSpace<'a> {
    arities: &'a [usize],
}

impl<'a> StateSpace<'a> {
    fn zero_state(&self) -> Vec<usize> {
        vec![0; self.arities.len()]
    }

    /// "Transform everything": the first alternative of every target.
    fn one_state(&self) -> Vec<usize> {
        self.arities.iter().map(|&a| usize::from(a > 1)).collect()
    }

    /// Cartesian product of all choices.
    fn all_states(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new()];
        for &a in self.arities {
            let mut next = Vec::with_capacity(out.len() * a);
            for prefix in &out {
                for c in 0..a {
                    let mut s = prefix.clone();
                    s.push(c);
                    next.push(s);
                }
            }
            out = next;
        }
        out
    }
}

/// Tiny deterministic LCG so iterative improvement needs no external
/// randomness (reproducible experiments).
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::testutil::{build, catalog};

    fn outcome(sql: &str, config: &CbqtConfig) -> CbqtOutcome {
        let cat = catalog();
        let tree = build(&cat, sql);
        let cache = SamplingCache::default();
        optimize_query(&tree, &cat, config, &cache).unwrap()
    }

    const PAPER_Q1: &str = "SELECT e1.employee_name, j.job_title \
        FROM employees e1, job_history j \
        WHERE e1.emp_id = j.emp_id AND j.start_date > 19980101 AND \
              e1.salary > (SELECT AVG(e2.salary) FROM employees e2 \
                           WHERE e2.dept_id = e1.dept_id) AND \
              e1.dept_id IN (SELECT d.dept_id FROM departments d, locations l \
                             WHERE d.loc_id = l.loc_id AND l.country_id = 'US')";

    #[test]
    fn q1_exhaustive_explores_state_space() {
        let config = CbqtConfig {
            interleave: false,
            ..Default::default()
        };
        let out = outcome(PAPER_Q1, &config);
        // 2 unnesting targets → exhaustive = 4 states (plus later passes)
        assert!(out.states_explored >= 4, "{}", out.states_explored);
        assert!(out.plan.cost > 0.0);
        out.tree.validate().unwrap();
    }

    #[test]
    fn q1_two_pass_explores_two_states() {
        let config = CbqtConfig {
            search: SearchStrategy::TwoPass,
            interleave: false,
            transforms: TransformSet {
                view_merge: false,
                jppd: false,
                setop_to_join: false,
                group_by_placement: false,
                predicate_pullup: false,
                join_factorization: false,
                or_expansion: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let out = outcome(PAPER_Q1, &config);
        assert_eq!(out.states_explored, 2);
    }

    #[test]
    fn q1_linear_explores_n_plus_one() {
        let config = CbqtConfig {
            search: SearchStrategy::Linear,
            interleave: false,
            transforms: TransformSet {
                view_merge: false,
                jppd: false,
                setop_to_join: false,
                group_by_placement: false,
                predicate_pullup: false,
                join_factorization: false,
                or_expansion: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let out = outcome(PAPER_Q1, &config);
        assert_eq!(out.states_explored, 3); // N+1 with N=2
    }

    #[test]
    fn q1_iterative_bounded() {
        let config = CbqtConfig {
            search: SearchStrategy::Iterative,
            interleave: false,
            iterative_max_states: 6,
            transforms: TransformSet {
                view_merge: false,
                jppd: false,
                setop_to_join: false,
                group_by_placement: false,
                predicate_pullup: false,
                join_factorization: false,
                or_expansion: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let out = outcome(PAPER_Q1, &config);
        assert!(
            out.states_explored >= 2 && out.states_explored <= 12,
            "{}",
            out.states_explored
        );
    }

    #[test]
    fn heuristic_mode_applies_rules_without_costing() {
        let config = CbqtConfig {
            cost_based: false,
            ..Default::default()
        };
        let out = outcome(PAPER_Q1, &config);
        assert_eq!(out.states_explored, 0);
        out.tree.validate().unwrap();
    }

    #[test]
    fn interleaving_costs_merge_of_created_view() {
        let config = CbqtConfig {
            interleave: true,
            ..Default::default()
        };
        let out = outcome(PAPER_Q1, &config);
        // with interleaving, more states than the plain 4 are costed
        assert!(out.states_explored > 4, "{}", out.states_explored);
        out.tree.validate().unwrap();
    }

    #[test]
    fn decisions_are_logged() {
        let out = outcome(PAPER_Q1, &CbqtConfig::default());
        assert!(
            out.decisions.iter().any(|(n, _)| n.contains("unnesting")),
            "{:?}",
            out.decisions
        );
    }

    #[test]
    fn annotation_reuse_across_states() {
        // Table 1: exhaustive over Q1's two subqueries — the unchanged
        // subquery blocks are reused across states
        let config = CbqtConfig {
            interleave: false,
            ..Default::default()
        };
        let out = outcome(PAPER_Q1, &config);
        assert!(
            out.optimizer_stats.annotation_hits > 0,
            "{:?}",
            out.optimizer_stats
        );
    }

    #[test]
    fn juxtaposed_view_decision_runs() {
        let q12 = "SELECT e1.employee_name, j.job_title \
            FROM employees e1, job_history j, \
                 (SELECT DISTINCT d.dept_id FROM departments d, locations l \
                  WHERE d.loc_id = l.loc_id AND l.country_id IN ('UK', 'US')) v \
            WHERE e1.dept_id = v.dept_id AND e1.emp_id = j.emp_id AND \
                  j.start_date > 19980101";
        let out = outcome(q12, &CbqtConfig::default());
        assert!(
            out.decisions
                .iter()
                .any(|(n, _)| n.contains("view merging")),
            "{:?}",
            out.decisions
        );
        out.tree.validate().unwrap();
    }

    #[test]
    fn state_space_enumeration() {
        let space = StateSpace { arities: &[2, 3] };
        assert_eq!(space.all_states().len(), 6);
        assert_eq!(space.zero_state(), vec![0, 0]);
        assert_eq!(space.one_state(), vec![1, 1]);
    }
}
