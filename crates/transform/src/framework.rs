//! The cost-based transformation framework (§3).
//!
//! Transformations are applied **sequentially** in the paper's order
//! (§3.1): each transformation enumerates a state space over its targets
//! in the current query tree, costs candidate states on *deep copies* of
//! the tree with the physical optimizer, and the winning state is
//! applied to the main tree before the next transformation runs.
//!
//! State-space machinery (§3.2):
//! * a state is a vector of per-target choices (bits generalized to
//!   small arities so juxtaposed alternatives fit, §3.3.2/§3.3.3);
//! * four search strategies — exhaustive (2^N), iterative improvement,
//!   linear (N+1), two-pass (2) — with automatic selection based on the
//!   number of transformation objects;
//! * interleaving (§3.3.1): when unnesting creates a view, the merge of
//!   that view is evaluated *within* the same state, so "unnest + merge"
//!   can win even when "unnest" alone loses;
//! * cost annotations are shared across all states (§3.4.2) and the best
//!   cost so far is passed as a cut-off budget (§3.4.1).

use crate::costbased::view_transform::{can_merge_view, merge_view};
use crate::costbased::{default_transforms, ApplyEffect, CbTransform, Target};
use crate::heuristic::{apply_heuristics_with, HeuristicReport};
use cbqt_catalog::Catalog;
use cbqt_common::{
    cost_lt, Error, ExecutionMode, Governor, Result, StateCharge, TraceBuffer, TraceEvent, Tracer,
};
use cbqt_optimizer::{
    is_cutoff, BlockPlan, CardFeedback, CostAnnotations, DynamicSampler, Optimizer,
    OptimizerConfig, OptimizerStats, SamplingCache,
};
use cbqt_qgm::{render, QTableSource, QueryTree};

/// Search strategies of §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Pick automatically from the object counts (the paper's default).
    Auto,
    /// All states of the space.
    Exhaustive,
    /// Iterative improvement: random restarts + greedy descent.
    Iterative,
    /// Linear: fix one coordinate at a time (N+1 states).
    Linear,
    /// Two states: nothing transformed vs. everything transformed.
    TwoPass,
}

/// Which transformations are enabled — used by the experiments to turn
/// individual transformations off or force heuristic behaviour.
#[derive(Debug, Clone)]
pub struct TransformSet {
    pub unnest: bool,
    pub view_merge: bool,
    /// Join predicate pushdown (disable independently of view merging —
    /// the paper's Figure 4 experiment).
    pub jppd: bool,
    pub setop_to_join: bool,
    pub group_by_placement: bool,
    pub predicate_pullup: bool,
    pub join_factorization: bool,
    pub or_expansion: bool,
}

impl Default for TransformSet {
    fn default() -> Self {
        TransformSet {
            unnest: true,
            view_merge: true,
            jppd: true,
            setop_to_join: true,
            group_by_placement: true,
            predicate_pullup: true,
            join_factorization: true,
            or_expansion: true,
        }
    }
}

impl TransformSet {
    fn enabled(&self, name: &str) -> bool {
        match name {
            "subquery unnesting (inline view)" => self.unnest,
            "view merging / join predicate pushdown" => self.view_merge || self.jppd,
            "MINUS/INTERSECT into join" => self.setop_to_join,
            "group-by placement" => self.group_by_placement,
            "predicate pullup" => self.predicate_pullup,
            "join factorization" => self.join_factorization,
            "disjunction into UNION ALL" => self.or_expansion,
            _ => true,
        }
    }
}

/// Framework configuration.
#[derive(Debug, Clone)]
pub struct CbqtConfig {
    /// Master switch: `false` = heuristic-only mode. Cost-based
    /// transformations are then applied by fixed rules (the pre-10g
    /// behaviour the paper compares against in §4.1).
    pub cost_based: bool,
    pub search: SearchStrategy,
    /// Per-transformation: up to this many targets → exhaustive search.
    pub exhaustive_threshold: usize,
    /// Per-transformation: above the exhaustive threshold and up to this
    /// many targets → linear; beyond → two-pass for everything.
    pub linear_threshold: usize,
    /// Total targets in the whole query beyond which every
    /// transformation uses two-pass (§3.2).
    pub total_two_pass_threshold: usize,
    /// Enable §3.3.1 interleaving of unnesting with view merging.
    pub interleave: bool,
    /// Heuristic unnesting-by-merging (§2.1.1). Disabled together with
    /// `transforms.unnest` to reproduce the paper's "unnesting completely
    /// disabled" baseline (Figure 3).
    pub heuristic_unnest_merge: bool,
    /// §3.4.1 cost cut-off during state evaluation.
    pub cost_cutoff: bool,
    pub transforms: TransformSet,
    pub optimizer: OptimizerConfig,
    /// Iterative improvement: number of restarts.
    pub iterative_restarts: usize,
    /// Iterative improvement: max states explored.
    pub iterative_max_states: usize,
    /// Worker threads used to cost independent candidate states of one
    /// transformation concurrently. `0` (the default) resolves to
    /// `std::thread::available_parallelism()`; `1` takes the exact
    /// serial code path. Any worker count produces the same winning
    /// plan and cost (winner by `(total_cmp(cost), state_index)`), and
    /// a fixed worker count is fully deterministic: per-worker stats,
    /// trace events, and annotation writes are committed in state-index
    /// order, independent of thread scheduling.
    pub parallelism: usize,
    /// Which interpreter executes the chosen physical plan: the
    /// vectorized batch engine (default) or the row-at-a-time Volcano
    /// oracle. Defaults to the process-wide `CBQT_EXEC_MODE` setting so
    /// the whole test suite can be flipped onto the oracle path.
    pub execution_mode: ExecutionMode,
    /// Cardinality feedback & re-optimization knobs.
    pub feedback: FeedbackConfig,
}

/// Knobs of the cardinality-feedback loop: runtime actuals harvested
/// into the feedback store, suspect-marking of cached plans whose
/// estimates diverged, and feedback-informed recompilation.
#[derive(Debug, Clone)]
pub struct FeedbackConfig {
    /// Master switch. When off, nothing is harvested, estimates stay
    /// purely static, and cached plans are never marked suspect.
    pub enabled: bool,
    /// A cached plan is marked suspect when an eligible scan's observed
    /// cardinality diverges from its estimate by at least this
    /// symmetric ratio (`max(actual/est, est/actual)` with both sides
    /// floored at one row). The suspect plan is recompiled — with the
    /// observed actuals fed back — on its next cache probe.
    pub divergence_ratio: f64,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            enabled: true,
            divergence_ratio: 10.0,
        }
    }
}

impl Default for CbqtConfig {
    fn default() -> Self {
        CbqtConfig {
            cost_based: true,
            search: SearchStrategy::Auto,
            exhaustive_threshold: 5,
            linear_threshold: 12,
            total_two_pass_threshold: 16,
            interleave: true,
            heuristic_unnest_merge: true,
            cost_cutoff: true,
            transforms: TransformSet::default(),
            optimizer: OptimizerConfig::default(),
            iterative_restarts: 3,
            iterative_max_states: 24,
            parallelism: 0,
            execution_mode: ExecutionMode::from_env(),
            feedback: FeedbackConfig::default(),
        }
    }
}

impl CbqtConfig {
    /// The resolved worker count for the state-space search: the
    /// configured [`CbqtConfig::parallelism`], with `0` meaning
    /// `std::thread::available_parallelism()`.
    pub fn effective_parallelism(&self) -> usize {
        match self.parallelism {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Result of the full optimization: the transformed tree, its physical
/// plan, and bookkeeping for the experiments.
#[derive(Debug)]
pub struct CbqtOutcome {
    pub tree: QueryTree,
    pub plan: BlockPlan,
    pub heuristics: HeuristicReport,
    /// `(transformation name, human-readable decision)` log.
    pub decisions: Vec<(String, String)>,
    /// States costed across all cost-based transformations.
    pub states_explored: u64,
    /// §3.4.1 cost cut-offs taken while costing states.
    pub cutoffs: u64,
    pub optimizer_stats: OptimizerStats,
    /// True when the statement's optimizer-state budget ran out
    /// mid-search: the plan is valid and executable but reflects the
    /// best state found before the budget tripped, not the full search.
    pub degraded: bool,
}

/// Runs the full pipeline: heuristic transformations, then each
/// cost-based transformation over its state space, then final physical
/// optimization.
pub fn optimize_query(
    tree: &QueryTree,
    catalog: &Catalog,
    config: &CbqtConfig,
    sampling_cache: &SamplingCache,
) -> Result<CbqtOutcome> {
    optimize_query_with_sampler(tree, catalog, config, sampling_cache, None)
}

/// [`optimize_query`] with a dynamic sampler for tables without
/// statistics (§3.4.4); sampling results are cached in `sampling_cache`
/// across states and across queries.
pub fn optimize_query_with_sampler(
    tree: &QueryTree,
    catalog: &Catalog,
    config: &CbqtConfig,
    sampling_cache: &SamplingCache,
    sampler: Option<&dyn DynamicSampler>,
) -> Result<CbqtOutcome> {
    optimize_query_traced(
        tree,
        catalog,
        config,
        sampling_cache,
        sampler,
        Tracer::disabled(),
    )
}

/// [`optimize_query_with_sampler`] with an optimizer trace: every
/// transformation examined, state costed, cut-off taken and annotation
/// hit/miss is emitted into `tracer`, plus the before/after rendered SQL
/// of the winning states. With `Tracer::disabled()` (what the plain
/// entry points pass) no event is ever constructed.
pub fn optimize_query_traced(
    tree: &QueryTree,
    catalog: &Catalog,
    config: &CbqtConfig,
    sampling_cache: &SamplingCache,
    sampler: Option<&dyn DynamicSampler>,
    tracer: Tracer<'_>,
) -> Result<CbqtOutcome> {
    optimize_query_governed(
        tree,
        catalog,
        config,
        sampling_cache,
        sampler,
        tracer,
        &Governor::unlimited(),
    )
}

/// [`optimize_query_traced`] under a statement-level resource
/// [`Governor`]. Cancellation and the wall-clock deadline are observed
/// between and inside state costings (hard failure); exhausting the
/// optimizer-state budget *degrades* the search instead — remaining
/// states are skipped, the best state found so far wins, and the
/// outcome is flagged [`CbqtOutcome::degraded`].
pub fn optimize_query_governed(
    tree: &QueryTree,
    catalog: &Catalog,
    config: &CbqtConfig,
    sampling_cache: &SamplingCache,
    sampler: Option<&dyn DynamicSampler>,
    tracer: Tracer<'_>,
    governor: &Governor,
) -> Result<CbqtOutcome> {
    optimize_query_feedback(
        tree,
        catalog,
        config,
        sampling_cache,
        sampler,
        None,
        tracer,
        governor,
    )
}

/// [`optimize_query_governed`] with an observed-cardinality source: when
/// `feedback` is set, eligible base-table scans are estimated from
/// previously observed actuals instead of NDV/histogram guesses (traced
/// as `FEEDBACK APPLIED`). This is how a suspect cached plan recompiles
/// into one whose estimates match runtime reality.
#[allow(clippy::too_many_arguments)]
pub fn optimize_query_feedback(
    tree: &QueryTree,
    catalog: &Catalog,
    config: &CbqtConfig,
    sampling_cache: &SamplingCache,
    sampler: Option<&dyn DynamicSampler>,
    feedback: Option<&dyn CardFeedback>,
    tracer: Tracer<'_>,
    governor: &Governor,
) -> Result<CbqtOutcome> {
    let before_sql = if tracer.enabled() {
        render::render_tree(tree, catalog)
    } else {
        String::new()
    };
    let mut tree = tree.clone();
    let heuristics = apply_heuristics_with(&mut tree, catalog, config.heuristic_unnest_merge)?;
    tracer.emit(|| TraceEvent::Heuristics {
        summary: heuristics.summary(),
    });

    let annotations = CostAnnotations::new();
    let mut states_explored = 0u64;
    let mut cutoffs = 0u64;
    let mut decisions: Vec<(String, String)> = Vec::new();
    let mut opt_stats = OptimizerStats::default();

    let transforms = default_transforms();
    for t in &transforms {
        if !config.transforms.enabled(t.name()) {
            continue;
        }
        if config.cost_based {
            let session = TransformSession {
                ctx: CostContext {
                    catalog,
                    config,
                    annotations: &annotations,
                    sampling_cache,
                    sampler,
                    feedback,
                    governor,
                },
                states: &mut states_explored,
                cutoffs: &mut cutoffs,
                stats: &mut opt_stats,
                tracer,
            };
            let decision = session.run(&mut tree, t.as_ref())?;
            if let Some(d) = decision {
                decisions.push((t.name().to_string(), d));
            }
            // transformations can expose heuristic work (e.g. SPJ views
            // from set-op conversion) — §3.1
            apply_heuristics_with(&mut tree, catalog, config.heuristic_unnest_merge)?;
        } else {
            let applied = apply_heuristic_rule(&mut tree, catalog, t.as_ref())?;
            if applied > 0 {
                decisions.push((
                    t.name().to_string(),
                    format!("applied by heuristic rule on {applied} object(s)"),
                ));
                apply_heuristics_with(&mut tree, catalog, config.heuristic_unnest_merge)?;
            }
        }
    }

    // final physical optimization of the winning tree; this always runs
    // (even when the search degraded) so the statement gets a valid,
    // executable plan. The governor's interrupts still apply inside.
    let mut opt = Optimizer::new(catalog, &annotations, sampling_cache);
    opt.sampler = sampler;
    opt.feedback = feedback;
    opt.config = config.optimizer.clone();
    opt.tracer = tracer;
    opt.governor = governor.clone();
    let plan = opt.optimize(&tree, None)?;
    opt_stats.blocks_costed += opt.stats.blocks_costed;
    opt_stats.annotation_hits += opt.stats.annotation_hits;
    opt_stats.enum_degraded |= opt.stats.enum_degraded;
    tracer.emit(|| TraceEvent::QueryRewritten {
        before: before_sql,
        after: render::render_tree(&tree, catalog),
    });
    tracer.emit(|| TraceEvent::FinalPlan {
        cost: plan.cost,
        est_rows: plan.rows,
    });
    Ok(CbqtOutcome {
        tree,
        plan,
        heuristics,
        decisions,
        states_explored,
        cutoffs,
        optimizer_stats: opt_stats,
        degraded: governor.optimizer_exhausted(),
    })
}

/// Heuristic-mode stand-in for the cost-based decisions (§4.1 compares
/// against this): unnesting always fires unless the pre-10g index rule
/// says otherwise; view merging always fires; the rest never fire
/// (group-by placement "is never applied using heuristics").
fn apply_heuristic_rule(
    tree: &mut QueryTree,
    catalog: &Catalog,
    t: &dyn CbTransform,
) -> Result<usize> {
    let mut applied = 0;
    match t.name() {
        "subquery unnesting (inline view)" => loop {
            let targets = t.find_targets(tree, catalog);
            let Some(target) = targets.into_iter().find(|tg| {
                let Target::Subquery { block, subq } = tg else {
                    return false;
                };
                crate::costbased::unnest_view::heuristic_would_unnest(tree, catalog, *block, *subq)
            }) else {
                return Ok(applied);
            };
            t.apply(tree, catalog, &target, 1)?;
            applied += 1;
        },
        "view merging / join predicate pushdown" => loop {
            // heuristic: always merge; never JPPD (the paper introduces
            // JPPD as a cost-based-only transformation)
            let targets = t.find_targets(tree, catalog);
            let Some(target) = targets.into_iter().find(|tg| {
                matches!(
                    tg,
                    Target::View {
                        can_merge: true,
                        ..
                    }
                )
            }) else {
                return Ok(applied);
            };
            t.apply(tree, catalog, &target, 1)?;
            applied += 1;
        },
        _ => Ok(applied),
    }
}

/// Everything a state-costing worker needs, all behind shared
/// references so it can be copied into scoped worker threads.
#[derive(Clone, Copy)]
struct CostContext<'a> {
    catalog: &'a Catalog,
    config: &'a CbqtConfig,
    annotations: &'a CostAnnotations,
    sampling_cache: &'a SamplingCache,
    sampler: Option<&'a dyn DynamicSampler>,
    feedback: Option<&'a dyn CardFeedback>,
    governor: &'a Governor,
}

/// A costed state's outcome: `None` when the state was pruned (cut-off
/// or budget), else its cost and the per-target interleave decisions.
type StateOutcome = Option<(f64, Vec<bool>)>;

/// Side-effect counters of one state evaluation. Workers accumulate
/// them privately; the coordinator merges them in state-index order.
#[derive(Default)]
struct SearchCounters {
    states: u64,
    cutoffs: u64,
    stats: OptimizerStats,
}

/// What one wave worker hands back to the coordinator.
struct WaveResult {
    result: Result<StateOutcome>,
    counters: SearchCounters,
    events: Vec<TraceEvent>,
    overlay: CostAnnotations,
}

/// Costs one (pre-charged) state in full isolation: annotation writes
/// go to a private overlay and trace events to a private buffer, so the
/// evaluation is a pure function of `(tree, state, budget)` plus the
/// shared annotation store as of wave start.
fn cost_state_isolated(
    ctx: CostContext<'_>,
    tree: &QueryTree,
    t: &dyn CbTransform,
    targets: &[Target],
    state: &[usize],
    budget: f64,
    trace_on: bool,
) -> WaveResult {
    let overlay = CostAnnotations::new();
    let buffer = TraceBuffer::new();
    let tracer = if trace_on {
        Tracer::new(&buffer)
    } else {
        Tracer::disabled()
    };
    let mut counters = SearchCounters::default();
    let result = cost_charged_state(
        ctx,
        tree,
        t,
        targets,
        state,
        budget,
        Some(&overlay),
        &mut counters,
        tracer,
    );
    WaveResult {
        result,
        counters,
        events: buffer.take(),
        overlay,
    }
}

struct TransformSession<'a> {
    ctx: CostContext<'a>,
    states: &'a mut u64,
    cutoffs: &'a mut u64,
    stats: &'a mut OptimizerStats,
    tracer: Tracer<'a>,
}

impl<'a> TransformSession<'a> {
    /// Runs one cost-based transformation over its state space on `tree`,
    /// applying the winning state in place. Returns a decision string if
    /// the transformation had targets.
    fn run(mut self, tree: &mut QueryTree, t: &dyn CbTransform) -> Result<Option<String>> {
        let mut targets = t.find_targets(tree, self.ctx.catalog);
        // the split view-merge / JPPD switches restrict the juxtaposed
        // alternatives of view targets
        if t.name() == "view merging / join predicate pushdown" {
            let set = &self.ctx.config.transforms;
            targets = targets
                .into_iter()
                .filter_map(|tg| match tg {
                    Target::View {
                        block,
                        view_ref,
                        can_merge,
                        can_jppd,
                    } => {
                        let m = can_merge && set.view_merge;
                        let j = can_jppd && set.jppd;
                        if m || j {
                            Some(Target::View {
                                block,
                                view_ref,
                                can_merge: m,
                                can_jppd: j,
                            })
                        } else {
                            None
                        }
                    }
                    other => Some(other),
                })
                .collect();
        }
        if targets.is_empty() {
            return Ok(None);
        }
        let arities: Vec<usize> = targets.iter().map(|tg| t.arity(tg)).collect();
        let strategy = self.pick_strategy(tree, t, targets.len());
        self.tracer.emit(|| TraceEvent::TransformBegin {
            transform: t.name().to_string(),
            targets: targets.len(),
            strategy: format!("{strategy:?}"),
        });
        let space = StateSpace { arities: &arities };

        let mut best_state = vec![0usize; targets.len()];
        let mut best_sub: Vec<bool> = Vec::new();
        let mut best_cost = f64::INFINITY;
        let tree_ref: &QueryTree = tree;

        match strategy {
            SearchStrategy::Exhaustive => {
                let states = space.all_states();
                let outcomes =
                    self.evaluate_batch(tree_ref, t, &targets, &states, best_cost, |_, _| false)?;
                for (state, out) in states.into_iter().zip(outcomes) {
                    if let Some((cost, sub)) = out {
                        if cost_lt(cost, best_cost) {
                            best_cost = cost;
                            best_state = state;
                            best_sub = sub;
                        }
                    }
                }
            }
            SearchStrategy::TwoPass => {
                let states = vec![space.zero_state(), space.one_state()];
                let outcomes =
                    self.evaluate_batch(tree_ref, t, &targets, &states, best_cost, |_, _| false)?;
                for (state, out) in states.into_iter().zip(outcomes) {
                    if let Some((cost, sub)) = out {
                        if cost_lt(cost, best_cost) {
                            best_cost = cost;
                            best_state = state;
                            best_sub = sub;
                        }
                    }
                }
            }
            SearchStrategy::Linear => {
                // dynamic-programming flavoured: start from all-zero and
                // greedily fix each coordinate at its best alternative
                let mut current = space.zero_state();
                let first = self.evaluate_batch(
                    tree_ref,
                    t,
                    &targets,
                    std::slice::from_ref(&current),
                    best_cost,
                    |_, _| false,
                )?;
                if let Some(Some((cost, sub))) = first.into_iter().next() {
                    best_cost = cost;
                    best_state = current.clone();
                    best_sub = sub;
                }
                for i in 0..targets.len() {
                    // alternatives of one coordinate are independent:
                    // cost them as one batch
                    let cands: Vec<Vec<usize>> = (1..arities[i])
                        .map(|c| {
                            let mut s = current.clone();
                            s[i] = c;
                            s
                        })
                        .collect();
                    if cands.is_empty() {
                        continue;
                    }
                    let outcomes =
                        self.evaluate_batch(tree_ref, t, &targets, &cands, best_cost, |_, _| {
                            false
                        })?;
                    let mut local_best = current[i];
                    for (cand, out) in cands.into_iter().zip(outcomes) {
                        if let Some((cost, sub)) = out {
                            if cost_lt(cost, best_cost) {
                                best_cost = cost;
                                local_best = cand[i];
                                best_state = cand;
                                best_sub = sub;
                            }
                        }
                    }
                    current[i] = local_best;
                }
            }
            SearchStrategy::Iterative => {
                let mut rng = Lcg::new(0x5DEECE66D ^ targets.len() as u64);
                let mut explored = 0usize;
                for restart in 0..self.ctx.config.iterative_restarts.max(1) {
                    let mut current: Vec<usize> = if restart == 0 {
                        space.zero_state()
                    } else {
                        arities.iter().map(|&a| rng.below(a)).collect()
                    };
                    let init = self.evaluate_batch(
                        tree_ref,
                        t,
                        &targets,
                        std::slice::from_ref(&current),
                        best_cost,
                        |_, _| false,
                    )?;
                    let mut current_cost = match init.into_iter().next().flatten() {
                        Some((c, sub)) => {
                            if cost_lt(c, best_cost) {
                                best_cost = c;
                                best_state = current.clone();
                                best_sub = sub;
                            }
                            c
                        }
                        None => f64::INFINITY,
                    };
                    explored += 1;
                    // greedy first-improvement descent over
                    // single-coordinate moves: the neighborhood is
                    // evaluated as one batch (truncated to the remaining
                    // state allowance) and committed up to the first
                    // improving move — exactly the serial scan.
                    let mut improved = true;
                    while improved && explored < self.ctx.config.iterative_max_states {
                        improved = false;
                        let mut moves: Vec<Vec<usize>> = Vec::new();
                        for i in 0..targets.len() {
                            for c in 0..arities[i] {
                                if c != current[i] {
                                    let mut cand = current.clone();
                                    cand[i] = c;
                                    moves.push(cand);
                                }
                            }
                        }
                        moves.truncate(self.ctx.config.iterative_max_states - explored);
                        if moves.is_empty() {
                            break;
                        }
                        let cc = current_cost;
                        let outcomes =
                            self.evaluate_batch(tree_ref, t, &targets, &moves, best_cost, {
                                move |_, out| matches!(out, Some((cost, _)) if cost_lt(*cost, cc))
                            })?;
                        explored += outcomes.len();
                        for (cand, out) in moves.into_iter().zip(outcomes) {
                            if let Some((cost, sub)) = out {
                                if cost_lt(cost, current_cost) {
                                    current = cand.clone();
                                    current_cost = cost;
                                    improved = true;
                                    if cost_lt(cost, best_cost) {
                                        best_cost = cost;
                                        best_state = cand;
                                        best_sub = sub;
                                    }
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            SearchStrategy::Auto => unreachable!("resolved in pick_strategy"),
        }

        // apply the winning state to the main tree
        if best_state.iter().any(|&c| c > 0) {
            let effects = apply_state(tree, self.ctx.catalog, t, &targets, &best_state)?;
            // interleaved merges chosen during costing
            let created: Vec<_> = effects
                .iter()
                .flat_map(|e| e.created_views.iter().copied())
                .collect();
            for (k, (parent, view_ref)) in created.iter().enumerate() {
                if best_sub.get(k).copied().unwrap_or(false) {
                    merge_view(tree, self.ctx.catalog, *parent, *view_ref)?;
                }
            }
            debug_assert!(tree.validate().is_ok(), "{:?} broke the tree", t.name());
        }
        self.tracer.emit(|| TraceEvent::TransformEnd {
            transform: t.name().to_string(),
            best_state: best_state.clone(),
            interleaved: best_sub.iter().any(|&b| b),
            cost: best_cost,
        });
        Ok(Some(format!(
            "{} target(s), strategy {:?}, best state {:?}{}, cost {:.0}",
            targets.len(),
            strategy,
            best_state,
            if best_sub.iter().any(|&b| b) {
                " + interleaved merge"
            } else {
                ""
            },
            best_cost,
        )))
    }

    fn pick_strategy(
        &self,
        tree: &QueryTree,
        _t: &dyn CbTransform,
        n_targets: usize,
    ) -> SearchStrategy {
        match self.ctx.config.search {
            SearchStrategy::Auto => {
                // total transformation objects across the whole query
                let total: usize = default_transforms()
                    .iter()
                    .map(|tt| tt.find_targets(tree, self.ctx.catalog).len())
                    .sum();
                if total > self.ctx.config.total_two_pass_threshold {
                    SearchStrategy::TwoPass
                } else if n_targets <= self.ctx.config.exhaustive_threshold {
                    SearchStrategy::Exhaustive
                } else if n_targets <= self.ctx.config.linear_threshold {
                    SearchStrategy::Linear
                } else {
                    SearchStrategy::TwoPass
                }
            }
            s => s,
        }
    }

    fn merge_counters(&mut self, c: SearchCounters) {
        *self.states += c.states;
        *self.cutoffs += c.cutoffs;
        self.stats.blocks_costed += c.stats.blocks_costed;
        self.stats.annotation_hits += c.stats.annotation_hits;
        if c.stats.enum_degraded {
            // A bushy join enumeration degraded while costing this
            // state. Fold it into the governor's degraded outcome here,
            // at the deterministic commit point — wave workers never
            // touch the shared flag, and discarded speculative states
            // never reach this merge, so the flag follows serial
            // commit order exactly.
            self.stats.enum_degraded = true;
            self.ctx.governor.mark_enum_degraded();
        }
    }

    /// Serial costing of one state: charge the governor, then cost in
    /// place against the shared annotation store and session tracer —
    /// today's exact single-threaded code path.
    fn cost_state(
        &mut self,
        tree: &QueryTree,
        t: &dyn CbTransform,
        targets: &[Target],
        state: &[usize],
        budget: f64,
    ) -> Result<StateOutcome> {
        // Statement-level optimizer budget (graceful degradation): once
        // it runs out, remaining states are skipped as if cut off — the
        // best state costed so far stands, or the all-zero state (the
        // heuristic tree) if nothing was costed yet.
        match self.ctx.governor.charge_state() {
            StateCharge::Charged => {}
            StateCharge::ExhaustedNow => {
                self.tracer.emit(|| TraceEvent::SearchDegraded {
                    transform: t.name().to_string(),
                    states_used: self.ctx.governor.states_used().saturating_sub(1),
                });
                return Ok(None);
            }
            StateCharge::Exhausted => return Ok(None),
        }
        let mut counters = SearchCounters::default();
        let res = cost_charged_state(
            self.ctx,
            tree,
            t,
            targets,
            state,
            budget,
            None,
            &mut counters,
            self.tracer,
        );
        self.merge_counters(counters);
        res
    }

    /// Costs a batch of independent candidate states and returns the
    /// committed outcomes, one per state in state order (possibly fewer
    /// than `batch.len()` when `stop` ends the scan early).
    ///
    /// With one worker this is the serial scan: each state is charged,
    /// costed with the running best cost as its §3.4.1 budget, and
    /// `stop` consulted before moving on. With `workers > 1` the batch
    /// is costed in waves of `workers` scoped threads; every wave is
    /// budgeted at the best cost entering it, workers write annotations
    /// into private overlays and trace into private buffers, and the
    /// coordinator pre-charges the governor and commits counters,
    /// events, overlays, and outcomes in state-index order — discarding
    /// (and refunding) any speculative states past the stop point. The
    /// committed result is therefore a pure function of the inputs and
    /// the worker count, independent of thread scheduling.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_batch(
        &mut self,
        tree: &QueryTree,
        t: &dyn CbTransform,
        targets: &[Target],
        batch: &[Vec<usize>],
        mut best_cost: f64,
        mut stop: impl FnMut(usize, &StateOutcome) -> bool,
    ) -> Result<Vec<StateOutcome>> {
        let workers = self.ctx.config.effective_parallelism().max(1);
        let mut outcomes = Vec::with_capacity(batch.len());
        if workers == 1 || batch.len() <= 1 {
            for (i, state) in batch.iter().enumerate() {
                let out = self.cost_state(tree, t, targets, state, best_cost)?;
                if let Some((c, _)) = &out {
                    if cost_lt(*c, best_cost) {
                        best_cost = *c;
                    }
                }
                let done = stop(i, &out);
                outcomes.push(out);
                if done {
                    break;
                }
            }
            return Ok(outcomes);
        }

        let ctx = self.ctx;
        let trace_on = self.tracer.enabled();
        let mut idx = 0;
        while idx < batch.len() {
            let wave = &batch[idx..(idx + workers).min(batch.len())];
            // Pre-charge the governor in state order (workers never
            // touch the budget), remembering the counter value after
            // each charge so the degradation event matches serial.
            let charges: Vec<(StateCharge, u64)> = wave
                .iter()
                .map(|_| {
                    let c = ctx.governor.charge_state();
                    (c, ctx.governor.states_used())
                })
                .collect();
            let budget = best_cost;
            let results: Vec<Option<WaveResult>> = std::thread::scope(|scope| {
                let handles: Vec<_> = wave
                    .iter()
                    .zip(&charges)
                    .map(|(state, (charge, _))| {
                        if *charge != StateCharge::Charged {
                            return None;
                        }
                        Some(scope.spawn(move || {
                            cost_state_isolated(ctx, tree, t, targets, state, budget, trace_on)
                        }))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p))))
                    .collect()
            });

            // Commit in state-index order.
            let mut committed = 0usize;
            let mut stopped = false;
            let mut error: Option<Error> = None;
            for ((charge, used_after), res) in charges.iter().zip(results) {
                let out = match charge {
                    StateCharge::ExhaustedNow => {
                        self.tracer.emit(|| TraceEvent::SearchDegraded {
                            transform: t.name().to_string(),
                            states_used: used_after.saturating_sub(1),
                        });
                        None
                    }
                    StateCharge::Exhausted => None,
                    StateCharge::Charged => {
                        let r = res.expect("charged state must have a wave result");
                        self.merge_counters(r.counters);
                        for ev in r.events {
                            self.tracer.emit(|| ev);
                        }
                        ctx.annotations.merge(r.overlay);
                        match r.result {
                            Err(e) => {
                                error = Some(e);
                                committed += 1;
                                break;
                            }
                            Ok(out) => out,
                        }
                    }
                };
                if let Some((c, _)) = &out {
                    if cost_lt(*c, best_cost) {
                        best_cost = *c;
                    }
                }
                committed += 1;
                let done = stop(idx + committed - 1, &out);
                outcomes.push(out);
                if done {
                    stopped = true;
                    break;
                }
            }

            // Refund speculative charges of discarded states, and clear
            // the degraded flag if the exhausting charge itself was
            // speculative (a serial run would never have made it).
            if committed < wave.len() {
                ctx.governor.refund_states((wave.len() - committed) as u64);
                if charges[committed..]
                    .iter()
                    .any(|(c, _)| *c == StateCharge::ExhaustedNow)
                {
                    ctx.governor.clear_degraded();
                }
            }
            if let Some(e) = error {
                return Err(e);
            }
            if stopped {
                break;
            }
            idx += wave.len();
        }
        Ok(outcomes)
    }
}

/// Costs one state on a copy of `tree`: apply the choices, optimize.
/// With interleaving, every subset of "merge the created views" is also
/// costed and the best sub-choice returned (§3.3.1). The governor must
/// already have been charged for this state.
#[allow(clippy::too_many_arguments)]
fn cost_charged_state(
    ctx: CostContext<'_>,
    tree: &QueryTree,
    t: &dyn CbTransform,
    targets: &[Target],
    state: &[usize],
    budget: f64,
    overlay: Option<&CostAnnotations>,
    counters: &mut SearchCounters,
    tracer: Tracer<'_>,
) -> Result<StateOutcome> {
    // cancellation / deadline are hard interrupts even mid-search
    ctx.governor.check_interrupt()?;
    // The deep copy of §3.1 — skipped entirely for the all-zero state,
    // which applies no transformation (and with the copy-on-write arena
    // a taken copy shares every block until the state mutates it).
    let mut copy_slot: Option<QueryTree> = None;
    let effects = if state.iter().any(|&c| c > 0) {
        let copy = copy_slot.insert(tree.clone());
        match apply_state(copy, ctx.catalog, t, targets, state) {
            Ok(e) => e,
            Err(_) => return Ok(None), // state not applicable
        }
    } else {
        Vec::new()
    };
    let copy: &QueryTree = copy_slot.as_ref().unwrap_or(tree);
    let created: Vec<_> = effects
        .iter()
        .flat_map(|e| e.created_views.iter().copied())
        .collect();

    let mut best: StateOutcome = None;
    let budget_of =
        |best: &StateOutcome| -> f64 { best.as_ref().map(|(c, _)| *c).unwrap_or(budget) };

    // base state (no interleaved merges)
    let base_cost = optimize_state_copy(ctx, overlay, counters, tracer, copy, budget_of(&best))?;
    trace_state_event(tracer, t, state, vec![false; created.len()], base_cost);
    if let Some(cost) = base_cost {
        best = Some((cost, vec![false; created.len()]));
    }

    if ctx.config.interleave && !created.is_empty() && created.len() <= 3 {
        let n = created.len();
        for mask in 1..(1u32 << n) {
            // the merged copy is materialized lazily: if the first
            // requested merge is not even applicable, no clone happens
            let mut merged_slot: Option<QueryTree> = None;
            let mut sub = vec![false; n];
            let mut ok = true;
            for (k, (parent, view_ref)) in created.iter().enumerate() {
                if mask & (1 << k) != 0 {
                    let cur: &QueryTree = merged_slot.as_ref().unwrap_or(copy);
                    let vid = {
                        let Ok(p) = cur.select(*parent) else {
                            ok = false;
                            break;
                        };
                        match p.table(*view_ref).map(|x| &x.source) {
                            Some(QTableSource::View(v)) => *v,
                            _ => {
                                ok = false;
                                break;
                            }
                        }
                    };
                    if !can_merge_view(cur, ctx.catalog, *parent, *view_ref, vid) {
                        ok = false;
                        break;
                    }
                    let merged = merged_slot.get_or_insert_with(|| copy.clone());
                    if merge_view(merged, ctx.catalog, *parent, *view_ref).is_err() {
                        ok = false;
                        break;
                    }
                    sub[k] = true;
                }
            }
            let Some(merged_copy) = merged_slot else {
                continue;
            };
            if !ok {
                continue;
            }
            let merged_cost = optimize_state_copy(
                ctx,
                overlay,
                counters,
                tracer,
                &merged_copy,
                budget_of(&best),
            )?;
            trace_state_event(tracer, t, state, sub.clone(), merged_cost);
            if let Some(cost) = merged_cost {
                if best
                    .as_ref()
                    .map(|(c, _)| cost_lt(cost, *c))
                    .unwrap_or(true)
                {
                    best = Some((cost, sub));
                }
            }
        }
    }
    Ok(best)
}

/// Emits one `StateCosted` event (and `CutoffTaken` when the cost
/// cut-off fired) for a just-costed `(state, merges)` combination.
fn trace_state_event(
    tracer: Tracer<'_>,
    t: &dyn CbTransform,
    state: &[usize],
    merges: Vec<bool>,
    cost: Option<f64>,
) {
    tracer.emit(|| TraceEvent::StateCosted {
        transform: t.name().to_string(),
        state: state.to_vec(),
        merges,
        cost,
    });
    if cost.is_none() {
        tracer.emit(|| TraceEvent::CutoffTaken {
            transform: t.name().to_string(),
            state: state.to_vec(),
        });
    }
}

/// Optimizes one candidate copy under the §3.4.1 budget, charging the
/// given counters (and the annotation overlay, when costing in a wave).
fn optimize_state_copy(
    ctx: CostContext<'_>,
    overlay: Option<&CostAnnotations>,
    counters: &mut SearchCounters,
    tracer: Tracer<'_>,
    copy: &QueryTree,
    budget: f64,
) -> Result<Option<f64>> {
    counters.states += 1;
    let mut opt = Optimizer::new(ctx.catalog, ctx.annotations, ctx.sampling_cache);
    opt.overlay = overlay;
    opt.sampler = ctx.sampler;
    opt.feedback = ctx.feedback;
    opt.config = ctx.config.optimizer.clone();
    opt.tracer = tracer;
    opt.governor = ctx.governor.clone();
    let budget = if ctx.config.cost_cutoff && budget.is_finite() {
        Some(budget)
    } else {
        None
    };
    let res = opt.optimize(copy, budget);
    counters.stats.blocks_costed += opt.stats.blocks_costed;
    counters.stats.annotation_hits += opt.stats.annotation_hits;
    counters.stats.enum_degraded |= opt.stats.enum_degraded;
    match res {
        Ok(plan) => Ok(Some(plan.cost)),
        Err(e) if is_cutoff(&e) => {
            counters.cutoffs += 1;
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

/// Applies a state (choice per target) to a tree.
fn apply_state(
    tree: &mut QueryTree,
    catalog: &Catalog,
    t: &dyn CbTransform,
    targets: &[Target],
    state: &[usize],
) -> Result<Vec<ApplyEffect>> {
    let mut effects = Vec::new();
    for (target, &choice) in targets.iter().zip(state.iter()) {
        if choice == 0 {
            continue;
        }
        effects.push(t.apply(tree, catalog, target, choice)?);
    }
    if tree.validate().is_err() {
        return Err(Error::transform("state application produced invalid tree"));
    }
    Ok(effects)
}

/// The state space over per-target arities.
struct StateSpace<'a> {
    arities: &'a [usize],
}

impl<'a> StateSpace<'a> {
    fn zero_state(&self) -> Vec<usize> {
        vec![0; self.arities.len()]
    }

    /// "Transform everything": the first alternative of every target.
    fn one_state(&self) -> Vec<usize> {
        self.arities.iter().map(|&a| usize::from(a > 1)).collect()
    }

    /// Cartesian product of all choices.
    fn all_states(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new()];
        for &a in self.arities {
            let mut next = Vec::with_capacity(out.len() * a);
            for prefix in &out {
                for c in 0..a {
                    let mut s = prefix.clone();
                    s.push(c);
                    next.push(s);
                }
            }
            out = next;
        }
        out
    }
}

/// Tiny deterministic LCG so iterative improvement needs no external
/// randomness (reproducible experiments).
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::testutil::{build, catalog};

    fn outcome(sql: &str, config: &CbqtConfig) -> CbqtOutcome {
        let cat = catalog();
        let tree = build(&cat, sql);
        let cache = SamplingCache::default();
        optimize_query(&tree, &cat, config, &cache).unwrap()
    }

    const PAPER_Q1: &str = "SELECT e1.employee_name, j.job_title \
        FROM employees e1, job_history j \
        WHERE e1.emp_id = j.emp_id AND j.start_date > 19980101 AND \
              e1.salary > (SELECT AVG(e2.salary) FROM employees e2 \
                           WHERE e2.dept_id = e1.dept_id) AND \
              e1.dept_id IN (SELECT d.dept_id FROM departments d, locations l \
                             WHERE d.loc_id = l.loc_id AND l.country_id = 'US')";

    #[test]
    fn q1_exhaustive_explores_state_space() {
        let config = CbqtConfig {
            interleave: false,
            ..Default::default()
        };
        let out = outcome(PAPER_Q1, &config);
        // 2 unnesting targets → exhaustive = 4 states (plus later passes)
        assert!(out.states_explored >= 4, "{}", out.states_explored);
        assert!(out.plan.cost > 0.0);
        out.tree.validate().unwrap();
    }

    #[test]
    fn q1_two_pass_explores_two_states() {
        let config = CbqtConfig {
            search: SearchStrategy::TwoPass,
            interleave: false,
            transforms: TransformSet {
                view_merge: false,
                jppd: false,
                setop_to_join: false,
                group_by_placement: false,
                predicate_pullup: false,
                join_factorization: false,
                or_expansion: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let out = outcome(PAPER_Q1, &config);
        assert_eq!(out.states_explored, 2);
    }

    #[test]
    fn q1_linear_explores_n_plus_one() {
        let config = CbqtConfig {
            search: SearchStrategy::Linear,
            interleave: false,
            transforms: TransformSet {
                view_merge: false,
                jppd: false,
                setop_to_join: false,
                group_by_placement: false,
                predicate_pullup: false,
                join_factorization: false,
                or_expansion: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let out = outcome(PAPER_Q1, &config);
        assert_eq!(out.states_explored, 3); // N+1 with N=2
    }

    #[test]
    fn q1_iterative_bounded() {
        let config = CbqtConfig {
            search: SearchStrategy::Iterative,
            interleave: false,
            iterative_max_states: 6,
            transforms: TransformSet {
                view_merge: false,
                jppd: false,
                setop_to_join: false,
                group_by_placement: false,
                predicate_pullup: false,
                join_factorization: false,
                or_expansion: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let out = outcome(PAPER_Q1, &config);
        assert!(
            out.states_explored >= 2 && out.states_explored <= 12,
            "{}",
            out.states_explored
        );
    }

    #[test]
    fn heuristic_mode_applies_rules_without_costing() {
        let config = CbqtConfig {
            cost_based: false,
            ..Default::default()
        };
        let out = outcome(PAPER_Q1, &config);
        assert_eq!(out.states_explored, 0);
        out.tree.validate().unwrap();
    }

    #[test]
    fn interleaving_costs_merge_of_created_view() {
        let config = CbqtConfig {
            interleave: true,
            ..Default::default()
        };
        let out = outcome(PAPER_Q1, &config);
        // with interleaving, more states than the plain 4 are costed
        assert!(out.states_explored > 4, "{}", out.states_explored);
        out.tree.validate().unwrap();
    }

    #[test]
    fn decisions_are_logged() {
        let out = outcome(PAPER_Q1, &CbqtConfig::default());
        assert!(
            out.decisions.iter().any(|(n, _)| n.contains("unnesting")),
            "{:?}",
            out.decisions
        );
    }

    #[test]
    fn annotation_reuse_across_states() {
        // Table 1: exhaustive over Q1's two subqueries — the unchanged
        // subquery blocks are reused across states
        let config = CbqtConfig {
            interleave: false,
            parallelism: 1, // wave workers don't share annotations mid-wave
            ..Default::default()
        };
        let out = outcome(PAPER_Q1, &config);
        assert!(
            out.optimizer_stats.annotation_hits > 0,
            "{:?}",
            out.optimizer_stats
        );
    }

    #[test]
    fn juxtaposed_view_decision_runs() {
        let q12 = "SELECT e1.employee_name, j.job_title \
            FROM employees e1, job_history j, \
                 (SELECT DISTINCT d.dept_id FROM departments d, locations l \
                  WHERE d.loc_id = l.loc_id AND l.country_id IN ('UK', 'US')) v \
            WHERE e1.dept_id = v.dept_id AND e1.emp_id = j.emp_id AND \
                  j.start_date > 19980101";
        let out = outcome(q12, &CbqtConfig::default());
        assert!(
            out.decisions
                .iter()
                .any(|(n, _)| n.contains("view merging")),
            "{:?}",
            out.decisions
        );
        out.tree.validate().unwrap();
    }

    #[test]
    fn state_space_enumeration() {
        let space = StateSpace { arities: &[2, 3] };
        assert_eq!(space.all_states().len(), 6);
        assert_eq!(space.zero_state(), vec![0, 0]);
        assert_eq!(space.one_state(), vec![1, 1]);
    }

    #[test]
    fn zero_state_costing_makes_no_deep_clones() {
        // The all-zero state applies no transformation, so costing it
        // must not copy the tree at all — neither a tree clone nor any
        // copy-on-write block materialization.
        let cat = catalog();
        let tree = build(&cat, PAPER_Q1);
        let cache = SamplingCache::default();
        let annotations = CostAnnotations::new();
        let governor = Governor::unlimited();
        let config = CbqtConfig::default();
        let ctx = CostContext {
            catalog: &cat,
            config: &config,
            annotations: &annotations,
            sampling_cache: &cache,
            sampler: None,
            feedback: None,
            governor: &governor,
        };
        let t = crate::costbased::unnest_view::CbUnnestView;
        let targets = t.find_targets(&tree, &cat);
        assert!(!targets.is_empty());
        let zero = vec![0usize; targets.len()];
        let mut counters = SearchCounters::default();
        let before = cbqt_qgm::deep_block_clones();
        let out = cost_charged_state(
            ctx,
            &tree,
            &t,
            &targets,
            &zero,
            f64::INFINITY,
            None,
            &mut counters,
            Tracer::disabled(),
        )
        .unwrap();
        assert!(out.is_some());
        assert_eq!(cbqt_qgm::deep_block_clones() - before, 0);
    }

    #[test]
    fn search_wide_deep_clones_stay_below_full_copies() {
        let config = CbqtConfig {
            parallelism: 1,
            ..Default::default()
        };
        let cat = catalog();
        let tree = build(&cat, PAPER_Q1);
        let cache = SamplingCache::default();
        let blocks = tree.block_ids().len() as u64;
        let before = cbqt_qgm::deep_block_clones();
        let out = optimize_query(&tree, &cat, &config, &cache).unwrap();
        let clones = cbqt_qgm::deep_block_clones() - before;
        assert!(out.states_explored > 4);
        assert!(
            clones < out.states_explored * blocks,
            "{clones} deep clones for {} states x {blocks} blocks",
            out.states_explored
        );
    }

    /// The fields of a [`CbqtOutcome`] that the serial-equivalence
    /// guarantee covers (everything except the cut-off count, which may
    /// legally shrink under wave budgeting).
    fn fingerprint(out: &CbqtOutcome) -> (String, String, Vec<(String, String)>, u64) {
        (
            format!("{:?}", out.plan),
            format!("{:.6}", out.plan.cost),
            out.decisions.clone(),
            out.states_explored,
        )
    }

    #[test]
    fn parallel_workers_match_serial_plan_and_states() {
        for strategy in [
            SearchStrategy::Exhaustive,
            SearchStrategy::TwoPass,
            SearchStrategy::Linear,
            SearchStrategy::Iterative,
        ] {
            let serial = outcome(
                PAPER_Q1,
                &CbqtConfig {
                    search: strategy,
                    parallelism: 1,
                    ..Default::default()
                },
            );
            for workers in [2, 4, 8] {
                let par = outcome(
                    PAPER_Q1,
                    &CbqtConfig {
                        search: strategy,
                        parallelism: workers,
                        ..Default::default()
                    },
                );
                assert_eq!(
                    fingerprint(&serial),
                    fingerprint(&par),
                    "{strategy:?} diverged at {workers} workers"
                );
                assert!(
                    par.cutoffs <= serial.cutoffs,
                    "{strategy:?}/{workers}: {} cutoffs > serial {}",
                    par.cutoffs,
                    serial.cutoffs
                );
            }
        }
    }

    #[test]
    fn parallel_work_conserved_without_cutoff() {
        // With the §3.4.1 cost cut-off disabled, every state optimizes
        // every block to completion, so blocks costed + annotation hits
        // is a pure function of the search — identical for any worker
        // count even though the hit/miss split may shift.
        let base = CbqtConfig {
            cost_cutoff: false,
            interleave: false,
            ..Default::default()
        };
        let serial = outcome(
            PAPER_Q1,
            &CbqtConfig {
                parallelism: 1,
                ..base.clone()
            },
        );
        let swork = serial.optimizer_stats.blocks_costed + serial.optimizer_stats.annotation_hits;
        for workers in [2, 4] {
            let par = outcome(
                PAPER_Q1,
                &CbqtConfig {
                    parallelism: workers,
                    ..base.clone()
                },
            );
            assert_eq!(fingerprint(&serial), fingerprint(&par));
            assert_eq!(
                swork,
                par.optimizer_stats.blocks_costed + par.optimizer_stats.annotation_hits,
                "{workers} workers"
            );
        }
    }

    #[test]
    fn governed_parallel_search_degrades_like_serial() {
        use cbqt_common::ExecutionLimits;
        let cat = catalog();
        let tree = build(&cat, PAPER_Q1);
        let cache = SamplingCache::default();
        let limits = ExecutionLimits {
            optimizer_states: Some(3),
            ..ExecutionLimits::none()
        };
        let mut plans = Vec::new();
        let mut charged = Vec::new();
        for workers in [1usize, 2, 4] {
            let config = CbqtConfig {
                parallelism: workers,
                ..Default::default()
            };
            let governor = Governor::new(&limits, cbqt_common::CancelToken::new());
            let out = optimize_query_governed(
                &tree,
                &cat,
                &config,
                &cache,
                None,
                Tracer::disabled(),
                &governor,
            )
            .unwrap();
            assert!(out.degraded, "{workers} workers");
            plans.push(format!("{:?}|{:.6}", out.plan, out.plan.cost));
            charged.push(governor.states_used());
        }
        assert_eq!(plans[0], plans[1]);
        assert_eq!(plans[0], plans[2]);
        // speculative wave charges past a stop point are refunded, so
        // the charge counter itself matches the serial search exactly
        assert_eq!(charged[0], charged[1]);
        assert_eq!(charged[0], charged[2]);
    }
}
