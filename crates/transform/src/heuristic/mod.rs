//! Heuristic (imperative) transformations — §2.1.
//!
//! These are always applied when legal, in the paper's sequential order:
//! SPJ view merging, join elimination, subquery unnesting by merging,
//! filter predicate move-around, group pruning.

pub mod group_prune;
pub mod join_elim;
pub mod predicate_move;
pub mod unnest_merge;
pub mod view_merge;

use cbqt_catalog::Catalog;
use cbqt_common::Result;
use cbqt_qgm::QueryTree;

/// Which heuristic passes ran and how many rewrites each performed.
#[derive(Debug, Clone, Default)]
pub struct HeuristicReport {
    pub spj_views_merged: usize,
    pub joins_eliminated: usize,
    pub subqueries_merged: usize,
    pub predicates_pushed: usize,
    pub groups_pruned: usize,
}

impl HeuristicReport {
    pub fn total(&self) -> usize {
        self.spj_views_merged
            + self.joins_eliminated
            + self.subqueries_merged
            + self.predicates_pushed
            + self.groups_pruned
    }

    /// One-line human-readable summary (shared by EXPLAIN and the trace).
    pub fn summary(&self) -> String {
        format!(
            "{} SPJ view merge(s), {} join(s) eliminated, {} subquery merge(s), \
             {} predicate move(s), {} grouping set(s) pruned",
            self.spj_views_merged,
            self.joins_eliminated,
            self.subqueries_merged,
            self.predicates_pushed,
            self.groups_pruned,
        )
    }
}

/// Runs the full heuristic pipeline to a fixpoint (bounded).
pub fn apply_heuristics(tree: &mut QueryTree, catalog: &Catalog) -> Result<HeuristicReport> {
    apply_heuristics_with(tree, catalog, true)
}

/// Variant with unnesting-by-merging switchable (the Figure 3 experiment
/// disables *all* unnesting, including the imperative kind).
pub fn apply_heuristics_with(
    tree: &mut QueryTree,
    catalog: &Catalog,
    unnest_merge: bool,
) -> Result<HeuristicReport> {
    let mut report = HeuristicReport::default();
    // A couple of iterations are enough: transformations expose work for
    // each other (e.g. unnesting a single-table subquery after its inner
    // view was merged).
    for _ in 0..3 {
        let mut changed = 0;
        changed += add(
            &mut report.spj_views_merged,
            view_merge::merge_spj_views(tree, catalog)?,
        );
        changed += add(
            &mut report.joins_eliminated,
            join_elim::eliminate_joins(tree, catalog)?,
        );
        if unnest_merge {
            changed += add(
                &mut report.subqueries_merged,
                unnest_merge::unnest_by_merging(tree, catalog)?,
            );
        }
        changed += add(
            &mut report.predicates_pushed,
            predicate_move::push_filter_predicates(tree, catalog)?,
        );
        changed += add(
            &mut report.groups_pruned,
            group_prune::prune_groups(tree, catalog)?,
        );
        if changed == 0 {
            break;
        }
    }
    debug_assert!(
        tree.validate().is_ok(),
        "heuristics broke the tree: {:?}",
        tree.validate()
    );
    Ok(report)
}

fn add(counter: &mut usize, n: usize) -> usize {
    *counter += n;
    n
}

#[cfg(test)]
pub(crate) mod testutil {
    use cbqt_catalog::{Catalog, Column, Constraint, ForeignKey};
    use cbqt_common::DataType;
    use cbqt_qgm::{build_query_tree, QueryTree};
    use cbqt_sql::parse_query;

    /// The paper's running schema: locations, departments, employees,
    /// job_history (+ a small accounts table for window examples).
    pub fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let icol = |n: &str| Column {
            name: n.into(),
            data_type: DataType::Int,
            not_null: false,
        };
        let nncol = |n: &str| Column {
            name: n.into(),
            data_type: DataType::Int,
            not_null: true,
        };
        let scol = |n: &str| Column {
            name: n.into(),
            data_type: DataType::Str,
            not_null: false,
        };
        let loc = cat
            .add_table(
                "locations",
                vec![nncol("loc_id"), scol("country_id"), scol("city")],
                vec![Constraint::PrimaryKey(vec![0])],
            )
            .unwrap();
        let dept = cat
            .add_table(
                "departments",
                vec![nncol("dept_id"), scol("department_name"), icol("loc_id")],
                vec![
                    Constraint::PrimaryKey(vec![0]),
                    Constraint::ForeignKey(ForeignKey {
                        columns: vec![2],
                        parent: loc,
                        parent_columns: vec![0],
                    }),
                ],
            )
            .unwrap();
        let emp = cat
            .add_table(
                "employees",
                vec![
                    nncol("emp_id"),
                    scol("employee_name"),
                    icol("dept_id"),
                    icol("salary"),
                    icol("mgr_id"),
                ],
                vec![
                    Constraint::PrimaryKey(vec![0]),
                    Constraint::ForeignKey(ForeignKey {
                        columns: vec![2],
                        parent: dept,
                        parent_columns: vec![0],
                    }),
                ],
            )
            .unwrap();
        cat.add_table(
            "job_history",
            vec![
                nncol("emp_id"),
                scol("job_title"),
                icol("start_date"),
                icol("dept_id"),
            ],
            vec![Constraint::ForeignKey(ForeignKey {
                columns: vec![0],
                parent: emp,
                parent_columns: vec![0],
            })],
        )
        .unwrap();
        cat.add_table(
            "accounts",
            vec![nncol("acct_id"), icol("time"), icol("balance")],
            vec![],
        )
        .unwrap();
        cat.add_index("i_emp_dept", emp, vec![2], false).unwrap();
        cat.add_index("pk_dept", dept, vec![0], true).unwrap();
        cat
    }

    pub fn build(cat: &Catalog, sql: &str) -> QueryTree {
        build_query_tree(cat, &parse_query(sql).unwrap()).unwrap()
    }
}
