//! Filter predicate move-around (§2.1.3): pushes inexpensive filter
//! predicates from a block into the views it references so filtering
//! happens early, and generates transitive predicates from join
//! equivalence classes.
//!
//! Supported pushes:
//! * into plain SPJ sub-expressions of a view (always);
//! * into group-by views when the predicate lands on grouping
//!   expressions (pushed below the aggregation); predicates on aggregate
//!   outputs become HAVING conjuncts;
//! * through window functions when the predicate lands on every window's
//!   PARTITION BY columns (the paper's Q7 → Q8), or is an upper bound on
//!   the single ascending ORDER BY column of every window (running
//!   frames are unaffected by removing later rows);
//! * into every branch of a UNION ALL / UNION / INTERSECT / MINUS view.
//!
//! Expensive predicates (procedural functions / subqueries) are never
//! moved — predicate *pullup* (§2.2.6) is the cost-based counterpart.

use cbqt_catalog::Catalog;
use cbqt_common::Result;
use cbqt_qgm::{
    BinOp, BlockId, JoinInfo, QExpr, QTableSource, QueryBlock, QueryTree, RefId, SelectBlock,
};

/// Runs predicate pushdown + transitivity to fixpoint (bounded); returns
/// the number of predicates moved or generated.
pub fn push_filter_predicates(tree: &mut QueryTree, catalog: &Catalog) -> Result<usize> {
    let mut total = 0;
    for _ in 0..4 {
        let t = generate_transitive(tree)?;
        let p = push_once(tree, catalog)?;
        total += t + p;
        if t + p == 0 {
            break;
        }
    }
    Ok(total)
}

/// One pass of pushing single-view predicates into their views.
fn push_once(tree: &mut QueryTree, _catalog: &Catalog) -> Result<usize> {
    let mut moved = 0;
    for id in tree.bottom_up() {
        let Ok(QueryBlock::Select(_)) = tree.block(id) else {
            continue;
        };
        // iterate conjuncts by index; rebuild the kept list
        let conjuncts = tree.select(id)?.where_conjuncts.clone();
        let mut kept = Vec::with_capacity(conjuncts.len());
        for c in conjuncts {
            if try_push_conjunct(tree, id, &c)? {
                moved += 1;
            } else {
                kept.push(c);
            }
        }
        tree.select_mut(id)?.where_conjuncts = kept;
    }
    Ok(moved)
}

/// Attempts to push one conjunct of block `id` into a view it solely
/// references. Returns true when pushed (the caller then drops it).
fn try_push_conjunct(tree: &mut QueryTree, id: BlockId, c: &QExpr) -> Result<bool> {
    if c.is_expensive() {
        return Ok(false);
    }
    let refs = c.referenced_tables();
    let s = tree.select(id)?;
    let declared = s.declared_refs();
    let local: Vec<RefId> = refs
        .iter()
        .copied()
        .filter(|r| declared.contains(r))
        .collect();
    if local.len() != 1 {
        return Ok(false);
    }
    let target = local[0];
    let Some(t) = s.table(target) else {
        return Ok(false);
    };
    if !matches!(t.join, JoinInfo::Inner) {
        return Ok(false);
    }
    let QTableSource::View(vid) = t.source else {
        return Ok(false);
    };
    push_into_block(tree, vid, target, c)
}

/// Pushes `c` (expressed over the view's outputs) into view block `vid`.
fn push_into_block(tree: &mut QueryTree, vid: BlockId, view_ref: RefId, c: &QExpr) -> Result<bool> {
    match tree.block(vid)? {
        QueryBlock::Select(v) => {
            if v.rownum_limit.is_some() || !v.order_by.is_empty() && v.rownum_limit.is_some() {
                return Ok(false);
            }
            if v.rownum_limit.is_some() {
                return Ok(false);
            }
            // substitute output refs with the underlying expressions
            let outputs: Vec<QExpr> = v.select.iter().map(|i| i.expr.clone()).collect();
            let mut pushed = c.clone();
            let mut failed = false;
            pushed.rewrite(&mut |n| match n {
                QExpr::Col { table, column } if *table == view_ref => match outputs.get(*column) {
                    Some(e) => Some(e.clone()),
                    None => {
                        failed = true;
                        None
                    }
                },
                _ => None,
            });
            if failed {
                return Ok(false);
            }
            let v = tree.select(vid)?;
            let has_windows = v.select.iter().any(|i| i.expr.contains_window());
            let aggregated = v.is_aggregated();
            if pushed.contains_agg() {
                // lands on aggregate outputs → becomes HAVING (sound for
                // grouping sets too: HAVING applies per output group row)
                tree.select_mut(vid)?.having.push(pushed);
                return Ok(true);
            }
            if aggregated {
                // must land on grouping expressions only
                let gb = &v.group_by;
                let ok = exprs_within(&pushed, gb);
                if !ok || v.grouping_sets.is_some() {
                    // grouping-set views are handled by group pruning
                    return Ok(false);
                }
            }
            if has_windows && !window_push_ok(v, &pushed, c) {
                return Ok(false);
            }
            if v.distinct {
                // pushing below DISTINCT is always sound for filters
            }
            tree.select_mut(vid)?.where_conjuncts.push(pushed);
            Ok(true)
        }
        QueryBlock::SetOp(so) => {
            let inputs = so.inputs.clone();
            // push a copy into every branch; each branch sees the conjunct
            // expressed over ITS select list
            let mut rewritten = Vec::with_capacity(inputs.len());
            for b in &inputs {
                let QueryBlock::Select(bs) = tree.block(*b)? else {
                    return Ok(false); // nested set ops: skip
                };
                if bs.is_aggregated() && !exprs_within_outputs(c, bs, view_ref) {
                    return Ok(false);
                }
                let outputs: Vec<QExpr> = bs.select.iter().map(|i| i.expr.clone()).collect();
                let mut pushed = c.clone();
                let mut failed = false;
                pushed.rewrite(&mut |n| match n {
                    QExpr::Col { table, column } if *table == view_ref => {
                        match outputs.get(*column) {
                            Some(e) => Some(e.clone()),
                            None => {
                                failed = true;
                                None
                            }
                        }
                    }
                    _ => None,
                });
                if failed || pushed.contains_agg() {
                    return Ok(false);
                }
                rewritten.push(pushed);
            }
            for (b, p) in inputs.iter().zip(rewritten) {
                tree.select_mut(*b)?.where_conjuncts.push(p);
            }
            Ok(true)
        }
    }
}

/// All column references of `e` appear among `allowed` expressions.
fn exprs_within(e: &QExpr, allowed: &[QExpr]) -> bool {
    let mut cols = Vec::new();
    e.collect_cols(&mut cols);
    cols.iter()
        .all(|(r, c)| allowed.iter().any(|a| *a == QExpr::col(*r, *c)))
}

fn exprs_within_outputs(c: &QExpr, bs: &SelectBlock, view_ref: RefId) -> bool {
    // conjunct references view outputs; in an aggregated branch, those
    // outputs must be grouping expressions
    let mut cols = Vec::new();
    c.collect_cols(&mut cols);
    cols.iter().all(|(r, idx)| {
        if *r != view_ref {
            return true;
        }
        match bs.select.get(*idx) {
            Some(item) => bs.group_by.contains(&item.expr),
            None => false,
        }
    })
}

/// Is pushing below the view's window functions sound?
fn window_push_ok(v: &SelectBlock, pushed: &QExpr, _orig: &QExpr) -> bool {
    let mut cols = Vec::new();
    pushed.collect_cols(&mut cols);
    let col_exprs: Vec<QExpr> = cols.iter().map(|(r, c)| QExpr::col(*r, *c)).collect();
    let mut ok = true;
    for item in &v.select {
        item.expr.walk(&mut |e| {
            if let QExpr::Win {
                partition_by,
                order_by,
                ..
            } = e
            {
                let in_pby = col_exprs.iter().all(|ce| partition_by.contains(ce));
                if in_pby {
                    return;
                }
                // upper bound on the single ascending ORDER BY column:
                // running frames of retained rows are unaffected
                let upper_bound_ok = order_by.len() == 1
                    && !order_by[0].desc
                    && col_exprs.len() == 1
                    && order_by[0].expr == col_exprs[0]
                    && matches!(
                        pushed,
                        QExpr::Bin {
                            op: BinOp::Lt | BinOp::LtEq,
                            ..
                        }
                    );
                if !upper_bound_ok {
                    ok = false;
                }
            }
        });
    }
    ok
}

/// Generates transitive single-table predicates from equality classes:
/// `a.x = b.y AND a.x > 5` implies `b.y > 5`. Only literal comparisons
/// are propagated, only across Inner tables, and only when the result is
/// not already present.
fn generate_transitive(tree: &mut QueryTree) -> Result<usize> {
    let mut added = 0;
    for id in tree.bottom_up() {
        let Ok(QueryBlock::Select(s)) = tree.block(id) else {
            continue;
        };
        let declared = s.declared_refs();
        let inner: std::collections::HashSet<RefId> = s
            .tables
            .iter()
            .filter(|t| matches!(t.join, JoinInfo::Inner))
            .map(|t| t.refid)
            .collect();
        // equivalence classes over (ref, col)
        let mut classes: Vec<Vec<(RefId, usize)>> = Vec::new();
        for c in &s.where_conjuncts {
            if let Some((a, b)) = c.as_col_equality() {
                if !inner.contains(&a.0) || !inner.contains(&b.0) {
                    continue;
                }
                let ia = classes.iter().position(|cl| cl.contains(&a));
                let ib = classes.iter().position(|cl| cl.contains(&b));
                match (ia, ib) {
                    (Some(x), Some(y)) if x != y => {
                        let merged = classes.remove(y.max(x));
                        classes[x.min(y)].extend(merged);
                    }
                    (Some(x), None) => classes[x].push(b),
                    (None, Some(y)) => classes[y].push(a),
                    (None, None) => classes.push(vec![a, b]),
                    _ => {}
                }
            }
        }
        // literal comparisons on class members
        let mut new_conjuncts: Vec<QExpr> = Vec::new();
        for c in &s.where_conjuncts {
            let QExpr::Bin { op, left, right } = c else {
                continue;
            };
            if !op.is_comparison() {
                continue;
            }
            let (col, lit, col_left) = match (&**left, &**right) {
                (QExpr::Col { table, column }, QExpr::Lit(v)) => ((*table, *column), v, true),
                (QExpr::Lit(v), QExpr::Col { table, column }) => ((*table, *column), v, false),
                _ => continue,
            };
            if !declared.contains(&col.0) {
                continue;
            }
            let Some(class) = classes.iter().find(|cl| cl.contains(&col)) else {
                continue;
            };
            for &(r, cc) in class {
                if (r, cc) == col {
                    continue;
                }
                let derived = if col_left {
                    QExpr::bin(*op, QExpr::col(r, cc), QExpr::Lit(lit.clone()))
                } else {
                    QExpr::bin(*op, QExpr::Lit(lit.clone()), QExpr::col(r, cc))
                };
                if !s.where_conjuncts.contains(&derived) && !new_conjuncts.contains(&derived) {
                    new_conjuncts.push(derived);
                }
            }
        }
        if !new_conjuncts.is_empty() {
            added += new_conjuncts.len();
            tree.select_mut(id)?.where_conjuncts.extend(new_conjuncts);
        }
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::testutil::{build, catalog};

    #[test]
    fn pushes_into_group_by_view_on_grouping_key() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT v.avg_sal FROM (SELECT dept_id, AVG(salary) avg_sal FROM employees \
             GROUP BY dept_id) v WHERE v.dept_id = 5",
        );
        let n = push_filter_predicates(&mut tree, &cat).unwrap();
        assert_eq!(n, 1);
        tree.validate().unwrap();
        let root = tree.select(tree.root).unwrap();
        assert!(root.where_conjuncts.is_empty());
        let vid = root.view_blocks()[0];
        assert_eq!(tree.select(vid).unwrap().where_conjuncts.len(), 1);
    }

    #[test]
    fn predicate_on_aggregate_output_becomes_having() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT v.dept_id FROM (SELECT dept_id, AVG(salary) avg_sal FROM employees \
             GROUP BY dept_id) v WHERE v.avg_sal > 100",
        );
        let n = push_filter_predicates(&mut tree, &cat).unwrap();
        assert_eq!(n, 1);
        let root = tree.select(tree.root).unwrap();
        let vid = root.view_blocks()[0];
        assert_eq!(tree.select(vid).unwrap().having.len(), 1);
    }

    #[test]
    fn paper_q7_to_q8_window_pushdown() {
        // both the PARTITION BY predicate and the ORDER BY upper bound push
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT acct_id, time, ravg FROM \
             (SELECT acct_id, time, AVG(balance) OVER (PARTITION BY acct_id ORDER BY time) ravg \
              FROM accounts) v \
             WHERE acct_id = 17 AND time <= 12",
        );
        let n = push_filter_predicates(&mut tree, &cat).unwrap();
        assert_eq!(n, 2);
        let root = tree.select(tree.root).unwrap();
        assert!(root.where_conjuncts.is_empty());
        let vid = root.view_blocks()[0];
        assert_eq!(tree.select(vid).unwrap().where_conjuncts.len(), 2);
    }

    #[test]
    fn lower_bound_on_window_order_by_not_pushed() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT acct_id, ravg FROM \
             (SELECT acct_id, time, AVG(balance) OVER (PARTITION BY acct_id ORDER BY time) ravg \
              FROM accounts) v \
             WHERE time > 12",
        );
        // time > 12 would change running averages of retained rows
        assert_eq!(push_filter_predicates(&mut tree, &cat).unwrap(), 0);
    }

    #[test]
    fn pushes_into_union_all_branches() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT v.id FROM \
             (SELECT emp_id id FROM employees UNION ALL SELECT emp_id id FROM job_history) v \
             WHERE v.id < 100",
        );
        let n = push_filter_predicates(&mut tree, &cat).unwrap();
        assert_eq!(n, 1);
        tree.validate().unwrap();
        let root = tree.select(tree.root).unwrap();
        let vid = root.view_blocks()[0];
        let QueryBlock::SetOp(so) = tree.block(vid).unwrap() else {
            panic!()
        };
        for b in &so.inputs {
            assert_eq!(tree.select(*b).unwrap().where_conjuncts.len(), 1);
        }
    }

    #[test]
    fn expensive_predicate_not_pushed() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT v.dept_id FROM (SELECT dept_id, AVG(salary) a FROM employees \
             GROUP BY dept_id) v WHERE EXPENSIVE(v.dept_id, 10) > 0",
        );
        assert_eq!(push_filter_predicates(&mut tree, &cat).unwrap(), 0);
    }

    #[test]
    fn predicate_on_non_group_column_not_pushed() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT v.m FROM (SELECT dept_id, MAX(salary) m, MIN(salary) mn FROM employees \
             GROUP BY dept_id) v WHERE v.m - v.mn > 10",
        );
        // references aggregates → having push
        let n = push_filter_predicates(&mut tree, &cat).unwrap();
        assert_eq!(n, 1);
        let root = tree.select(tree.root).unwrap();
        let vid = root.view_blocks()[0];
        assert_eq!(tree.select(vid).unwrap().having.len(), 1);
    }

    #[test]
    fn transitive_predicates_generated() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT e.employee_name FROM employees e, departments d \
             WHERE e.dept_id = d.dept_id AND d.dept_id = 7",
        );
        let n = push_filter_predicates(&mut tree, &cat).unwrap();
        assert_eq!(n, 1);
        let s = tree.select(tree.root).unwrap();
        // e.dept_id = 7 was derived
        assert_eq!(s.where_conjuncts.len(), 3);
    }

    #[test]
    fn rownum_view_blocks_push() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT v.employee_name FROM \
             (SELECT employee_name, salary FROM employees WHERE rownum <= 5) v \
             WHERE v.salary > 10",
        );
        assert_eq!(push_filter_predicates(&mut tree, &cat).unwrap(), 0);
    }
}
