//! SPJ view merging (§2.1, §3.1 ordering): inline views without
//! distinct / grouping / windows / limits are merged into their parent
//! block, removing query-block boundaries so the join enumerator can
//! reorder across them.

use crate::util::{dedup_aliases, is_spj, substitute_view_columns};
use cbqt_catalog::Catalog;
use cbqt_common::Result;
use cbqt_qgm::{JoinInfo, QTableSource, QueryBlock, QueryTree};

/// Merges every mergeable SPJ view, bottom-up, until none remain.
/// Returns the number of views merged.
pub fn merge_spj_views(tree: &mut QueryTree, _catalog: &Catalog) -> Result<usize> {
    let mut merged = 0;
    loop {
        let Some((parent, view_ref, view_block)) = find_candidate(tree)? else {
            return Ok(merged);
        };
        // detach the view block
        let QueryBlock::Select(mut v) = tree.take_block(view_block)? else {
            unreachable!("candidate is checked to be a SELECT block");
        };
        {
            let p = tree.select(parent)?;
            dedup_aliases(p, &mut v.tables, view_block);
        }
        let outputs: Vec<_> = v.select.iter().map(|i| i.expr.clone()).collect();
        {
            let p = tree.select_mut(parent)?;
            let pos = p
                .tables
                .iter()
                .position(|t| t.refid == view_ref)
                .expect("view ref must exist in parent");
            p.tables.remove(pos);
            // keep join order roughly stable: splice at the same spot
            for (i, t) in v.tables.drain(..).enumerate() {
                p.tables.insert(pos + i, t);
            }
            p.where_conjuncts.append(&mut v.where_conjuncts);
        }
        substitute_view_columns(tree, view_ref, &outputs);
        merged += 1;
    }
}

/// Finds `(parent_block, view_refid, view_block)` for one mergeable view.
fn find_candidate(
    tree: &QueryTree,
) -> Result<Option<(cbqt_qgm::BlockId, cbqt_qgm::RefId, cbqt_qgm::BlockId)>> {
    for id in tree.bottom_up() {
        let Ok(QueryBlock::Select(s)) = tree.block(id) else {
            continue;
        };
        for t in &s.tables {
            if !matches!(t.join, JoinInfo::Inner) {
                continue;
            }
            let QTableSource::View(v) = t.source else {
                continue;
            };
            let Ok(QueryBlock::Select(vs)) = tree.block(v) else {
                continue;
            };
            if !is_spj(vs) {
                continue;
            }
            // a view that the parent's sibling blocks are correlated to is
            // still fine — refids are stable under merging
            return Ok(Some((id, t.refid, v)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::testutil::{build, catalog};

    #[test]
    fn merges_simple_spj_view() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT v.n FROM (SELECT e.employee_name n, e.dept_id d FROM employees e \
             WHERE e.salary > 1000) v WHERE v.d = 3",
        );
        let n = merge_spj_views(&mut tree, &cat).unwrap();
        assert_eq!(n, 1);
        tree.validate().unwrap();
        let s = tree.select(tree.root).unwrap();
        assert_eq!(s.tables.len(), 1);
        assert!(matches!(s.tables[0].source, QTableSource::Base(_)));
        // both predicates now in the merged block
        assert_eq!(s.where_conjuncts.len(), 2);
    }

    #[test]
    fn merges_nested_views() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT w.n FROM (SELECT v.n n FROM (SELECT employee_name n FROM employees) v) w",
        );
        let n = merge_spj_views(&mut tree, &cat).unwrap();
        assert_eq!(n, 2);
        tree.validate().unwrap();
        assert_eq!(tree.select(tree.root).unwrap().tables.len(), 1);
    }

    #[test]
    fn does_not_merge_group_by_view() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT v.a FROM (SELECT AVG(salary) a, dept_id FROM employees GROUP BY dept_id) v",
        );
        let n = merge_spj_views(&mut tree, &cat).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn does_not_merge_distinct_view() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT v.dept_id FROM (SELECT DISTINCT dept_id FROM employees) v",
        );
        assert_eq!(merge_spj_views(&mut tree, &cat).unwrap(), 0);
    }

    #[test]
    fn merge_handles_alias_collision() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT e.employee_name, v.n FROM employees e, \
             (SELECT e.employee_name n FROM employees e) v",
        );
        assert_eq!(merge_spj_views(&mut tree, &cat).unwrap(), 1);
        tree.validate().unwrap();
        let s = tree.select(tree.root).unwrap();
        assert_eq!(s.tables.len(), 2);
        assert_ne!(
            s.tables[0].alias.to_ascii_lowercase(),
            s.tables[1].alias.to_ascii_lowercase()
        );
    }

    #[test]
    fn merged_view_exposes_correlation_targets() {
        // a subquery correlated to the view's output keeps working
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT v.d FROM (SELECT dept_id d FROM employees) v WHERE EXISTS \
             (SELECT 1 FROM departments x WHERE x.dept_id = v.d)",
        );
        assert_eq!(merge_spj_views(&mut tree, &cat).unwrap(), 1);
        tree.validate().unwrap();
    }
}
