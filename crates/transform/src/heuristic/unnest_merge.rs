//! Subquery unnesting by merging (§2.1.1) — the *imperative* category of
//! unnesting: a single-table EXISTS / IN / ANY / NOT EXISTS / NOT IN /
//! ALL subquery is merged into its containing block as a semijoin or
//! antijoin annotation on the subquery's table.
//!
//! Multi-table and aggregated subqueries require inline views and are
//! handled by the *cost-based* unnesting transformation (§2.2.1).

use crate::util::{dedup_aliases, invert_comparison, provably_not_null};
use cbqt_catalog::Catalog;
use cbqt_common::Result;
use cbqt_qgm::{BlockId, JoinInfo, QExpr, Quant, QueryBlock, QueryTree, SelectBlock, SubqKind};

/// Applies merging unnesting everywhere; returns the number of
/// subqueries unnested.
pub fn unnest_by_merging(tree: &mut QueryTree, catalog: &Catalog) -> Result<usize> {
    let mut count = 0;
    loop {
        let Some((block, conj_idx)) = find_candidate(tree, catalog)? else {
            return Ok(count);
        };
        apply(tree, block, conj_idx, catalog)?;
        count += 1;
    }
}

/// Is this subquery block mergeable (single table, SPJ, no nested
/// subqueries, correlations only via its WHERE)?
fn mergeable(tree: &QueryTree, sub: BlockId) -> bool {
    let Ok(QueryBlock::Select(s)) = tree.block(sub) else {
        return false;
    };
    if s.tables.len() != 1 || !matches!(s.tables[0].join, JoinInfo::Inner) {
        return false;
    }
    if !s.group_by.is_empty()
        || s.grouping_sets.is_some()
        || !s.having.is_empty()
        || s.rownum_limit.is_some()
        || s.select
            .iter()
            .any(|i| i.expr.contains_agg() || i.expr.contains_window())
    {
        return false;
    }
    // nested subqueries inside the WHERE would end up in join ON
    // conditions, which the executor does not evaluate subplans for
    let mut has_subq = false;
    s.for_each_expr(&mut |e| {
        if e.contains_subquery() {
            has_subq = true;
        }
    });
    !has_subq
}

fn find_candidate(tree: &QueryTree, catalog: &Catalog) -> Result<Option<(BlockId, usize)>> {
    for id in tree.bottom_up() {
        let Ok(QueryBlock::Select(s)) = tree.block(id) else {
            continue;
        };
        for (i, c) in s.where_conjuncts.iter().enumerate() {
            let QExpr::Subq { block, kind } = c else {
                continue;
            };
            if !mergeable(tree, *block) {
                continue;
            }
            let sub = tree.select(*block)?;
            match kind {
                SubqKind::Exists { .. } => return Ok(Some((id, i))),
                SubqKind::In { lhs, negated } => {
                    if *negated {
                        // NOT IN is unnestable as a null-aware antijoin;
                        // plain antijoin when both sides are non-null
                        let _ = (lhs, sub);
                    }
                    return Ok(Some((id, i)));
                }
                SubqKind::Quant { op, quant, lhs } => {
                    if !op.is_comparison() {
                        continue;
                    }
                    match quant {
                        Quant::Any => return Ok(Some((id, i))),
                        Quant::All => {
                            // ALL is only unnestable when NEITHER side of
                            // the connecting condition can be NULL
                            // (§2.1.1): a NULL on either side makes the
                            // comparison UNKNOWN, which ALL must treat as
                            // a failure — an antijoin cannot.
                            if quant_sides_not_null(tree, catalog, id, *block, lhs)? {
                                return Ok(Some((id, i)));
                            }
                        }
                    }
                }
                SubqKind::Scalar => {}
            }
        }
    }
    Ok(None)
}

fn quant_sides_not_null(
    tree: &QueryTree,
    catalog: &Catalog,
    outer: BlockId,
    sub: BlockId,
    lhs: &QExpr,
) -> Result<bool> {
    let outer_s = tree.select(outer)?;
    let sub_s = tree.select(sub)?;
    let out_ok = provably_not_null(tree, catalog, sub_s, &sub_s.select[0].expr);
    let lhs_ok = provably_not_null(tree, catalog, outer_s, lhs);
    Ok(out_ok && lhs_ok)
}

fn apply(tree: &mut QueryTree, block: BlockId, conj_idx: usize, catalog: &Catalog) -> Result<()> {
    // detach the conjunct
    let conj = tree.select_mut(block)?.where_conjuncts.remove(conj_idx);
    let QExpr::Subq { block: sub, kind } = conj else {
        return Err(cbqt_common::Error::transform("expected subquery conjunct"));
    };
    let QueryBlock::Select(mut s) = tree.take_block(sub)? else {
        return Err(cbqt_common::Error::transform("expected SELECT subquery"));
    };
    let mut on: Vec<QExpr> = s.where_conjuncts.drain(..).collect();
    let (join, extra_on) = match kind {
        SubqKind::Exists { negated } => {
            let j = if negated {
                JoinInfo::Anti {
                    on: vec![],
                    null_aware: false,
                }
            } else {
                JoinInfo::Semi { on: vec![] }
            };
            (j, vec![])
        }
        SubqKind::In { lhs, negated } => {
            let conds: Vec<QExpr> = lhs
                .iter()
                .zip(s.select.iter())
                .map(|(l, item)| QExpr::eq(l.clone(), item.expr.clone()))
                .collect();
            if negated {
                // null-aware unless both sides are provably non-null
                let outer_s = tree.select(block)?;
                let all_nn = lhs
                    .iter()
                    .all(|l| provably_not_null(tree, catalog, outer_s, l))
                    && s.select
                        .iter()
                        .all(|item| provably_not_null(tree, catalog, &s, &item.expr));
                (
                    JoinInfo::Anti {
                        on: vec![],
                        null_aware: !all_nn,
                    },
                    conds,
                )
            } else {
                (JoinInfo::Semi { on: vec![] }, conds)
            }
        }
        SubqKind::Quant { op, quant, lhs } => {
            let cond = match quant {
                Quant::Any => QExpr::bin(op, (*lhs).clone(), s.select[0].expr.clone()),
                Quant::All => {
                    let inv = invert_comparison(op)
                        .ok_or_else(|| cbqt_common::Error::transform("bad ALL operator"))?;
                    QExpr::bin(inv, (*lhs).clone(), s.select[0].expr.clone())
                }
            };
            let j = match quant {
                Quant::Any => JoinInfo::Semi { on: vec![] },
                Quant::All => JoinInfo::Anti {
                    on: vec![],
                    null_aware: false,
                },
            };
            (j, vec![cond])
        }
        SubqKind::Scalar => {
            return Err(cbqt_common::Error::transform(
                "scalar subquery cannot merge",
            ))
        }
    };
    on.extend(extra_on);

    let mut incoming = std::mem::take(&mut s.tables);
    {
        let p = tree.select(block)?;
        dedup_aliases(p, &mut incoming, sub);
    }
    let mut table = incoming.pop().expect("mergeable subquery has one table");
    table.join = match join {
        JoinInfo::Semi { .. } => JoinInfo::Semi { on },
        JoinInfo::Anti { null_aware, .. } => JoinInfo::Anti { on, null_aware },
        other => other,
    };
    tree.select_mut(block)?.tables.push(table);
    Ok(())
}

/// Exposed for tests: checks mergeability of a specific subquery block.
pub fn is_mergeable_subquery(tree: &QueryTree, sub: BlockId) -> bool {
    mergeable(tree, sub)
}

/// Helper for other modules: true if a SelectBlock has exactly one table.
pub fn single_table(s: &SelectBlock) -> bool {
    s.tables.len() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::testutil::{build, catalog};
    use cbqt_qgm::BinOp;

    #[test]
    fn exists_becomes_semijoin() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT d.department_name FROM departments d WHERE EXISTS \
             (SELECT 1 FROM employees e WHERE e.dept_id = d.dept_id AND e.salary > 200000)",
        );
        assert_eq!(unnest_by_merging(&mut tree, &cat).unwrap(), 1);
        tree.validate().unwrap();
        let s = tree.select(tree.root).unwrap();
        assert_eq!(s.tables.len(), 2);
        match &s.tables[1].join {
            JoinInfo::Semi { on } => assert_eq!(on.len(), 2),
            other => panic!("expected semi, got {other:?}"),
        }
    }

    #[test]
    fn not_exists_becomes_antijoin() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT d.department_name FROM departments d WHERE NOT EXISTS \
             (SELECT 1 FROM employees e WHERE e.dept_id = d.dept_id)",
        );
        assert_eq!(unnest_by_merging(&mut tree, &cat).unwrap(), 1);
        let s = tree.select(tree.root).unwrap();
        assert!(matches!(
            s.tables[1].join,
            JoinInfo::Anti {
                null_aware: false,
                ..
            }
        ));
    }

    #[test]
    fn in_becomes_semijoin_with_connecting_condition() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT d.department_name FROM departments d WHERE d.dept_id IN \
             (SELECT e.dept_id FROM employees e WHERE e.salary > 100)",
        );
        assert_eq!(unnest_by_merging(&mut tree, &cat).unwrap(), 1);
        let s = tree.select(tree.root).unwrap();
        match &s.tables[1].join {
            JoinInfo::Semi { on } => assert_eq!(on.len(), 2), // salary filter + connect
            other => panic!("expected semi, got {other:?}"),
        }
    }

    #[test]
    fn not_in_nullable_is_null_aware() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT d.department_name FROM departments d WHERE d.dept_id NOT IN \
             (SELECT e.dept_id FROM employees e)",
        );
        assert_eq!(unnest_by_merging(&mut tree, &cat).unwrap(), 1);
        let s = tree.select(tree.root).unwrap();
        // employees.dept_id is nullable → null-aware antijoin
        assert!(matches!(
            s.tables[1].join,
            JoinInfo::Anti {
                null_aware: true,
                ..
            }
        ));
    }

    #[test]
    fn not_in_non_null_is_plain_anti() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT e.employee_name FROM employees e WHERE e.emp_id NOT IN \
             (SELECT j.emp_id FROM job_history j)",
        );
        assert_eq!(unnest_by_merging(&mut tree, &cat).unwrap(), 1);
        let s = tree.select(tree.root).unwrap();
        assert!(matches!(
            s.tables[1].join,
            JoinInfo::Anti {
                null_aware: false,
                ..
            }
        ));
    }

    #[test]
    fn any_becomes_semijoin() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT e.employee_name FROM employees e WHERE e.salary > ANY \
             (SELECT e2.salary FROM employees e2 WHERE e2.dept_id = 1)",
        );
        assert_eq!(unnest_by_merging(&mut tree, &cat).unwrap(), 1);
        let s = tree.select(tree.root).unwrap();
        assert!(matches!(s.tables[1].join, JoinInfo::Semi { .. }));
    }

    #[test]
    fn all_on_nullable_column_not_merged() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT e.employee_name FROM employees e WHERE e.salary > ALL \
             (SELECT e2.salary FROM employees e2)", // salary nullable
        );
        assert_eq!(unnest_by_merging(&mut tree, &cat).unwrap(), 0);
    }

    #[test]
    fn all_on_non_null_column_merged_with_inverted_op() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT e.employee_name FROM employees e WHERE e.emp_id > ALL \
             (SELECT j.emp_id FROM job_history j)", // emp_id NOT NULL
        );
        assert_eq!(unnest_by_merging(&mut tree, &cat).unwrap(), 1);
        let s = tree.select(tree.root).unwrap();
        match &s.tables[1].join {
            JoinInfo::Anti { on, .. } => {
                // inverted: emp_id <= j.emp_id
                assert!(matches!(
                    on[0],
                    QExpr::Bin {
                        op: BinOp::LtEq,
                        ..
                    }
                ));
            }
            other => panic!("expected anti, got {other:?}"),
        }
    }

    #[test]
    fn multi_table_subquery_not_merged() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT e.employee_name FROM employees e WHERE e.dept_id IN \
             (SELECT d.dept_id FROM departments d, locations l WHERE d.loc_id = l.loc_id)",
        );
        assert_eq!(unnest_by_merging(&mut tree, &cat).unwrap(), 0);
    }

    #[test]
    fn aggregated_subquery_not_merged() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT e.employee_name FROM employees e WHERE e.salary > \
             (SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e.dept_id)",
        );
        assert_eq!(unnest_by_merging(&mut tree, &cat).unwrap(), 0);
    }
}
