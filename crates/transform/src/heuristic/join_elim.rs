//! Join elimination (§2.1.2): removes a table when constraints guarantee
//! the join cannot change the result.
//!
//! Two patterns:
//! * **PK–FK**: an inner join from a child's foreign key to the parent's
//!   primary key, where no other column of the parent is used — Q4 → Q6.
//!   If the FK columns are nullable, `IS NOT NULL` filters are added.
//! * **outer join on a unique key**: a left-outer-joined table whose ON
//!   condition equi-joins its unique key, with no other column used —
//!   Q5 → Q6.

use crate::util::table_used_elsewhere;
use cbqt_catalog::Catalog;
use cbqt_common::Result;
use cbqt_qgm::{JoinInfo, QExpr, QTableSource, QueryBlock, QueryTree, RefId};
use std::collections::HashSet;

/// Applies join elimination everywhere; returns the number of tables
/// removed.
pub fn eliminate_joins(tree: &mut QueryTree, catalog: &Catalog) -> Result<usize> {
    let mut removed = 0;
    loop {
        if let Some(()) = eliminate_one_pk_fk(tree, catalog)? {
            removed += 1;
            continue;
        }
        if let Some(()) = eliminate_one_outer_unique(tree, catalog)? {
            removed += 1;
            continue;
        }
        return Ok(removed);
    }
}

fn eliminate_one_pk_fk(tree: &mut QueryTree, catalog: &Catalog) -> Result<Option<()>> {
    for id in tree.bottom_up() {
        let Ok(QueryBlock::Select(s)) = tree.block(id) else {
            continue;
        };
        for parent_t in &s.tables {
            if !matches!(parent_t.join, JoinInfo::Inner) {
                continue;
            }
            let QTableSource::Base(ptid) = parent_t.source else {
                continue;
            };
            let ptable = catalog.table(ptid)?;
            let Some(pk) = ptable.primary_key() else {
                continue;
            };
            // find a child table joining its FK to this PK
            for child_t in &s.tables {
                if child_t.refid == parent_t.refid {
                    continue;
                }
                let QTableSource::Base(ctid) = child_t.source else {
                    continue;
                };
                let ctable = catalog.table(ctid)?;
                for fk in ctable.foreign_keys() {
                    if fk.parent != ptid || fk.parent_columns != pk {
                        continue;
                    }
                    // do all pk-fk join conjuncts exist?
                    let mut join_idx: Vec<usize> = Vec::new();
                    let mut matched_pairs = 0;
                    for (i, c) in s.where_conjuncts.iter().enumerate() {
                        if let Some(((t1, c1), (t2, c2))) = c.as_col_equality() {
                            let pair = if t1 == child_t.refid && t2 == parent_t.refid {
                                Some((c1, c2))
                            } else if t2 == child_t.refid && t1 == parent_t.refid {
                                Some((c2, c1))
                            } else {
                                None
                            };
                            if let Some((fk_col, pk_col)) = pair {
                                if let Some(k) = fk.columns.iter().position(|&fc| fc == fk_col) {
                                    if fk.parent_columns[k] == pk_col {
                                        join_idx.push(i);
                                        matched_pairs += 1;
                                    }
                                }
                            }
                        }
                    }
                    if matched_pairs < fk.columns.len() {
                        continue;
                    }
                    // parent must be unused outside those join conjuncts
                    let excl: HashSet<usize> = join_idx.iter().copied().collect();
                    if table_used_elsewhere(tree, parent_t.refid, id, &excl) {
                        continue;
                    }
                    let parent_ref = parent_t.refid;
                    let child_ref = child_t.refid;
                    let fk_cols = fk.columns.clone();
                    let nullable: Vec<usize> = fk_cols
                        .iter()
                        .copied()
                        .filter(|&c| !ctable.columns[c].not_null)
                        .collect();
                    apply_removal(tree, id, parent_ref, &excl, child_ref, &nullable)?;
                    return Ok(Some(()));
                }
            }
        }
    }
    Ok(None)
}

fn eliminate_one_outer_unique(tree: &mut QueryTree, catalog: &Catalog) -> Result<Option<()>> {
    for id in tree.bottom_up() {
        let Ok(QueryBlock::Select(s)) = tree.block(id) else {
            continue;
        };
        for t in &s.tables {
            let JoinInfo::LeftOuter { on } = &t.join else {
                continue;
            };
            let QTableSource::Base(tid) = t.source else {
                continue;
            };
            let table = catalog.table(tid)?;
            // every ON conjunct must be an equality with t's column on one
            // side; the equated t-columns must form a unique key
            let mut t_cols: Vec<usize> = Vec::new();
            let mut ok = true;
            for c in on {
                match c.as_col_equality() {
                    Some(((t1, c1), (t2, c2))) => {
                        if t1 == t.refid && t2 != t.refid {
                            t_cols.push(c1);
                        } else if t2 == t.refid && t1 != t.refid {
                            t_cols.push(c2);
                        } else {
                            ok = false;
                        }
                    }
                    None => ok = false,
                }
            }
            if !ok || t_cols.is_empty() || !table.is_unique_key(&t_cols) {
                continue;
            }
            if table_used_elsewhere(tree, t.refid, id, &HashSet::new()) {
                continue;
            }
            let refid = t.refid;
            let blk = tree.select_mut(id)?;
            blk.tables.retain(|x| x.refid != refid);
            return Ok(Some(()));
        }
    }
    Ok(None)
}

fn apply_removal(
    tree: &mut QueryTree,
    block: cbqt_qgm::BlockId,
    parent_ref: RefId,
    join_conjuncts: &HashSet<usize>,
    child_ref: RefId,
    nullable_fk_cols: &[usize],
) -> Result<()> {
    let blk = tree.select_mut(block)?;
    blk.tables.retain(|x| x.refid != parent_ref);
    let mut kept = Vec::new();
    for (i, c) in blk.where_conjuncts.drain(..).enumerate() {
        if !join_conjuncts.contains(&i) {
            kept.push(c);
        }
    }
    for &c in nullable_fk_cols {
        kept.push(QExpr::IsNull {
            expr: Box::new(QExpr::col(child_ref, c)),
            negated: true,
        });
    }
    blk.where_conjuncts = kept;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::testutil::{build, catalog};

    #[test]
    fn pk_fk_join_eliminated_with_not_null_guard() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT e.employee_name, e.salary FROM employees e, departments d \
             WHERE e.dept_id = d.dept_id",
        );
        let n = eliminate_joins(&mut tree, &cat).unwrap();
        assert_eq!(n, 1);
        tree.validate().unwrap();
        let s = tree.select(tree.root).unwrap();
        assert_eq!(s.tables.len(), 1);
        // employees.dept_id is nullable → IS NOT NULL added
        assert_eq!(s.where_conjuncts.len(), 1);
        assert!(matches!(
            s.where_conjuncts[0],
            QExpr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn join_kept_when_parent_columns_used() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT e.employee_name, d.department_name FROM employees e, departments d \
             WHERE e.dept_id = d.dept_id",
        );
        assert_eq!(eliminate_joins(&mut tree, &cat).unwrap(), 0);
    }

    #[test]
    fn join_kept_when_extra_filter_on_parent() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT e.employee_name FROM employees e, departments d \
             WHERE e.dept_id = d.dept_id AND d.loc_id = 4",
        );
        assert_eq!(eliminate_joins(&mut tree, &cat).unwrap(), 0);
    }

    #[test]
    fn outer_join_on_unique_key_eliminated() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT e.employee_name, e.salary FROM employees e \
             LEFT OUTER JOIN departments d ON e.dept_id = d.dept_id",
        );
        let n = eliminate_joins(&mut tree, &cat).unwrap();
        assert_eq!(n, 1);
        tree.validate().unwrap();
        let s = tree.select(tree.root).unwrap();
        assert_eq!(s.tables.len(), 1);
        // outer join elimination adds no filters (left rows all retained)
        assert!(s.where_conjuncts.is_empty());
    }

    #[test]
    fn outer_join_on_non_unique_key_kept() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT e.employee_name FROM employees e \
             LEFT OUTER JOIN departments d ON e.dept_id = d.loc_id",
        );
        assert_eq!(eliminate_joins(&mut tree, &cat).unwrap(), 0);
    }

    #[test]
    fn chained_elimination() {
        // after removing departments, nothing else is removable
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT j.job_title FROM job_history j, employees e, departments d \
             WHERE j.emp_id = e.emp_id AND e.dept_id = d.dept_id",
        );
        // employees.dept_id is used in the e-d join only; d is unused:
        // d removed first, then e becomes removable via j.emp_id FK? —
        // e.dept_id IS NOT NULL guard now references e, so e must stay.
        let n = eliminate_joins(&mut tree, &cat).unwrap();
        assert_eq!(n, 1);
        tree.validate().unwrap();
        assert_eq!(tree.select(tree.root).unwrap().tables.len(), 2);
    }
}
