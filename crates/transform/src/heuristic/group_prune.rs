//! Group pruning (§2.1.4): removes grouping sets from a view when outer
//! predicates on grouping columns cannot be satisfied by those sets.
//!
//! A grouping set that does not contain grouping column `g` produces
//! rows with `g = NULL`; a null-rejecting outer predicate on `g` filters
//! all such rows, so the set need not be computed at all. The pass runs
//! after predicate move-around so pruning predicates sit next to the
//! grouping view (§2.1.4).

use cbqt_catalog::Catalog;
use cbqt_common::Result;
use cbqt_qgm::{BlockId, JoinInfo, QExpr, QTableSource, QueryBlock, QueryTree, RefId};

/// Prunes grouping sets in all views; returns the number of sets removed.
pub fn prune_groups(tree: &mut QueryTree, _catalog: &Catalog) -> Result<usize> {
    let mut pruned = 0;
    for id in tree.bottom_up() {
        let Ok(QueryBlock::Select(s)) = tree.block(id) else {
            continue;
        };
        let mut jobs: Vec<(BlockId, RefId)> = Vec::new();
        for t in &s.tables {
            if !matches!(t.join, JoinInfo::Inner) {
                continue;
            }
            if let QTableSource::View(v) = t.source {
                if let Ok(QueryBlock::Select(vs)) = tree.block(v) {
                    if vs.grouping_sets.is_some() {
                        jobs.push((v, t.refid));
                    }
                }
            }
        }
        for (v, view_ref) in jobs {
            pruned += prune_view(tree, id, view_ref, v)?;
        }
    }
    Ok(pruned)
}

fn prune_view(
    tree: &mut QueryTree,
    outer: BlockId,
    view_ref: RefId,
    vid: BlockId,
) -> Result<usize> {
    // grouping columns the outer block filters with null-rejecting preds
    let mut required: Vec<usize> = Vec::new();
    {
        let outer_s = tree.select(outer)?;
        let v = tree.select(vid)?;
        for c in &outer_s.where_conjuncts {
            if !null_rejecting(c) {
                continue;
            }
            let mut cols = Vec::new();
            c.collect_cols(&mut cols);
            for (r, out_idx) in cols {
                if r != view_ref {
                    continue;
                }
                // which group-by expr does this output map to?
                if let Some(item) = v.select.get(out_idx) {
                    if let Some(gi) = v.group_by.iter().position(|g| *g == item.expr) {
                        if !required.contains(&gi) {
                            required.push(gi);
                        }
                    }
                }
            }
        }
    }
    if required.is_empty() {
        return Ok(0);
    }
    let v = tree.select_mut(vid)?;
    let Some(sets) = &mut v.grouping_sets else {
        return Ok(0);
    };
    let before = sets.len();
    sets.retain(|set| required.iter().all(|gi| set.contains(gi)));
    let removed = before - sets.len();
    // a single surviving full set degenerates to a plain GROUP BY
    if sets.len() == 1 && sets[0].len() == v.group_by.len() {
        v.grouping_sets = None;
    }
    Ok(removed)
}

/// Conservative null-rejection test: comparisons, LIKE, IN-lists and
/// IS NOT NULL reject NULL inputs.
fn null_rejecting(e: &QExpr) -> bool {
    match e {
        QExpr::Bin { op, .. } => op.is_comparison(),
        QExpr::Like { negated, .. } => !negated,
        QExpr::InList { negated, .. } => !negated,
        QExpr::IsNull { negated, .. } => *negated,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::predicate_move::push_filter_predicates;
    use crate::heuristic::testutil::{build, catalog};

    fn rollup_tree(cat: &cbqt_catalog::Catalog, outer_pred: &str) -> QueryTree {
        build(
            cat,
            &format!(
                "SELECT v.loc_id, v.dept_id, v.c FROM \
                 (SELECT d.loc_id, d.dept_id, COUNT(*) c FROM departments d \
                  GROUP BY ROLLUP (d.loc_id, d.dept_id)) v \
                 WHERE {outer_pred}"
            ),
        )
    }

    #[test]
    fn predicate_on_finest_column_prunes_coarse_sets() {
        let cat = catalog();
        // paper Q9: predicate on the innermost rollup column prunes the
        // (loc) and () sets
        let mut tree = rollup_tree(&cat, "v.dept_id = 3");
        let n = prune_groups(&mut tree, &cat).unwrap();
        assert_eq!(n, 2);
        let root = tree.select(tree.root).unwrap();
        let vid = root.view_blocks()[0];
        let v = tree.select(vid).unwrap();
        // only the full set survived → degenerates to plain GROUP BY
        assert!(v.grouping_sets.is_none());
    }

    #[test]
    fn predicate_on_coarse_column_prunes_only_grand_total() {
        let cat = catalog();
        let mut tree = rollup_tree(&cat, "v.loc_id = 1");
        let n = prune_groups(&mut tree, &cat).unwrap();
        assert_eq!(n, 1); // only () removed
        let root = tree.select(tree.root).unwrap();
        let vid = root.view_blocks()[0];
        let v = tree.select(vid).unwrap();
        assert_eq!(v.grouping_sets.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn is_null_predicate_does_not_prune() {
        let cat = catalog();
        let mut tree = rollup_tree(&cat, "v.dept_id IS NULL");
        assert_eq!(prune_groups(&mut tree, &cat).unwrap(), 0);
    }

    #[test]
    fn works_after_predicate_move() {
        // predicate move-around runs first (as in the paper), group
        // pruning still fires on the original outer predicates
        let cat = catalog();
        let mut tree = rollup_tree(&cat, "v.dept_id = 3 AND v.c > 0");
        let moved = push_filter_predicates(&mut tree, &cat).unwrap();
        // c > 0 goes to HAVING; dept_id = 3 cannot move (grouping sets)
        assert_eq!(moved, 1);
        let n = prune_groups(&mut tree, &cat).unwrap();
        assert_eq!(n, 2);
    }
}
