//! Shared helpers for transformations: tree-wide substitution, alias
//! management, mergeability predicates.

use cbqt_catalog::Catalog;
use cbqt_common::Result;
use cbqt_qgm::{
    BlockId, JoinInfo, QExpr, QTable, QTableSource, QueryBlock, QueryTree, RefId, SelectBlock,
};
use std::collections::HashSet;

/// Substitutes every reference `Col{view_ref, i}` anywhere in the tree
/// with `outputs[i]`. Used when a view is merged into its parent: because
/// RefIds are tree-unique, substitution is safe to run globally (it also
/// fixes correlated references from nested subqueries).
pub fn substitute_view_columns(tree: &mut QueryTree, view_ref: RefId, outputs: &[QExpr]) {
    for id in tree.block_ids() {
        if let Ok(QueryBlock::Select(s)) = tree.block_mut(id) {
            s.for_each_expr_mut(&mut |e| {
                e.rewrite(&mut |n| match n {
                    QExpr::Col { table, column } if *table == view_ref => {
                        outputs.get(*column).cloned()
                    }
                    _ => None,
                })
            });
        }
    }
}

/// True if any expression anywhere in the tree (outside `exclude_block`'s
/// given conjunct indices) references the given table.
pub fn table_used_elsewhere(
    tree: &QueryTree,
    refid: RefId,
    exclude_block: BlockId,
    exclude_where_idx: &HashSet<usize>,
) -> bool {
    let mut used = false;
    for id in tree.block_ids() {
        let Ok(QueryBlock::Select(s)) = tree.block(id) else {
            continue;
        };
        // select, group by, having, order by, distinct keys, join conds
        for t in &s.tables {
            if t.refid == refid {
                // the table's own ON condition disappears with it
                continue;
            }
            for c in t.join.on_conjuncts() {
                if c.referenced_tables().contains(&refid) {
                    used = true;
                }
            }
        }
        for (i, c) in s.where_conjuncts.iter().enumerate() {
            if id == exclude_block && exclude_where_idx.contains(&i) {
                continue;
            }
            if c.referenced_tables().contains(&refid) {
                used = true;
            }
        }
        for it in &s.select {
            if it.expr.referenced_tables().contains(&refid) {
                used = true;
            }
        }
        for e in s.group_by.iter().chain(s.having.iter()) {
            if e.referenced_tables().contains(&refid) {
                used = true;
            }
        }
        for o in &s.order_by {
            if o.expr.referenced_tables().contains(&refid) {
                used = true;
            }
        }
        if let Some(keys) = &s.distinct_keys {
            for e in keys {
                if e.referenced_tables().contains(&refid) {
                    used = true;
                }
            }
        }
    }
    used
}

/// Renames tables being moved into `parent` to avoid alias collisions.
/// The renaming is deterministic (suffix = source block id) so that
/// equivalent transformation states render identically for annotation
/// reuse.
pub fn dedup_aliases(parent: &SelectBlock, incoming: &mut [QTable], src_block: BlockId) {
    let taken: HashSet<String> = parent
        .tables
        .iter()
        .map(|t| t.alias.to_ascii_lowercase())
        .collect();
    for t in incoming.iter_mut() {
        if taken.contains(&t.alias.to_ascii_lowercase()) {
            t.alias = format!("{}_{}", t.alias, src_block.0);
        }
    }
}

/// True if a select block is a plain SPJ block: no distinct, grouping,
/// having, windows, set ops, ordering or limit.
pub fn is_spj(s: &SelectBlock) -> bool {
    !s.distinct
        && s.distinct_keys.is_none()
        && s.group_by.is_empty()
        && s.grouping_sets.is_none()
        && s.having.is_empty()
        && s.rownum_limit.is_none()
        && s.order_by.is_empty()
        && !s
            .select
            .iter()
            .any(|i| i.expr.contains_agg() || i.expr.contains_window())
}

/// True if the block's expressions contain any subquery reference.
pub fn block_has_subqueries(s: &SelectBlock) -> bool {
    let mut found = false;
    s.for_each_expr(&mut |e| {
        if e.contains_subquery() {
            found = true;
        }
    });
    found
}

/// Resolves whether an expression is provably non-null: a literal
/// non-null value, or a base-table column with a NOT NULL constraint that
/// is not on the null-producing side of an outer join.
pub fn provably_not_null(
    tree: &QueryTree,
    catalog: &Catalog,
    owner: &SelectBlock,
    e: &QExpr,
) -> bool {
    match e {
        QExpr::Lit(v) => !v.is_null(),
        QExpr::Col { table, column } => {
            let Some(t) = owner.table(*table) else {
                // reference to an outer block: resolve there
                if let Some(b) = tree.ref_owner(*table) {
                    if let Ok(s) = tree.select(b) {
                        return provably_not_null(tree, catalog, s, e);
                    }
                }
                return false;
            };
            if matches!(t.join, JoinInfo::LeftOuter { .. }) {
                return false;
            }
            match &t.source {
                QTableSource::Base(tid) => catalog
                    .table(*tid)
                    .ok()
                    .and_then(|tbl| tbl.columns.get(*column))
                    .map(|c| c.not_null)
                    .unwrap_or(
                        *column >= catalog.table(*tid).map(|t| t.columns.len()).unwrap_or(0),
                    ),
                QTableSource::View(_) => false,
            }
        }
        _ => false,
    }
}

/// Finds the parent table entry (block id + table index) referencing a
/// given view block.
pub fn find_view_ref(tree: &QueryTree, view_block: BlockId) -> Option<(BlockId, RefId)> {
    for id in tree.block_ids() {
        if let Ok(QueryBlock::Select(s)) = tree.block(id) {
            for t in &s.tables {
                if t.source == QTableSource::View(view_block) {
                    return Some((id, t.refid));
                }
            }
        }
    }
    None
}

/// Repoints references to `old_block` (as a view source or a subquery)
/// to `new_block` throughout the tree, and moves the root if needed.
pub fn repoint_block(tree: &mut QueryTree, old_block: BlockId, new_block: BlockId) -> Result<()> {
    if tree.root == old_block {
        tree.root = new_block;
    }
    for id in tree.block_ids() {
        if id == new_block {
            continue;
        }
        match tree.block_mut(id)? {
            QueryBlock::Select(s) => {
                for t in &mut s.tables {
                    if t.source == QTableSource::View(old_block) {
                        t.source = QTableSource::View(new_block);
                    }
                }
                s.for_each_expr_mut(&mut |e| {
                    e.rewrite(&mut |n| match n {
                        QExpr::Subq { block, kind } if *block == old_block => Some(QExpr::Subq {
                            block: new_block,
                            kind: kind.clone(),
                        }),
                        _ => None,
                    })
                });
            }
            QueryBlock::SetOp(s) => {
                for i in &mut s.inputs {
                    if *i == old_block {
                        *i = new_block;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Inverts a comparison operator (for ALL-quantifier unnesting:
/// `x > ALL (S)` becomes an antijoin on `x <= s`).
pub fn invert_comparison(op: cbqt_qgm::BinOp) -> Option<cbqt_qgm::BinOp> {
    use cbqt_qgm::BinOp::*;
    Some(match op {
        Eq => NotEq,
        NotEq => Eq,
        Lt => GtEq,
        LtEq => Gt,
        Gt => LtEq,
        GtEq => Lt,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbqt_qgm::OutputItem;

    #[test]
    fn invert_ops() {
        use cbqt_qgm::BinOp::*;
        assert_eq!(invert_comparison(Gt), Some(LtEq));
        assert_eq!(invert_comparison(Eq), Some(NotEq));
        assert_eq!(invert_comparison(And), None);
    }

    #[test]
    fn spj_detection() {
        let mut s = SelectBlock::default();
        s.select.push(OutputItem {
            expr: QExpr::lit(1i64),
            name: "x".into(),
        });
        assert!(is_spj(&s));
        s.distinct = true;
        assert!(!is_spj(&s));
    }

    #[test]
    fn alias_dedup_appends_block_id() {
        let mut parent = SelectBlock::default();
        parent.tables.push(QTable {
            refid: RefId(0),
            alias: "e".into(),
            source: QTableSource::Base(cbqt_catalog::TableId(0)),
            join: JoinInfo::Inner,
        });
        let mut incoming = vec![QTable {
            refid: RefId(1),
            alias: "E".into(),
            source: QTableSource::Base(cbqt_catalog::TableId(1)),
            join: JoinInfo::Inner,
        }];
        dedup_aliases(&parent, &mut incoming, BlockId(7));
        assert_eq!(incoming[0].alias, "E_7");
    }
}
