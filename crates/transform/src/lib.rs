//! Query transformations and the cost-based transformation (CBQT)
//! framework — the paper's primary contribution.
//!
//! Two transformation families (§2):
//!
//! * **heuristic** (imperative — always applied when legal): SPJ view
//!   merging, join elimination, subquery unnesting by merging into
//!   semi-/anti-joins, filter predicate move-around (incl. through
//!   GROUP BY keys and window PARTITION BY), and group pruning;
//! * **cost-based**: subquery unnesting that generates inline views,
//!   group-by / distinct view merging, join predicate pushdown,
//!   group-by placement, join factorization, predicate pullup,
//!   MINUS/INTERSECT → join conversion, and disjunction → UNION ALL
//!   expansion.
//!
//! The [`framework`] module implements §3: per-transformation state
//! spaces, the four search strategies (exhaustive, iterative
//! improvement, linear, two-pass) with automatic selection, interleaving
//! of unnesting with view merging (§3.3.1), juxtaposition of view
//! merging with join predicate pushdown (§3.3.2), and the shared cost
//! annotations + cost cut-off of §3.4.

pub mod costbased;
pub mod framework;
pub mod heuristic;
pub mod util;

pub use framework::{
    optimize_query, optimize_query_feedback, optimize_query_governed, optimize_query_traced,
    optimize_query_with_sampler, CbqtConfig, CbqtOutcome, FeedbackConfig, SearchStrategy,
    TransformSet,
};
