//! Disjunction into UNION ALL expansion (§2.2.8, "OR expansion"): a
//! disjunctive WHERE conjunct splits the block into UNION ALL branches,
//! one per disjunct, with `LNNVL` guards on later branches so no row is
//! produced twice. Each branch can then use the access path its own
//! disjunct enables.

use super::{ApplyEffect, CbTransform, Target};
use cbqt_catalog::Catalog;
use cbqt_common::{Error, Result};
use cbqt_qgm::{
    BinOp, BlockId, JoinInfo, OutputItem, QExpr, QTable, QTableSource, QueryBlock, QueryTree,
    SelectBlock, SetOp, SetOpBlock,
};

/// Branch-count cap: wider disjunctions are left as post-filters.
const MAX_BRANCHES: usize = 4;

pub struct CbOrExpansion;

impl CbTransform for CbOrExpansion {
    fn name(&self) -> &'static str {
        "disjunction into UNION ALL"
    }

    fn find_targets(&self, tree: &QueryTree, _catalog: &Catalog) -> Vec<Target> {
        let mut out = Vec::new();
        for id in tree.bottom_up() {
            let Ok(QueryBlock::Select(s)) = tree.block(id) else {
                continue;
            };
            if s.is_aggregated()
                || s.distinct
                || s.distinct_keys.is_some()
                || s.grouping_sets.is_some()
                || s.rownum_limit.is_some()
                || s.select.iter().any(|i| i.expr.contains_window())
            {
                continue;
            }
            if tree.root != id && crate::util::find_view_ref(tree, id).is_none() {
                continue; // subquery blocks are left to unnesting
            }
            for (ci, c) in s.where_conjuncts.iter().enumerate() {
                let ds = disjuncts(c);
                if ds.len() >= 2 && ds.len() <= MAX_BRANCHES && !c.contains_subquery() {
                    out.push(Target::OrExpand {
                        block: id,
                        conjunct: ci,
                    });
                }
            }
        }
        out
    }

    fn apply(
        &self,
        tree: &mut QueryTree,
        _catalog: &Catalog,
        target: &Target,
        _choice: usize,
    ) -> Result<ApplyEffect> {
        let Target::OrExpand { block, conjunct } = target else {
            return Err(Error::transform("wrong target kind"));
        };
        expand(tree, *block, *conjunct)
    }
}

fn disjuncts(e: &QExpr) -> Vec<QExpr> {
    let mut out = Vec::new();
    fn rec(e: &QExpr, out: &mut Vec<QExpr>) {
        match e {
            QExpr::Bin {
                op: BinOp::Or,
                left,
                right,
            } => {
                rec(left, out);
                rec(right, out);
            }
            other => out.push(other.clone()),
        }
    }
    rec(e, &mut out);
    out
}

fn expand(tree: &mut QueryTree, block: BlockId, conjunct: usize) -> Result<ApplyEffect> {
    let (ds, order_by) = {
        let s = tree.select(block)?;
        let c = s
            .where_conjuncts
            .get(conjunct)
            .ok_or_else(|| Error::transform("conjunct index out of date"))?;
        (disjuncts(c), s.order_by.clone())
    };
    if ds.len() < 2 {
        return Err(Error::transform("not a disjunction"));
    }
    let parent_view = crate::util::find_view_ref(tree, block);
    let is_root = tree.root == block;

    // one copy of the block per disjunct
    let snapshot = tree.clone();
    let mut branches = Vec::with_capacity(ds.len());
    for j in 0..ds.len() {
        let copy = tree.import_subtree(&snapshot, block)?;
        {
            let s = tree.select_mut(copy)?;
            s.order_by.clear(); // ordering happens above the UNION ALL
                                // replace the disjunction with: d_j AND LNNVL(d_0..j-1)
            let copied = s.where_conjuncts.remove(conjunct);
            let copied_ds = disjuncts(&copied);
            s.where_conjuncts.push(copied_ds[j].clone());
            for prev in copied_ds.iter().take(j) {
                s.where_conjuncts.push(QExpr::Func {
                    name: "LNNVL".into(),
                    args: vec![prev.clone()],
                });
            }
        }
        branches.push(copy);
    }
    let union = tree.add_block(QueryBlock::SetOp(SetOpBlock {
        op: SetOp::UnionAll,
        inputs: branches,
        order_by: Vec::new(),
    }));

    // ORDER BY (root blocks) needs a wrapper select above the UNION ALL
    let new_top = if order_by.is_empty() {
        union
    } else {
        let names = tree.block(union)?.output_names(tree);
        let rw = tree.new_ref();
        let select: Vec<OutputItem> = names
            .iter()
            .enumerate()
            .map(|(i, n)| OutputItem {
                expr: QExpr::col(rw, i),
                name: n.clone(),
            })
            .collect();
        // re-express the order keys over the wrapper outputs: they must
        // be among the select items (checked here)
        let orig = tree.select(block)?;
        let mut wrapped_order = Vec::new();
        for o in &order_by {
            let Some(pos) = orig.select.iter().position(|it| it.expr == o.expr) else {
                return Err(Error::transform(
                    "ORDER BY key not in select list; expansion skipped",
                ));
            };
            wrapped_order.push(cbqt_qgm::QOrder {
                expr: QExpr::col(rw, pos),
                desc: o.desc,
                nulls_first: o.nulls_first,
            });
        }
        let wrapper = SelectBlock {
            tables: vec![QTable {
                refid: rw,
                alias: format!("VW_O{}", block.0),
                source: QTableSource::View(union),
                join: JoinInfo::Inner,
            }],
            select,
            order_by: wrapped_order,
            ..Default::default()
        };
        tree.add_block(QueryBlock::Select(wrapper))
    };

    if is_root {
        tree.root = new_top;
    } else if let Some((pblock, pref)) = parent_view {
        let p = tree.select_mut(pblock)?;
        let t = p.table_mut(pref).expect("parent view ref");
        t.source = QTableSource::View(new_top);
    }
    tree.remove_block(block);
    Ok(ApplyEffect::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::testutil::{build, catalog};

    const OR_Q: &str = "SELECT e.employee_name FROM employees e \
        WHERE e.emp_id = 5 OR e.salary > 100000";

    #[test]
    fn finds_disjunction() {
        let cat = catalog();
        let tree = build(&cat, OR_Q);
        assert_eq!(CbOrExpansion.find_targets(&tree, &cat).len(), 1);
    }

    #[test]
    fn expansion_creates_union_all_with_lnnvl() {
        let cat = catalog();
        let mut tree = build(&cat, OR_Q);
        let t = CbOrExpansion.find_targets(&tree, &cat)[0].clone();
        CbOrExpansion.apply(&mut tree, &cat, &t, 1).unwrap();
        tree.validate().unwrap();
        let QueryBlock::SetOp(so) = tree.block(tree.root).unwrap() else {
            panic!("expected UNION ALL root")
        };
        assert_eq!(so.op, SetOp::UnionAll);
        assert_eq!(so.inputs.len(), 2);
        // second branch carries the LNNVL guard
        let b2 = tree.select(so.inputs[1]).unwrap();
        assert!(b2
            .where_conjuncts
            .iter()
            .any(|c| matches!(c, QExpr::Func { name, .. } if name == "LNNVL")));
    }

    #[test]
    fn order_by_wrapped_above_union() {
        let cat = catalog();
        let mut tree = build(&cat, &format!("{OR_Q} ORDER BY e.employee_name"));
        let t = CbOrExpansion.find_targets(&tree, &cat)[0].clone();
        CbOrExpansion.apply(&mut tree, &cat, &t, 1).unwrap();
        tree.validate().unwrap();
        let root = tree.select(tree.root).unwrap();
        assert_eq!(root.order_by.len(), 1);
        assert!(matches!(root.tables[0].source, QTableSource::View(_)));
    }

    #[test]
    fn three_way_disjunction() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT e.emp_id FROM employees e \
             WHERE e.emp_id = 1 OR e.emp_id = 2 OR e.emp_id = 3",
        );
        let t = CbOrExpansion.find_targets(&tree, &cat)[0].clone();
        CbOrExpansion.apply(&mut tree, &cat, &t, 1).unwrap();
        let QueryBlock::SetOp(so) = tree.block(tree.root).unwrap() else {
            panic!()
        };
        assert_eq!(so.inputs.len(), 3);
        // last branch has two LNNVL guards
        let b3 = tree.select(so.inputs[2]).unwrap();
        let guards = b3
            .where_conjuncts
            .iter()
            .filter(|c| matches!(c, QExpr::Func { name, .. } if name == "LNNVL"))
            .count();
        assert_eq!(guards, 2);
    }

    #[test]
    fn aggregated_block_not_expanded() {
        let cat = catalog();
        let tree = build(
            &cat,
            "SELECT COUNT(*) FROM employees e WHERE e.emp_id = 5 OR e.salary > 100000",
        );
        assert!(CbOrExpansion.find_targets(&tree, &cat).is_empty());
    }

    #[test]
    fn subquery_disjunct_not_expanded() {
        let cat = catalog();
        let tree = build(
            &cat,
            "SELECT e.emp_id FROM employees e WHERE e.emp_id = 5 OR \
             EXISTS (SELECT 1 FROM departments d WHERE d.dept_id = e.dept_id)",
        );
        assert!(CbOrExpansion.find_targets(&tree, &cat).is_empty());
    }
}
