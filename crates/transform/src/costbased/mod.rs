//! Cost-based transformations (§2.2) and the common trait the framework
//! drives them through.
//!
//! Every transformation reports the *objects* it could apply to
//! ([`Target`]s) and an arity per target (2 for on/off; 3 when two
//! mutually exclusive alternatives are juxtaposed, §3.3.2). The framework
//! enumerates states over those targets, applies choices to deep copies
//! of the query tree, and costs each copy with the physical optimizer.
//!
//! Targets are identified by block / table-reference ids, which are
//! stable across deep copies (`QueryTree::clone`), so a target computed
//! on the original tree can be applied to any copy.

pub mod gb_placement;
pub mod join_factor;
pub mod or_expand;
pub mod pred_pullup;
pub mod setop_join;
pub mod unnest_view;
pub mod view_transform;

use cbqt_catalog::Catalog;
use cbqt_common::Result;
use cbqt_qgm::{BlockId, QueryTree, RefId};

/// An object a cost-based transformation may apply to.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// A subquery to unnest into an inline view: `(containing block,
    /// subquery block)`.
    Subquery { block: BlockId, subq: BlockId },
    /// A group-by / distinct / set-op view eligible for merging and/or
    /// join predicate pushdown.
    View {
        block: BlockId,
        view_ref: RefId,
        can_merge: bool,
        can_jppd: bool,
    },
    /// A group-by block and the table to push aggregation into.
    GroupByPush { block: BlockId, table_ref: RefId },
    /// A UNION ALL block and a base table common to all branches.
    Factorize {
        setop: BlockId,
        table: cbqt_catalog::TableId,
    },
    /// An expensive predicate (by conjunct index) in a blocking view
    /// under a ROWNUM-limited parent.
    PullupPred {
        parent: BlockId,
        view: BlockId,
        conjunct: usize,
    },
    /// An INTERSECT / MINUS block to convert into a join.
    SetOpJoin { setop: BlockId },
    /// A disjunctive WHERE conjunct to expand into UNION ALL branches.
    OrExpand { block: BlockId, conjunct: usize },
}

/// What an application did — used by the framework for interleaving
/// (§3.3.1): views created by unnesting can immediately be offered to
/// view merging.
#[derive(Debug, Clone, Default)]
pub struct ApplyEffect {
    /// `(parent block, view refid)` of views created by this application.
    pub created_views: Vec<(BlockId, RefId)>,
}

/// A cost-based transformation.
/// `Sync` because the parallel state-space search shares one
/// transformation across its costing workers (they are stateless).
pub trait CbTransform: Sync {
    fn name(&self) -> &'static str;

    /// Objects this transformation can apply to in the given tree.
    fn find_targets(&self, tree: &QueryTree, catalog: &Catalog) -> Vec<Target>;

    /// Number of alternatives for a target, *including* "do nothing"
    /// (choice 0). Two unless alternatives are juxtaposed.
    fn arity(&self, _target: &Target) -> usize {
        2
    }

    /// Applies alternative `choice` (≥1) of `target` to `tree`.
    fn apply(
        &self,
        tree: &mut QueryTree,
        catalog: &Catalog,
        target: &Target,
        choice: usize,
    ) -> Result<ApplyEffect>;
}

/// The paper's sequential ordering of the cost-based transformations
/// implemented here (§3.1; star transformation is out of scope).
pub fn default_transforms() -> Vec<Box<dyn CbTransform>> {
    vec![
        Box::new(unnest_view::CbUnnestView),
        Box::new(view_transform::CbViewTransform),
        Box::new(setop_join::CbSetOpToJoin),
        Box::new(gb_placement::CbGroupByPlacement),
        Box::new(pred_pullup::CbPredicatePullup),
        Box::new(join_factor::CbJoinFactorization),
        Box::new(or_expand::CbOrExpansion),
    ]
}
