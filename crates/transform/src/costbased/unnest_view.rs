//! Cost-based subquery unnesting that generates inline views (§2.2.1).
//!
//! Two shapes:
//! * **correlated aggregate subqueries** (the paper's Q1 → Q10): the
//!   subquery becomes a group-by view grouped on its correlation
//!   columns, joined back to the outer block;
//! * **multi-table (or otherwise unmergeable) EXISTS / NOT EXISTS / IN /
//!   NOT IN / ANY subqueries**: the subquery becomes an inline view
//!   joined by semijoin / antijoin, preserving the requirement that the
//!   subquery's own join happens before the (anti)join (§2.2.1).
//!
//! Whether unnesting pays off depends on filters, indexes on correlation
//! columns and data sizes — exactly why the decision is cost-based; the
//! pre-10g heuristic rule is available for the experiments (see
//! [`heuristic_would_unnest`]).

use super::{ApplyEffect, CbTransform, Target};
use crate::heuristic::unnest_merge::is_mergeable_subquery;
use cbqt_catalog::Catalog;
use cbqt_common::{Error, Result};
use cbqt_qgm::{
    AggFunc, BlockId, JoinInfo, OutputItem, QExpr, QTable, QTableSource, Quant, QueryBlock,
    QueryTree, RefId, SubqKind,
};

pub struct CbUnnestView;

impl CbTransform for CbUnnestView {
    fn name(&self) -> &'static str {
        "subquery unnesting (inline view)"
    }

    fn find_targets(&self, tree: &QueryTree, catalog: &Catalog) -> Vec<Target> {
        let mut out = Vec::new();
        for id in tree.bottom_up() {
            let Ok(QueryBlock::Select(s)) = tree.block(id) else {
                continue;
            };
            for c in &s.where_conjuncts {
                for subq in c.subquery_blocks() {
                    if classify(tree, catalog, id, subq, c).is_some()
                        && !out.contains(&Target::Subquery { block: id, subq })
                    {
                        out.push(Target::Subquery { block: id, subq });
                    }
                }
            }
        }
        out
    }

    fn apply(
        &self,
        tree: &mut QueryTree,
        catalog: &Catalog,
        target: &Target,
        _choice: usize,
    ) -> Result<ApplyEffect> {
        let Target::Subquery { block, subq } = target else {
            return Err(Error::transform("wrong target kind"));
        };
        let (conj_idx, conj) = {
            let s = tree.select(*block)?;
            s.where_conjuncts
                .iter()
                .enumerate()
                .find(|(_, c)| c.subquery_blocks().contains(subq))
                .map(|(i, c)| (i, c.clone()))
                .ok_or_else(|| Error::transform("subquery conjunct vanished"))?
        };
        let shape = classify(tree, catalog, *block, *subq, &conj)
            .ok_or_else(|| Error::transform("subquery no longer unnestable"))?;
        match shape {
            Shape::Aggregate => unnest_aggregate(tree, *block, *subq, conj_idx),
            Shape::SemiAnti => unnest_semi_anti(tree, catalog, *block, *subq, conj_idx),
        }
    }
}

enum Shape {
    Aggregate,
    SemiAnti,
}

/// A correlated conjunct usable for unnesting: `inner = outer` equality.
fn split_correlation(tree: &QueryTree, sub: BlockId, c: &QExpr) -> Option<(QExpr, QExpr)> {
    let (l, r) = c.as_equality()?;
    let declared = collect_subtree_refs(tree, sub);
    let l_inner = !l.referenced_tables().is_empty()
        && l.referenced_tables().iter().all(|t| declared.contains(t));
    let r_inner = !r.referenced_tables().is_empty()
        && r.referenced_tables().iter().all(|t| declared.contains(t));
    let l_outer = l.referenced_tables().iter().all(|t| !declared.contains(t));
    let r_outer = r.referenced_tables().iter().all(|t| !declared.contains(t));
    if l_inner && r_outer && !r.referenced_tables().is_empty() {
        return Some((l.clone(), r.clone()));
    }
    if r_inner && l_outer && !l.referenced_tables().is_empty() {
        return Some((r.clone(), l.clone()));
    }
    None
}

fn collect_subtree_refs(tree: &QueryTree, root: BlockId) -> std::collections::HashSet<RefId> {
    let mut out = std::collections::HashSet::new();
    let mut stack = vec![root];
    while let Some(b) = stack.pop() {
        if let Ok(blk) = tree.block(b) {
            match blk {
                QueryBlock::Select(s) => {
                    for t in &s.tables {
                        out.insert(t.refid);
                        if let QTableSource::View(v) = t.source {
                            stack.push(v);
                        }
                    }
                    s.for_each_expr(&mut |e| stack.extend(e.subquery_blocks()));
                }
                QueryBlock::SetOp(s) => stack.extend(s.inputs.iter().copied()),
            }
        }
    }
    out
}

fn classify(
    tree: &QueryTree,
    catalog: &Catalog,
    outer: BlockId,
    sub: BlockId,
    conj: &QExpr,
) -> Option<Shape> {
    let Ok(QueryBlock::Select(s)) = tree.block(sub) else {
        return None;
    };
    let outer_s = tree.select(outer).ok()?;
    // correlation must resolve to the outer block's own tables
    let outer_declared = outer_s.declared_refs();
    if !tree
        .correlated_refs(sub)
        .iter()
        .all(|r| outer_declared.contains(r))
    {
        return None;
    }
    if s.rownum_limit.is_some()
        || !s.order_by.is_empty()
        || s.grouping_sets.is_some()
        || s.select.iter().any(|i| i.expr.contains_window())
    {
        return None;
    }
    // every correlated conjunct must be extractable as inner = outer
    let declared = collect_subtree_refs(tree, sub);
    for c in &s.where_conjuncts {
        let is_correlated = c.referenced_tables().iter().any(|t| !declared.contains(t));
        if is_correlated && split_correlation(tree, sub, c).is_none() {
            return None;
        }
        if is_correlated && c.contains_subquery() {
            return None;
        }
    }
    // correlation must not hide deeper than the subquery's own WHERE
    let mut deep_corr = false;
    for t in &s.tables {
        if let QTableSource::View(v) = t.source {
            if tree.is_correlated(v) {
                deep_corr = true;
            }
        }
    }
    s.for_each_expr(&mut |e| {
        for b in e.subquery_blocks() {
            if tree
                .correlated_refs(b)
                .iter()
                .any(|r| !declared.contains(r))
            {
                deep_corr = true;
            }
        }
    });
    if deep_corr {
        return None;
    }

    // aggregate shape: scalar subquery with a single aggregate output
    if matches!(find_subq_kind(conj, sub)?, SubqKind::Scalar) {
        if s.group_by.is_empty()
            && !s.distinct
            && s.select.len() == 1
            && s.tables.iter().all(|t| t.join.is_inner())
        {
            if let QExpr::Agg {
                func,
                distinct: false,
                ..
            } = &s.select[0].expr
            {
                // COUNT over an empty group would have to produce 0, which
                // an inner join back cannot (the classic COUNT bug): skip
                if !matches!(func, AggFunc::Count | AggFunc::CountStar) {
                    return Some(Shape::Aggregate);
                }
            }
        }
        return None;
    }

    // semi/anti shape: the conjunct IS the subquery reference and the
    // merging heuristic could not handle it
    let QExpr::Subq { block, kind } = conj else {
        return None;
    };
    if block != &sub || is_mergeable_subquery(tree, sub) {
        return None;
    }
    if s.is_aggregated() && !s.group_by.is_empty() {
        // grouped subqueries: correlation columns must be grouping
        // expressions to be exposed in the view
        for c in &s.where_conjuncts {
            if let Some((inner, _)) = split_correlation(tree, sub, c) {
                if !s.group_by.contains(&inner) {
                    return None;
                }
            }
        }
    } else if s.is_aggregated() {
        return None; // scalar-aggregated EXISTS: keep TIS
    }
    match kind {
        SubqKind::Exists { .. } => Some(Shape::SemiAnti),
        SubqKind::In { lhs, .. } => {
            if lhs.iter().any(|e| e.contains_subquery()) {
                return None;
            }
            Some(Shape::SemiAnti)
        }
        SubqKind::Quant { op, quant, lhs } => {
            if !op.is_comparison() || lhs.contains_subquery() {
                return None;
            }
            match quant {
                Quant::Any => Some(Shape::SemiAnti),
                Quant::All => {
                    // ALL needs BOTH connecting sides provably non-null
                    // (§2.1.1): a NULL on either side makes the ALL
                    // comparison UNKNOWN, which an antijoin cannot model
                    let out_ok =
                        crate::util::provably_not_null(tree, catalog, s, &s.select[0].expr);
                    let lhs_ok = crate::util::provably_not_null(tree, catalog, outer_s, lhs);
                    if out_ok && lhs_ok {
                        Some(Shape::SemiAnti)
                    } else {
                        None
                    }
                }
            }
        }
        SubqKind::Scalar => None,
    }
}

fn find_subq_kind(conj: &QExpr, sub: BlockId) -> Option<SubqKind> {
    let mut found: Option<SubqKind> = None;
    conj.walk(&mut |e| {
        if let QExpr::Subq { block, kind } = e {
            if *block == sub && found.is_none() {
                found = Some(kind.clone());
            }
        }
    });
    found
}

/// Q1 → Q10: aggregate subquery becomes a group-by view.
fn unnest_aggregate(
    tree: &mut QueryTree,
    outer: BlockId,
    sub: BlockId,
    conj_idx: usize,
) -> Result<ApplyEffect> {
    // extract correlations from the subquery
    let mut correlations: Vec<(QExpr, QExpr)> = Vec::new();
    {
        let declared = collect_subtree_refs(tree, sub);
        let s = tree.select_mut(sub)?;
        let mut kept = Vec::new();
        for c in s.where_conjuncts.drain(..) {
            let is_corr = c.referenced_tables().iter().any(|t| !declared.contains(t));
            if is_corr {
                // shape was validated in classify
                let (l, r) = c.as_equality().expect("validated equality");
                let l_inner = l.referenced_tables().iter().all(|t| declared.contains(t))
                    && !l.referenced_tables().is_empty();
                if l_inner {
                    correlations.push((l.clone(), r.clone()));
                } else {
                    correlations.push((r.clone(), l.clone()));
                }
            } else {
                kept.push(c);
            }
        }
        s.where_conjuncts = kept;
        // expose correlation columns and group by them
        for (k, (inner, _)) in correlations.iter().enumerate() {
            s.select.push(OutputItem {
                expr: inner.clone(),
                name: format!("GK{k}"),
            });
            s.group_by.push(inner.clone());
        }
    }
    // join the view into the outer block
    let rv = tree.new_ref();
    let alias = format!("VW_U{}", sub.0);
    {
        let p = tree.select_mut(outer)?;
        p.tables.push(QTable {
            refid: rv,
            alias,
            source: QTableSource::View(sub),
            join: JoinInfo::Inner,
        });
        // replace the Subq node inside the conjunct with the view's
        // aggregate output
        p.where_conjuncts[conj_idx].rewrite(&mut |e| match e {
            QExpr::Subq {
                block,
                kind: SubqKind::Scalar,
            } if *block == sub => Some(QExpr::col(rv, 0)),
            _ => None,
        });
        for (k, (_, outer_expr)) in correlations.iter().enumerate() {
            p.where_conjuncts
                .push(QExpr::eq(outer_expr.clone(), QExpr::col(rv, 1 + k)));
        }
    }
    Ok(ApplyEffect {
        created_views: vec![(outer, rv)],
    })
}

/// Multi-table EXISTS / IN / quantified subquery becomes an inline view
/// joined by semijoin or antijoin.
fn unnest_semi_anti(
    tree: &mut QueryTree,
    catalog: &Catalog,
    outer: BlockId,
    sub: BlockId,
    conj_idx: usize,
) -> Result<ApplyEffect> {
    let conj = tree.select_mut(outer)?.where_conjuncts.remove(conj_idx);
    let QExpr::Subq { kind, .. } = conj else {
        return Err(Error::transform("expected subquery conjunct"));
    };
    // extract correlations
    let mut correlations: Vec<(QExpr, QExpr)> = Vec::new();
    {
        let declared = collect_subtree_refs(tree, sub);
        let s = tree.select_mut(sub)?;
        let mut kept = Vec::new();
        for c in s.where_conjuncts.drain(..) {
            let is_corr = c.referenced_tables().iter().any(|t| !declared.contains(t));
            if is_corr {
                let (l, r) = c.as_equality().expect("validated equality");
                let l_inner = l.referenced_tables().iter().all(|t| declared.contains(t))
                    && !l.referenced_tables().is_empty();
                if l_inner {
                    correlations.push((l.clone(), r.clone()));
                } else {
                    correlations.push((r.clone(), l.clone()));
                }
            } else {
                kept.push(c);
            }
        }
        s.where_conjuncts = kept;
    }
    let base_arity = tree.select(sub)?.select.len();
    {
        let s = tree.select_mut(sub)?;
        for (k, (inner, _)) in correlations.iter().enumerate() {
            s.select.push(OutputItem {
                expr: inner.clone(),
                name: format!("JK{k}"),
            });
        }
    }
    let rv = tree.new_ref();
    let mut on: Vec<QExpr> = correlations
        .iter()
        .enumerate()
        .map(|(k, (_, outer_expr))| QExpr::eq(QExpr::col(rv, base_arity + k), outer_expr.clone()))
        .collect();
    let join = match kind {
        SubqKind::Exists { negated } => {
            if negated {
                JoinInfo::Anti {
                    on,
                    null_aware: false,
                }
            } else {
                JoinInfo::Semi { on }
            }
        }
        SubqKind::In { lhs, negated } => {
            for (i, l) in lhs.iter().enumerate() {
                on.push(QExpr::eq(l.clone(), QExpr::col(rv, i)));
            }
            if negated {
                let outer_s = tree.select(outer)?;
                let sub_s = tree.select(sub)?;
                let all_nn = lhs
                    .iter()
                    .all(|l| crate::util::provably_not_null(tree, catalog, outer_s, l))
                    && sub_s.select[..lhs.len()].iter().all(|item| {
                        crate::util::provably_not_null(tree, catalog, sub_s, &item.expr)
                    });
                JoinInfo::Anti {
                    on,
                    null_aware: !all_nn,
                }
            } else {
                JoinInfo::Semi { on }
            }
        }
        SubqKind::Quant { op, quant, lhs } => match quant {
            Quant::Any => {
                on.push(QExpr::bin(op, (*lhs).clone(), QExpr::col(rv, 0)));
                JoinInfo::Semi { on }
            }
            Quant::All => {
                let inv = crate::util::invert_comparison(op)
                    .ok_or_else(|| Error::transform("bad ALL operator"))?;
                on.push(QExpr::bin(inv, (*lhs).clone(), QExpr::col(rv, 0)));
                JoinInfo::Anti {
                    on,
                    null_aware: false,
                }
            }
        },
        SubqKind::Scalar => return Err(Error::transform("scalar subquery in semi/anti shape")),
    };
    tree.select_mut(outer)?.tables.push(QTable {
        refid: rv,
        alias: format!("VW_S{}", sub.0),
        source: QTableSource::View(sub),
        join,
    });
    // semi/anti views are not view-merge candidates — no interleave
    Ok(ApplyEffect::default())
}

/// The pre-10g heuristic unnesting rule the paper describes (§2.2.1):
/// "if there exist filter predicates in the outer query and there are
/// indexes on the local columns in the subquery correlation, then the
/// subquery should NOT be unnested." Used by the experiments to compare
/// heuristic-based against cost-based decisions.
pub fn heuristic_would_unnest(
    tree: &QueryTree,
    catalog: &Catalog,
    outer: BlockId,
    sub: BlockId,
) -> bool {
    let Ok(outer_s) = tree.select(outer) else {
        return false;
    };
    let Ok(sub_s) = tree.select(sub) else {
        return false;
    };
    let has_outer_filters = outer_s.where_conjuncts.iter().any(|c| {
        !c.contains_subquery()
            && c.referenced_tables()
                .iter()
                .all(|r| outer_s.table(*r).is_some())
    });
    // indexes on the local (inner) columns of the correlation?
    let declared = collect_subtree_refs(tree, sub);
    let mut has_index_on_correlation = false;
    for c in &sub_s.where_conjuncts {
        let is_corr = c.referenced_tables().iter().any(|t| !declared.contains(t));
        if !is_corr {
            continue;
        }
        let Some((QExpr::Col { table, column }, _)) = split_correlation(tree, sub, c) else {
            continue;
        };
        if let Some(QTable {
            source: QTableSource::Base(tid),
            ..
        }) = sub_s.table(table)
        {
            if catalog.has_index_with_leading(*tid, column) {
                has_index_on_correlation = true;
            }
        }
    }
    !(has_outer_filters && has_index_on_correlation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::testutil::{build, catalog};
    use cbqt_qgm::BinOp;

    const PAPER_Q1: &str = "SELECT e1.employee_name, j.job_title \
        FROM employees e1, job_history j \
        WHERE e1.emp_id = j.emp_id AND j.start_date > 19980101 AND \
              e1.salary > (SELECT AVG(e2.salary) FROM employees e2 \
                           WHERE e2.dept_id = e1.dept_id) AND \
              e1.dept_id IN (SELECT d.dept_id FROM departments d, locations l \
                             WHERE d.loc_id = l.loc_id AND l.country_id = 'US')";

    #[test]
    fn q1_has_two_targets() {
        let cat = catalog();
        let tree = build(&cat, PAPER_Q1);
        let targets = CbUnnestView.find_targets(&tree, &cat);
        assert_eq!(targets.len(), 2, "{targets:?}");
    }

    #[test]
    fn q1_aggregate_unnests_to_group_by_view() {
        // the paper's Q1 → Q10 transformation
        let cat = catalog();
        let mut tree = build(&cat, PAPER_Q1);
        let targets = CbUnnestView.find_targets(&tree, &cat);
        let agg_target = targets
            .iter()
            .find(|t| {
                let Target::Subquery { subq, .. } = t else {
                    return false;
                };
                tree.select(*subq)
                    .map(|s| s.is_aggregated())
                    .unwrap_or(false)
            })
            .unwrap();
        let eff = CbUnnestView.apply(&mut tree, &cat, agg_target, 1).unwrap();
        tree.validate().unwrap();
        assert_eq!(eff.created_views.len(), 1);
        let root = tree.select(tree.root).unwrap();
        // e1, j, and the new view
        assert_eq!(root.tables.len(), 3);
        let (_, rv) = eff.created_views[0];
        let vt = root.table(rv).unwrap();
        let QTableSource::View(vb) = vt.source else {
            panic!()
        };
        let v = tree.select(vb).unwrap();
        // AVG + the exposed correlation column, grouped
        assert_eq!(v.select.len(), 2);
        assert_eq!(v.group_by.len(), 1);
        // the comparison now references the view output
        assert!(root
            .where_conjuncts
            .iter()
            .any(|c| matches!(c, QExpr::Bin { op: BinOp::Gt, .. })));
    }

    #[test]
    fn q1_in_subquery_unnests_to_semijoined_view() {
        let cat = catalog();
        let mut tree = build(&cat, PAPER_Q1);
        let targets = CbUnnestView.find_targets(&tree, &cat);
        let in_target = targets
            .iter()
            .find(|t| {
                let Target::Subquery { subq, .. } = t else {
                    return false;
                };
                tree.select(*subq)
                    .map(|s| !s.is_aggregated())
                    .unwrap_or(false)
            })
            .unwrap();
        CbUnnestView.apply(&mut tree, &cat, in_target, 1).unwrap();
        tree.validate().unwrap();
        let root = tree.select(tree.root).unwrap();
        assert_eq!(root.tables.len(), 3);
        assert!(root
            .tables
            .iter()
            .any(|t| matches!(t.join, JoinInfo::Semi { .. })));
    }

    #[test]
    fn both_q1_subqueries_unnest_together() {
        let cat = catalog();
        let mut tree = build(&cat, PAPER_Q1);
        let targets = CbUnnestView.find_targets(&tree, &cat);
        for t in &targets {
            CbUnnestView.apply(&mut tree, &cat, t, 1).unwrap();
        }
        tree.validate().unwrap();
        let root = tree.select(tree.root).unwrap();
        assert_eq!(root.tables.len(), 4);
    }

    #[test]
    fn count_subquery_not_unnested() {
        // the COUNT bug guard
        let cat = catalog();
        let tree = build(
            &cat,
            "SELECT d.department_name FROM departments d WHERE 3 < \
             (SELECT COUNT(*) FROM employees e WHERE e.dept_id = d.dept_id)",
        );
        assert!(CbUnnestView.find_targets(&tree, &cat).is_empty());
    }

    #[test]
    fn multi_table_not_exists_unnests_to_anti_view() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT e.employee_name FROM employees e WHERE NOT EXISTS \
             (SELECT 1 FROM departments d, locations l \
              WHERE d.loc_id = l.loc_id AND d.dept_id = e.dept_id)",
        );
        let targets = CbUnnestView.find_targets(&tree, &cat);
        assert_eq!(targets.len(), 1);
        CbUnnestView.apply(&mut tree, &cat, &targets[0], 1).unwrap();
        tree.validate().unwrap();
        let root = tree.select(tree.root).unwrap();
        assert!(root.tables.iter().any(|t| matches!(
            t.join,
            JoinInfo::Anti {
                null_aware: false,
                ..
            }
        )));
    }

    #[test]
    fn non_equality_correlation_not_unnested() {
        let cat = catalog();
        let tree = build(
            &cat,
            "SELECT e1.employee_name FROM employees e1 WHERE e1.salary > \
             (SELECT AVG(e2.salary) FROM employees e2 WHERE e2.salary < e1.salary)",
        );
        assert!(CbUnnestView.find_targets(&tree, &cat).is_empty());
    }

    #[test]
    fn heuristic_rule_respects_indexes() {
        let cat = catalog(); // has i_emp_dept on employees.dept_id
        let tree = build(&cat, PAPER_Q1);
        let root = tree.root;
        let targets = CbUnnestView.find_targets(&tree, &cat);
        let Target::Subquery { subq, .. } = targets
            .iter()
            .find(|t| {
                let Target::Subquery { subq, .. } = t else {
                    return false;
                };
                tree.select(*subq)
                    .map(|s| s.is_aggregated())
                    .unwrap_or(false)
            })
            .unwrap()
        else {
            panic!()
        };
        // Q1 has outer filters (start_date) and an index on e2.dept_id →
        // the pre-10g rule says: do NOT unnest
        assert!(!heuristic_would_unnest(&tree, &cat, root, *subq));
    }
}
