//! Set operators into joins (§2.2.7): `INTERSECT` becomes a semijoin,
//! `MINUS` an antijoin, each under a duplicate-eliminating block. The
//! set operators match NULLs, so the join conditions are null-safe
//! unless both sides are provably non-null (then plain equality, which
//! hash joins handle). Duplicate elimination can run at the join output
//! (choice 1) or at the join input (choice 2) — a cost-based placement
//! decision akin to distinct placement.

use super::{ApplyEffect, CbTransform, Target};
use cbqt_catalog::Catalog;
use cbqt_common::{Error, Result};
use cbqt_qgm::{
    BinOp, BlockId, JoinInfo, OutputItem, QExpr, QTable, QTableSource, QueryBlock, QueryTree,
    SelectBlock, SetOp,
};

pub struct CbSetOpToJoin;

impl CbTransform for CbSetOpToJoin {
    fn name(&self) -> &'static str {
        "MINUS/INTERSECT into join"
    }

    fn find_targets(&self, tree: &QueryTree, _catalog: &Catalog) -> Vec<Target> {
        let mut out = Vec::new();
        for id in tree.bottom_up() {
            let Ok(QueryBlock::SetOp(so)) = tree.block(id) else {
                continue;
            };
            if !matches!(so.op, SetOp::Intersect | SetOp::Minus) || so.inputs.len() != 2 {
                continue;
            }
            if tree.root == id || crate::util::find_view_ref(tree, id).is_some() {
                out.push(Target::SetOpJoin { setop: id });
            }
        }
        out
    }

    fn arity(&self, _target: &Target) -> usize {
        // 0 = keep the set operator, 1 = join + distinct output,
        // 2 = join + distinct input
        3
    }

    fn apply(
        &self,
        tree: &mut QueryTree,
        catalog: &Catalog,
        target: &Target,
        choice: usize,
    ) -> Result<ApplyEffect> {
        let Target::SetOpJoin { setop } = target else {
            return Err(Error::transform("wrong target kind"));
        };
        convert(tree, catalog, *setop, choice)
    }
}

fn convert(
    tree: &mut QueryTree,
    catalog: &Catalog,
    setop: BlockId,
    choice: usize,
) -> Result<ApplyEffect> {
    let (op, left, right) = {
        let QueryBlock::SetOp(so) = tree.block(setop)? else {
            return Err(Error::transform("not a set op"));
        };
        (so.op, so.inputs[0], so.inputs[1])
    };
    let arity = tree.block(left)?.output_arity(tree);
    let names = tree.block(left)?.output_names(tree);
    let parent_view = crate::util::find_view_ref(tree, setop);
    let is_root = tree.root == setop;

    let rl = tree.new_ref();
    let rr = tree.new_ref();
    // null-safe join conditions column by column
    let mut on = Vec::with_capacity(arity);
    for i in 0..arity {
        let plain_ok =
            output_not_null(tree, catalog, left, i) && output_not_null(tree, catalog, right, i);
        let eq = QExpr::eq(QExpr::col(rl, i), QExpr::col(rr, i));
        if plain_ok {
            on.push(eq);
        } else {
            let both_null = QExpr::bin(
                BinOp::And,
                QExpr::IsNull {
                    expr: Box::new(QExpr::col(rl, i)),
                    negated: false,
                },
                QExpr::IsNull {
                    expr: Box::new(QExpr::col(rr, i)),
                    negated: false,
                },
            );
            on.push(QExpr::bin(BinOp::Or, eq, both_null));
        }
    }
    let join = match op {
        SetOp::Intersect => JoinInfo::Semi { on },
        SetOp::Minus => JoinInfo::Anti {
            on,
            null_aware: false,
        },
        _ => unreachable!("filtered in find_targets"),
    };
    let mut j = SelectBlock::default();
    j.tables.push(QTable {
        refid: rl,
        alias: format!("SL{}", setop.0),
        source: QTableSource::View(left),
        join: JoinInfo::Inner,
    });
    j.tables.push(QTable {
        refid: rr,
        alias: format!("SR{}", setop.0),
        source: QTableSource::View(right),
        join,
    });
    for (i, n) in names.iter().enumerate() {
        j.select.push(OutputItem {
            expr: QExpr::col(rl, i),
            name: n.clone(),
        });
    }
    match choice {
        1 => j.distinct = true,
        2 => {
            // distinct at the input: dedup the left side before joining
            match tree.block_mut(left)? {
                QueryBlock::Select(ls) => ls.distinct = true,
                QueryBlock::SetOp(_) => j.distinct = true, // fall back
            }
        }
        _ => return Err(Error::transform("invalid choice for set-op conversion")),
    }
    let jid = tree.add_block(QueryBlock::Select(j));
    if is_root {
        tree.root = jid;
    } else if let Some((pblock, pref)) = parent_view {
        let p = tree.select_mut(pblock)?;
        let t = p.table_mut(pref).expect("parent view ref");
        t.source = QTableSource::View(jid);
    }
    tree.remove_block(setop);
    Ok(ApplyEffect::default())
}

fn output_not_null(tree: &QueryTree, catalog: &Catalog, block: BlockId, col: usize) -> bool {
    match tree.block(block) {
        Ok(QueryBlock::Select(s)) => match s.select.get(col) {
            Some(item) => crate::util::provably_not_null(tree, catalog, s, &item.expr),
            None => false,
        },
        Ok(QueryBlock::SetOp(so)) => so
            .inputs
            .iter()
            .all(|b| output_not_null(tree, catalog, *b, col)),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::testutil::{build, catalog};

    const MINUS_Q: &str = "SELECT d.dept_id FROM departments d \
        MINUS SELECT e.dept_id FROM employees e";

    #[test]
    fn finds_minus_and_intersect() {
        let cat = catalog();
        let tree = build(&cat, MINUS_Q);
        assert_eq!(CbSetOpToJoin.find_targets(&tree, &cat).len(), 1);
        let tree = build(
            &cat,
            "SELECT dept_id FROM departments INTERSECT SELECT dept_id FROM employees",
        );
        assert_eq!(CbSetOpToJoin.find_targets(&tree, &cat).len(), 1);
        let tree = build(
            &cat,
            "SELECT dept_id FROM departments UNION SELECT dept_id FROM employees",
        );
        assert!(CbSetOpToJoin.find_targets(&tree, &cat).is_empty());
    }

    #[test]
    fn minus_becomes_antijoin_with_distinct_output() {
        let cat = catalog();
        let mut tree = build(&cat, MINUS_Q);
        let t = CbSetOpToJoin.find_targets(&tree, &cat)[0].clone();
        CbSetOpToJoin.apply(&mut tree, &cat, &t, 1).unwrap();
        tree.validate().unwrap();
        let root = tree.select(tree.root).unwrap();
        assert!(root.distinct);
        assert!(matches!(root.tables[1].join, JoinInfo::Anti { .. }));
        // departments.dept_id is NOT NULL; employees.dept_id nullable →
        // null-safe OR condition
        let JoinInfo::Anti { on, .. } = &root.tables[1].join else {
            panic!()
        };
        assert!(matches!(on[0], QExpr::Bin { op: BinOp::Or, .. }));
    }

    #[test]
    fn intersect_becomes_semijoin_with_input_distinct() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT d.dept_id FROM departments d INTERSECT SELECT e.emp_id FROM employees e",
        );
        let t = CbSetOpToJoin.find_targets(&tree, &cat)[0].clone();
        CbSetOpToJoin.apply(&mut tree, &cat, &t, 2).unwrap();
        tree.validate().unwrap();
        let root = tree.select(tree.root).unwrap();
        assert!(!root.distinct);
        assert!(matches!(root.tables[1].join, JoinInfo::Semi { .. }));
        // plain equality: both sides NOT NULL
        let JoinInfo::Semi { on } = &root.tables[1].join else {
            panic!()
        };
        assert!(matches!(on[0], QExpr::Bin { op: BinOp::Eq, .. }));
        // left input got distinct
        let QTableSource::View(l) = root.tables[0].source else {
            panic!()
        };
        assert!(tree.select(l).unwrap().distinct);
    }

    #[test]
    fn conversion_under_parent_view() {
        let cat = catalog();
        let mut tree = build(&cat, &format!("SELECT w.dept_id FROM ({MINUS_Q}) w"));
        let t = CbSetOpToJoin.find_targets(&tree, &cat)[0].clone();
        CbSetOpToJoin.apply(&mut tree, &cat, &t, 1).unwrap();
        tree.validate().unwrap();
    }
}
