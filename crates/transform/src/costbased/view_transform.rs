//! Group-by / distinct view merging (§2.2.2) and join predicate
//! pushdown (§2.2.3), **juxtaposed** (§3.3.2): when both apply to the
//! same view, the target has arity 3 (none / merge / JPPD) and the
//! framework costs all alternatives against each other — the paper's
//! Q12 vs Q13 vs Q18 comparison.

use super::{ApplyEffect, CbTransform, Target};
use crate::util::{dedup_aliases, substitute_view_columns, table_used_elsewhere};
use cbqt_catalog::Catalog;
use cbqt_common::{Error, Result};
use cbqt_qgm::{BlockId, JoinInfo, QExpr, QTableSource, QueryBlock, QueryTree, RefId};
use std::collections::HashSet;

pub struct CbViewTransform;

impl CbTransform for CbViewTransform {
    fn name(&self) -> &'static str {
        "view merging / join predicate pushdown"
    }

    fn find_targets(&self, tree: &QueryTree, catalog: &Catalog) -> Vec<Target> {
        let mut out = Vec::new();
        for id in tree.bottom_up() {
            let Ok(QueryBlock::Select(s)) = tree.block(id) else {
                continue;
            };
            for t in &s.tables {
                if !matches!(t.join, JoinInfo::Inner) {
                    continue;
                }
                let QTableSource::View(v) = t.source else {
                    continue;
                };
                let can_merge = can_merge_view(tree, catalog, id, t.refid, v);
                let can_jppd = can_jppd_view(tree, id, t.refid, v);
                if can_merge || can_jppd {
                    out.push(Target::View {
                        block: id,
                        view_ref: t.refid,
                        can_merge,
                        can_jppd,
                    });
                }
            }
        }
        out
    }

    fn arity(&self, target: &Target) -> usize {
        let Target::View {
            can_merge,
            can_jppd,
            ..
        } = target
        else {
            return 2;
        };
        1 + usize::from(*can_merge) + usize::from(*can_jppd)
    }

    fn apply(
        &self,
        tree: &mut QueryTree,
        catalog: &Catalog,
        target: &Target,
        choice: usize,
    ) -> Result<ApplyEffect> {
        let Target::View {
            block,
            view_ref,
            can_merge,
            can_jppd,
        } = target
        else {
            return Err(Error::transform("wrong target kind"));
        };
        let do_merge = *can_merge && choice == 1;
        let do_jppd = *can_jppd && choice == 1 + usize::from(*can_merge);
        if do_merge {
            merge_view(tree, catalog, *block, *view_ref)?;
        } else if do_jppd {
            jppd_view(tree, *block, *view_ref)?;
        } else {
            return Err(Error::transform("invalid choice for view target"));
        }
        Ok(ApplyEffect::default())
    }
}

/// Directly merges a group-by or distinct view (also called by the
/// framework when interleaving unnesting with view merging, §3.3.1).
pub fn merge_view(
    tree: &mut QueryTree,
    catalog: &Catalog,
    parent: BlockId,
    view_ref: RefId,
) -> Result<()> {
    let _ = catalog;
    let vid = {
        let p = tree.select(parent)?;
        let t = p
            .table(view_ref)
            .ok_or_else(|| Error::transform("view ref vanished"))?;
        match t.source {
            QTableSource::View(v) => v,
            QTableSource::Base(_) => return Err(Error::transform("not a view")),
        }
    };
    let QueryBlock::Select(mut v) = tree.take_block(vid)? else {
        return Err(Error::transform("set-op views cannot merge"));
    };
    {
        let p = tree.select(parent)?;
        dedup_aliases(p, &mut v.tables, vid);
    }
    let outputs: Vec<QExpr> = v.select.iter().map(|i| i.expr.clone()).collect();
    let distinct_case = v.distinct && !v.is_aggregated();

    // rowids of the parent's other row-producing tables keep the parent's
    // multiplicity intact (the paper adds j.rowid etc. in Q11/Q18)
    let rowid_keys: Vec<QExpr> = {
        let p = tree.select(parent)?;
        p.tables
            .iter()
            .filter(|t| t.refid != view_ref)
            .filter(|t| matches!(t.join, JoinInfo::Inner | JoinInfo::LeftOuter { .. }))
            .filter_map(|t| match t.source {
                QTableSource::Base(tid) => {
                    let n = catalog.table(tid).ok()?.columns.len();
                    Some(QExpr::col(t.refid, n))
                }
                QTableSource::View(_) => None,
            })
            .collect()
    };

    {
        let p = tree.select_mut(parent)?;
        let pos = p
            .tables
            .iter()
            .position(|t| t.refid == view_ref)
            .expect("checked above");
        p.tables.remove(pos);
        for (i, t) in v.tables.drain(..).enumerate() {
            p.tables.insert(pos + i, t);
        }
        p.where_conjuncts.append(&mut v.where_conjuncts);
        if distinct_case {
            // Q12 → Q18: pull the distinct up, keyed by the outer rowids
            // plus the view's outputs
            let mut keys = rowid_keys;
            keys.extend(outputs.iter().cloned());
            p.distinct_keys = Some(keys);
        } else {
            // Q10 → Q11: group by the outer rowids plus the view's keys
            let mut gb = rowid_keys;
            gb.append(&mut v.group_by);
            p.group_by = gb;
            p.having.append(&mut v.having);
        }
    }
    substitute_view_columns(tree, view_ref, &outputs);
    // WHERE conjuncts that now contain aggregates must become HAVING
    if !distinct_case {
        let p = tree.select_mut(parent)?;
        let mut kept = Vec::new();
        for c in p.where_conjuncts.drain(..) {
            if c.contains_agg() {
                p.having.push(c);
            } else {
                kept.push(c);
            }
        }
        p.where_conjuncts = kept;
    }
    Ok(())
}

/// Checks group-by / distinct view mergeability into `parent`.
pub fn can_merge_view(
    tree: &QueryTree,
    catalog: &Catalog,
    parent: BlockId,
    view_ref: RefId,
    vid: BlockId,
) -> bool {
    let Ok(p) = tree.select(parent) else {
        return false;
    };
    let Ok(QueryBlock::Select(v)) = tree.block(vid) else {
        return false;
    };
    // parent must be a plain (non-aggregated, unlimited) block
    if p.is_aggregated()
        || p.distinct_keys.is_some()
        || p.rownum_limit.is_some()
        || p.grouping_sets.is_some()
        || p.select.iter().any(|i| i.expr.contains_window())
    {
        return false;
    }
    // other parent tables must be base tables (they contribute rowids)
    for t in &p.tables {
        if t.refid == view_ref {
            continue;
        }
        match (&t.source, &t.join) {
            (QTableSource::Base(_), JoinInfo::Inner | JoinInfo::LeftOuter { .. }) => {}
            _ => return false,
        }
    }
    let _ = catalog;
    // view shape
    if v.rownum_limit.is_some()
        || !v.order_by.is_empty()
        || v.grouping_sets.is_some()
        || v.distinct_keys.is_some()
        || v.select.iter().any(|i| i.expr.contains_window())
        || v.tables.is_empty()
        || tree.is_correlated(vid)
    {
        return false;
    }
    // tables inside the view must be plainly joined
    if !v.tables.iter().all(|t| t.join.is_inner()) {
        return false;
    }
    let group_by_case = v.is_aggregated() && !v.group_by.is_empty() && !v.distinct;
    let distinct_case = v.distinct && !v.is_aggregated();
    if !(group_by_case || distinct_case) {
        return false;
    }
    // nested subqueries in the view's HAVING would need relocation; keep
    // those unmerged
    let mut has_subq = false;
    v.for_each_expr(&mut |e| {
        if e.contains_subquery() {
            has_subq = true;
        }
    });
    !has_subq
}

/// Checks JPPD applicability: the parent has at least one pushable equi
/// join predicate onto the view.
pub fn can_jppd_view(tree: &QueryTree, parent: BlockId, view_ref: RefId, vid: BlockId) -> bool {
    !pushable_conjuncts(tree, parent, view_ref, vid).is_empty()
}

/// Indexes of the parent WHERE conjuncts that can be pushed into the
/// view as correlated predicates.
fn pushable_conjuncts(
    tree: &QueryTree,
    parent: BlockId,
    view_ref: RefId,
    vid: BlockId,
) -> Vec<usize> {
    let Ok(p) = tree.select(parent) else {
        return Vec::new();
    };
    let declared = p.declared_refs();
    let mut out = Vec::new();
    for (i, c) in p.where_conjuncts.iter().enumerate() {
        let Some(out_idx) = pushable_output(c, view_ref, &declared) else {
            continue;
        };
        if !push_target_ok(tree, vid, out_idx) {
            out.clear();
            return out; // one unpushable reference blocks the whole view
        }
        out.push(i);
    }
    out
}

/// If `c` is `view.col = expr(other parent tables)`, returns the view
/// output index.
fn pushable_output(c: &QExpr, view_ref: RefId, declared: &HashSet<RefId>) -> Option<usize> {
    let (l, r) = c.as_equality()?;
    let side = |a: &QExpr, b: &QExpr| -> Option<usize> {
        let QExpr::Col { table, column } = a else {
            return None;
        };
        if *table != view_ref {
            return None;
        }
        if b.contains_subquery() {
            return None;
        }
        let brefs = b.referenced_tables();
        if brefs.is_empty() || brefs.contains(&view_ref) {
            return None;
        }
        if !brefs.iter().all(|x| declared.contains(x)) {
            return None;
        }
        Some(*column)
    };
    side(l, r).or_else(|| side(r, l))
}

/// Can a predicate be pushed onto view output `out_idx`?
fn push_target_ok(tree: &QueryTree, vid: BlockId, out_idx: usize) -> bool {
    match tree.block(vid) {
        Ok(QueryBlock::Select(v)) => {
            if v.rownum_limit.is_some()
                || !v.order_by.is_empty()
                || v.grouping_sets.is_some()
                || v.select.iter().any(|i| i.expr.contains_window())
            {
                return false;
            }
            let Some(item) = v.select.get(out_idx) else {
                return false;
            };
            if v.is_aggregated() {
                // must land on a grouping expression
                v.group_by.contains(&item.expr)
            } else {
                !item.expr.contains_agg()
            }
        }
        Ok(QueryBlock::SetOp(so)) => {
            if !matches!(so.op, cbqt_qgm::SetOp::UnionAll) {
                return false;
            }
            so.inputs.iter().all(|b| push_target_ok(tree, *b, out_idx))
        }
        Err(_) => false,
    }
}

/// Applies JPPD: join predicates become correlated view predicates; the
/// view becomes lateral. When the view is DISTINCT and every output has
/// an equi-join pushed and nothing else references the view, the
/// distinct is dropped and the join degenerates to a (lateral) semijoin
/// — the paper's Q12 → Q13.
pub fn jppd_view(tree: &mut QueryTree, parent: BlockId, view_ref: RefId) -> Result<()> {
    let vid = {
        let p = tree.select(parent)?;
        match p.table(view_ref).map(|t| &t.source) {
            Some(QTableSource::View(v)) => *v,
            _ => return Err(Error::transform("view ref vanished")),
        }
    };
    let idxs = pushable_conjuncts(tree, parent, view_ref, vid);
    if idxs.is_empty() {
        return Err(Error::transform("no pushable join predicates"));
    }
    // remove the conjuncts from the parent
    let declared = tree.select(parent)?.declared_refs();
    let mut pushed: Vec<(usize, QExpr)> = Vec::new();
    {
        let p = tree.select_mut(parent)?;
        let mut kept = Vec::new();
        for (i, c) in p.where_conjuncts.drain(..).enumerate() {
            if idxs.contains(&i) {
                kept.push(QExpr::Lit(cbqt_common::Value::Bool(true))); // placeholder
                let out_idx = pushable_output(&c, view_ref, &declared).expect("validated pushable");
                let (l, r) = c.as_equality().expect("validated equality");
                let outer = if matches!(l, QExpr::Col { table, .. } if *table == view_ref) {
                    r.clone()
                } else {
                    l.clone()
                };
                pushed.push((out_idx, outer));
                kept.pop();
            } else {
                kept.push(c);
            }
        }
        p.where_conjuncts = kept;
    }
    let pushed_outputs: HashSet<usize> = pushed.iter().map(|(i, _)| *i).collect();
    push_into_view(tree, vid, &pushed)?;

    // distinct-removal optimization
    let mut semi = false;
    {
        let v_all_pushed = match tree.block(vid)? {
            QueryBlock::Select(v) => {
                v.distinct
                    && !v.is_aggregated()
                    && (0..v.select.len()).all(|i| pushed_outputs.contains(&i))
            }
            QueryBlock::SetOp(_) => false,
        };
        if v_all_pushed && !table_used_elsewhere(tree, view_ref, parent, &HashSet::new()) {
            if let QueryBlock::Select(v) = tree.block_mut(vid)? {
                v.distinct = false;
            }
            semi = true;
        }
    }
    let p = tree.select_mut(parent)?;
    let t = p.table_mut(view_ref).expect("checked above");
    t.join = JoinInfo::Lateral { semi };
    Ok(())
}

/// Pushes `(output index, outer expr)` equalities into the view (or each
/// UNION ALL branch).
fn push_into_view(tree: &mut QueryTree, vid: BlockId, pushed: &[(usize, QExpr)]) -> Result<()> {
    match tree.block(vid)? {
        QueryBlock::Select(_) => {
            let outputs: Vec<QExpr> = {
                let v = tree.select(vid)?;
                v.select.iter().map(|i| i.expr.clone()).collect()
            };
            let v = tree.select_mut(vid)?;
            for (idx, outer) in pushed {
                v.where_conjuncts
                    .push(QExpr::eq(outputs[*idx].clone(), outer.clone()));
            }
            Ok(())
        }
        QueryBlock::SetOp(so) => {
            let inputs = so.inputs.clone();
            for b in inputs {
                push_into_view(tree, b, pushed)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::testutil::{build, catalog};

    /// The paper's Q12 (completed): employees + job history for
    /// departments located in the UK or US, via a distinct view.
    const PAPER_Q12: &str = "SELECT e1.employee_name, j.job_title \
        FROM employees e1, job_history j, \
             (SELECT DISTINCT d.dept_id FROM departments d, locations l \
              WHERE d.loc_id = l.loc_id AND l.country_id IN ('UK', 'US')) v \
        WHERE e1.dept_id = v.dept_id AND e1.emp_id = j.emp_id AND \
              j.start_date > 19980101";

    #[test]
    fn q12_view_is_juxtaposed() {
        let cat = catalog();
        let tree = build(&cat, PAPER_Q12);
        let targets = CbViewTransform.find_targets(&tree, &cat);
        assert_eq!(targets.len(), 1);
        let Target::View {
            can_merge,
            can_jppd,
            ..
        } = &targets[0]
        else {
            panic!()
        };
        assert!(can_merge);
        assert!(can_jppd);
        assert_eq!(CbViewTransform.arity(&targets[0]), 3);
    }

    #[test]
    fn q12_to_q13_jppd_removes_distinct_and_becomes_lateral_semi() {
        let cat = catalog();
        let mut tree = build(&cat, PAPER_Q12);
        let targets = CbViewTransform.find_targets(&tree, &cat);
        // choice 2 = JPPD (merge is choice 1)
        CbViewTransform
            .apply(&mut tree, &cat, &targets[0], 2)
            .unwrap();
        tree.validate().unwrap();
        let root = tree.select(tree.root).unwrap();
        let vt = root
            .tables
            .iter()
            .find(|t| matches!(t.source, QTableSource::View(_)))
            .unwrap();
        assert!(matches!(vt.join, JoinInfo::Lateral { semi: true }));
        let QTableSource::View(vb) = vt.source else {
            panic!()
        };
        let v = tree.select(vb).unwrap();
        assert!(!v.distinct, "distinct must be removed");
        // the join predicate is now correlated inside the view
        assert!(tree.is_correlated(vb));
    }

    #[test]
    fn q12_to_q18_merge_pulls_distinct_up() {
        let cat = catalog();
        let mut tree = build(&cat, PAPER_Q12);
        let targets = CbViewTransform.find_targets(&tree, &cat);
        CbViewTransform
            .apply(&mut tree, &cat, &targets[0], 1)
            .unwrap();
        tree.validate().unwrap();
        let root = tree.select(tree.root).unwrap();
        // all four tables in one block
        assert_eq!(root.tables.len(), 4);
        // distinct pulled up with rowid keys: e1.rowid, j.rowid + outputs
        let keys = root.distinct_keys.as_ref().unwrap();
        assert_eq!(keys.len(), 3);
    }

    #[test]
    fn group_by_view_merges_with_rowid_grouping() {
        // the Q10 → Q11 shape
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT e1.employee_name, v.avg_sal \
             FROM employees e1, (SELECT dept_id, AVG(salary) avg_sal FROM employees \
                                 GROUP BY dept_id) v \
             WHERE e1.dept_id = v.dept_id AND e1.salary > 1000",
        );
        let targets = CbViewTransform.find_targets(&tree, &cat);
        let t = targets
            .iter()
            .find(|t| {
                matches!(
                    t,
                    Target::View {
                        can_merge: true,
                        ..
                    }
                )
            })
            .unwrap();
        CbViewTransform.apply(&mut tree, &cat, t, 1).unwrap();
        tree.validate().unwrap();
        let root = tree.select(tree.root).unwrap();
        assert_eq!(root.tables.len(), 2);
        // group by = e1.rowid + dept_id
        assert_eq!(root.group_by.len(), 2);
        // the avg output is now an aggregate in the parent
        assert!(root.select[1].expr.contains_agg());
    }

    #[test]
    fn jppd_into_group_by_view_keeps_group_by() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT e1.employee_name, v.avg_sal \
             FROM employees e1, (SELECT dept_id, AVG(salary) avg_sal FROM employees \
                                 GROUP BY dept_id) v \
             WHERE e1.dept_id = v.dept_id",
        );
        let targets = CbViewTransform.find_targets(&tree, &cat);
        let t = targets
            .iter()
            .find(|t| matches!(t, Target::View { can_jppd: true, .. }))
            .unwrap();
        let Target::View { can_merge, .. } = t else {
            panic!()
        };
        let jppd_choice = 1 + usize::from(*can_merge);
        CbViewTransform
            .apply(&mut tree, &cat, t, jppd_choice)
            .unwrap();
        tree.validate().unwrap();
        let root = tree.select(tree.root).unwrap();
        let vt = root
            .tables
            .iter()
            .find(|t| matches!(t.source, QTableSource::View(_)))
            .unwrap();
        // aggregate outputs are referenced → plain lateral, group-by kept
        assert!(matches!(vt.join, JoinInfo::Lateral { semi: false }));
        let QTableSource::View(vb) = vt.source else {
            panic!()
        };
        assert_eq!(tree.select(vb).unwrap().group_by.len(), 1);
    }

    #[test]
    fn jppd_into_union_all_view() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT d.department_name, v.eid FROM departments d, \
             (SELECT emp_id eid, dept_id did FROM employees \
              UNION ALL SELECT emp_id eid, dept_id did FROM job_history) v \
             WHERE v.did = d.dept_id",
        );
        let targets = CbViewTransform.find_targets(&tree, &cat);
        assert_eq!(targets.len(), 1);
        let Target::View {
            can_merge,
            can_jppd,
            ..
        } = &targets[0]
        else {
            panic!()
        };
        assert!(!can_merge);
        assert!(can_jppd);
        CbViewTransform
            .apply(&mut tree, &cat, &targets[0], 1)
            .unwrap();
        tree.validate().unwrap();
        // predicate landed in both branches
        let root = tree.select(tree.root).unwrap();
        let vt = root
            .tables
            .iter()
            .find(|t| matches!(t.source, QTableSource::View(_)))
            .unwrap();
        let QTableSource::View(vb) = vt.source else {
            panic!()
        };
        let QueryBlock::SetOp(so) = tree.block(vb).unwrap() else {
            panic!()
        };
        for b in &so.inputs {
            assert_eq!(tree.select(*b).unwrap().where_conjuncts.len(), 1);
        }
    }

    #[test]
    fn aggregated_parent_cannot_merge() {
        let cat = catalog();
        let tree = build(
            &cat,
            "SELECT COUNT(*) FROM employees e1, \
             (SELECT DISTINCT dept_id FROM departments) v \
             WHERE e1.dept_id = v.dept_id",
        );
        let targets = CbViewTransform.find_targets(&tree, &cat);
        // JPPD may still apply, but merge must not
        for t in &targets {
            let Target::View { can_merge, .. } = t else {
                panic!()
            };
            assert!(!can_merge);
        }
    }
}
