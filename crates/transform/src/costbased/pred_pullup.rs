//! Predicate pullup (§2.2.6): expensive filter predicates inside a view
//! are pulled into the containing query, which evaluates them lazily —
//! profitable when the containing query has a ROWNUM limit and the view
//! has a blocking operator (ORDER BY), so only the first k surviving
//! rows ever pay for the predicate (Q16 → Q17).

use super::{ApplyEffect, CbTransform, Target};
use cbqt_catalog::Catalog;
use cbqt_common::{Error, Result};
use cbqt_qgm::{BlockId, JoinInfo, OutputItem, QExpr, QTableSource, QueryBlock, QueryTree, RefId};

pub struct CbPredicatePullup;

impl CbTransform for CbPredicatePullup {
    fn name(&self) -> &'static str {
        "predicate pullup"
    }

    fn find_targets(&self, tree: &QueryTree, _catalog: &Catalog) -> Vec<Target> {
        let mut out = Vec::new();
        for id in tree.bottom_up() {
            let Ok(QueryBlock::Select(p)) = tree.block(id) else {
                continue;
            };
            // only considered when the containing query has a ROWNUM limit
            if p.rownum_limit.is_none() {
                continue;
            }
            for t in &p.tables {
                if !matches!(t.join, JoinInfo::Inner) {
                    continue;
                }
                let QTableSource::View(v) = t.source else {
                    continue;
                };
                let Ok(QueryBlock::Select(vs)) = tree.block(v) else {
                    continue;
                };
                // the view must contain a blocking operator
                if vs.order_by.is_empty() && !vs.is_aggregated() && !vs.distinct {
                    continue;
                }
                for (ci, c) in vs.where_conjuncts.iter().enumerate() {
                    if c.is_expensive() && !c.contains_subquery() && liftable(vs, c) {
                        out.push(Target::PullupPred {
                            parent: id,
                            view: v,
                            conjunct: ci,
                        });
                    }
                }
            }
        }
        out
    }

    fn apply(
        &self,
        tree: &mut QueryTree,
        _catalog: &Catalog,
        target: &Target,
        _choice: usize,
    ) -> Result<ApplyEffect> {
        let Target::PullupPred {
            parent,
            view,
            conjunct,
        } = target
        else {
            return Err(Error::transform("wrong target kind"));
        };
        pull_up(tree, *parent, *view, *conjunct)
    }
}

/// A conjunct can be lifted if it references only the view's own tables
/// (no deeper correlation) and contains no aggregates.
fn liftable(vs: &cbqt_qgm::SelectBlock, c: &QExpr) -> bool {
    let declared = vs.declared_refs();
    !c.contains_agg() && c.referenced_tables().iter().all(|r| declared.contains(r))
}

fn pull_up(
    tree: &mut QueryTree,
    parent: BlockId,
    view: BlockId,
    conjunct: usize,
) -> Result<ApplyEffect> {
    let view_ref: RefId = {
        let p = tree.select(parent)?;
        p.tables
            .iter()
            .find(|t| t.source == QTableSource::View(view))
            .map(|t| t.refid)
            .ok_or_else(|| Error::transform("view ref vanished"))?
    };
    let mut pred = {
        let vs = tree.select_mut(view)?;
        if conjunct >= vs.where_conjuncts.len() {
            return Err(Error::transform("conjunct index out of date"));
        }
        vs.where_conjuncts.remove(conjunct)
    };
    // every inner column the predicate uses must be exposed as an output
    let mut cols = Vec::new();
    pred.collect_cols(&mut cols);
    let mut mapping: Vec<((RefId, usize), usize)> = Vec::new();
    {
        let vs = tree.select_mut(view)?;
        for (r, c) in cols {
            if mapping.iter().any(|(k, _)| *k == (r, c)) {
                continue;
            }
            let existing = vs
                .select
                .iter()
                .position(|item| item.expr == QExpr::col(r, c));
            let idx = match existing {
                Some(i) => i,
                None => {
                    vs.select.push(OutputItem {
                        expr: QExpr::col(r, c),
                        name: format!("PU{}", vs.select.len()),
                    });
                    vs.select.len() - 1
                }
            };
            mapping.push(((r, c), idx));
        }
    }
    pred.rewrite(&mut |n| {
        if let QExpr::Col { table, column } = n {
            if let Some((_, idx)) = mapping.iter().find(|(k, _)| *k == (*table, *column)) {
                return Some(QExpr::col(view_ref, *idx));
            }
        }
        None
    });
    tree.select_mut(parent)?.where_conjuncts.push(pred);
    Ok(ApplyEffect::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::testutil::{build, catalog};

    /// The paper's Q16 shape: a blocking view with two expensive
    /// predicates under a ROWNUM < 20 outer query.
    const Q16ISH: &str = "SELECT v.employee_name FROM \
        (SELECT employee_name, salary FROM employees \
         WHERE EXPENSIVE(salary, 200) > 1000 AND EXPENSIVE(emp_id, 100) > 0 \
         ORDER BY employee_name) v \
        WHERE rownum < 20";

    #[test]
    fn two_targets_one_per_expensive_predicate() {
        let cat = catalog();
        let tree = build(&cat, Q16ISH);
        let targets = CbPredicatePullup.find_targets(&tree, &cat);
        assert_eq!(targets.len(), 2);
    }

    #[test]
    fn pullup_moves_predicate_and_exposes_columns() {
        let cat = catalog();
        let mut tree = build(&cat, Q16ISH);
        let targets = CbPredicatePullup.find_targets(&tree, &cat);
        // pull the second predicate (references emp_id, not an output)
        CbPredicatePullup
            .apply(&mut tree, &cat, &targets[1], 1)
            .unwrap();
        tree.validate().unwrap();
        let root = tree.select(tree.root).unwrap();
        assert_eq!(root.where_conjuncts.len(), 1);
        assert!(root.where_conjuncts[0].is_expensive());
        let QTableSource::View(v) = root.tables[0].source else {
            panic!()
        };
        let vs = tree.select(v).unwrap();
        assert_eq!(vs.where_conjuncts.len(), 1);
        // emp_id was appended as a new output
        assert_eq!(vs.select.len(), 3);
    }

    #[test]
    fn both_predicates_can_pull() {
        let cat = catalog();
        let mut tree = build(&cat, Q16ISH);
        // indices shift after the first pull: re-find targets
        let t1 = CbPredicatePullup.find_targets(&tree, &cat)[0].clone();
        CbPredicatePullup.apply(&mut tree, &cat, &t1, 1).unwrap();
        let t2 = CbPredicatePullup.find_targets(&tree, &cat)[0].clone();
        CbPredicatePullup.apply(&mut tree, &cat, &t2, 1).unwrap();
        tree.validate().unwrap();
        let root = tree.select(tree.root).unwrap();
        assert_eq!(root.where_conjuncts.len(), 2);
    }

    #[test]
    fn no_target_without_rownum() {
        let cat = catalog();
        let tree = build(
            &cat,
            "SELECT v.employee_name FROM \
             (SELECT employee_name FROM employees WHERE EXPENSIVE(salary, 200) > 1000 \
              ORDER BY employee_name) v",
        );
        assert!(CbPredicatePullup.find_targets(&tree, &cat).is_empty());
    }

    #[test]
    fn no_target_without_blocking_operator() {
        let cat = catalog();
        let tree = build(
            &cat,
            "SELECT v.employee_name FROM \
             (SELECT employee_name FROM employees WHERE EXPENSIVE(salary, 200) > 1000) v \
             WHERE rownum < 20",
        );
        assert!(CbPredicatePullup.find_targets(&tree, &cat).is_empty());
    }

    #[test]
    fn cheap_predicates_not_lifted() {
        let cat = catalog();
        let tree = build(
            &cat,
            "SELECT v.employee_name FROM \
             (SELECT employee_name FROM employees WHERE salary > 1000 ORDER BY employee_name) v \
             WHERE rownum < 20",
        );
        assert!(CbPredicatePullup.find_targets(&tree, &cat).is_empty());
    }
}
