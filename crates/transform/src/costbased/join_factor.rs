//! Join factorization (§2.2.5): a base table that appears in every
//! branch of a UNION ALL is pulled out of the branches and joined to the
//! remaining UNION ALL view once — Q14 → Q15. Applied one table at a
//! time; repeated application factors several common tables.

use super::{ApplyEffect, CbTransform, Target};
use cbqt_catalog::{Catalog, TableId};
use cbqt_common::{Error, Result, Value};
use cbqt_qgm::{
    BlockId, JoinInfo, OutputItem, QExpr, QTable, QTableSource, QueryBlock, QueryTree, RefId,
    SelectBlock, SetOp,
};

pub struct CbJoinFactorization;

impl CbTransform for CbJoinFactorization {
    fn name(&self) -> &'static str {
        "join factorization"
    }

    fn find_targets(&self, tree: &QueryTree, catalog: &Catalog) -> Vec<Target> {
        let mut out = Vec::new();
        for id in tree.bottom_up() {
            let Ok(QueryBlock::SetOp(so)) = tree.block(id) else {
                continue;
            };
            if so.op != SetOp::UnionAll || so.inputs.len() < 2 {
                continue;
            }
            let Some(candidates) = common_tables(tree, &so.inputs) else {
                continue;
            };
            for tid in candidates {
                if plan_factorization(tree, id, tid).is_some() {
                    out.push(Target::Factorize {
                        setop: id,
                        table: tid,
                    });
                }
            }
        }
        let _ = catalog;
        out
    }

    fn apply(
        &self,
        tree: &mut QueryTree,
        _catalog: &Catalog,
        target: &Target,
        _choice: usize,
    ) -> Result<ApplyEffect> {
        let Target::Factorize { setop, table } = target else {
            return Err(Error::transform("wrong target kind"));
        };
        let plan = plan_factorization(tree, *setop, *table)
            .ok_or_else(|| Error::transform("factorization no longer applicable"))?;
        execute_factorization(tree, *setop, plan)
    }
}

/// Table ids appearing exactly once in every branch.
fn common_tables(tree: &QueryTree, inputs: &[BlockId]) -> Option<Vec<TableId>> {
    let mut common: Option<Vec<TableId>> = None;
    for b in inputs {
        let Ok(QueryBlock::Select(s)) = tree.block(*b) else {
            return None;
        };
        if s.is_aggregated()
            || s.distinct
            || s.distinct_keys.is_some()
            || s.rownum_limit.is_some()
            || !s.order_by.is_empty()
        {
            return None;
        }
        let mut ids = Vec::new();
        for t in &s.tables {
            if let (QTableSource::Base(tid), JoinInfo::Inner) = (&t.source, &t.join) {
                ids.push(*tid);
            }
        }
        let uniq: Vec<TableId> = ids
            .iter()
            .copied()
            .filter(|t| ids.iter().filter(|x| *x == t).count() == 1)
            .collect();
        common = Some(match common {
            None => uniq,
            Some(prev) => prev.into_iter().filter(|t| uniq.contains(t)).collect(),
        });
    }
    common.filter(|c| !c.is_empty())
}

/// What factoring `table` out of `setop` would do, per branch.
struct FactorPlan {
    /// per-branch: the table reference to remove
    branch_refs: Vec<RefId>,
    /// output position → the table column it passes through (consistent
    /// across branches)
    passthrough: Vec<(usize, usize)>,
    /// sorted table columns used in join predicates; per branch, the
    /// expressions they join to
    join_cols: Vec<usize>,
    branch_join_exprs: Vec<Vec<QExpr>>,
    /// the table entry cloned from branch 0 (provides alias + TableId)
    table_entry: QTable,
}

fn plan_factorization(tree: &QueryTree, setop: BlockId, tid: TableId) -> Option<FactorPlan> {
    let Ok(QueryBlock::SetOp(so)) = tree.block(setop) else {
        return None;
    };
    let inputs = so.inputs.clone();
    let mut branch_refs = Vec::new();
    let mut passthrough: Option<Vec<(usize, usize)>> = None;
    let mut join_cols: Option<Vec<usize>> = None;
    let mut branch_join_exprs: Vec<Vec<QExpr>> = Vec::new();
    let mut table_entry: Option<QTable> = None;

    for b in &inputs {
        let Ok(s) = tree.select(*b) else { return None };
        let t = s
            .tables
            .iter()
            .find(|t| t.source == QTableSource::Base(tid) && t.join.is_inner())?;
        let tref = t.refid;
        if table_entry.is_none() {
            table_entry = Some(t.clone());
        }
        branch_refs.push(tref);

        // outputs referencing the table must be plain column passthroughs
        let mut pt = Vec::new();
        for (p, item) in s.select.iter().enumerate() {
            if item.expr.referenced_tables().contains(&tref) {
                match &item.expr {
                    QExpr::Col { table, column } if *table == tref => pt.push((p, *column)),
                    _ => return None,
                }
            }
        }
        match &passthrough {
            None => passthrough = Some(pt),
            Some(prev) if *prev == pt => {}
            _ => return None,
        }

        // conjuncts referencing the table must be `t.col = local expr`
        // (single-table predicates on t are not supported — they would
        // have to be identical across branches)
        let mut jc: Vec<(usize, QExpr)> = Vec::new();
        for c in &s.where_conjuncts {
            if !c.referenced_tables().contains(&tref) {
                continue;
            }
            let (l, r) = c.as_equality()?;
            let (tcol, expr) = match (l, r) {
                (QExpr::Col { table, column }, other) if *table == tref => (*column, other),
                (other, QExpr::Col { table, column }) if *table == tref => (*column, other),
                _ => return None,
            };
            if expr.referenced_tables().contains(&tref)
                || expr.referenced_tables().is_empty()
                || expr.contains_subquery()
            {
                return None;
            }
            jc.push((tcol, expr.clone()));
        }
        jc.sort_by_key(|(c, _)| *c);
        let cols: Vec<usize> = jc.iter().map(|(c, _)| *c).collect();
        match &join_cols {
            None => join_cols = Some(cols),
            Some(prev) if *prev == cols => {}
            _ => return None,
        }
        branch_join_exprs.push(jc.into_iter().map(|(_, e)| e).collect());
    }
    Some(FactorPlan {
        branch_refs,
        passthrough: passthrough?,
        join_cols: join_cols?,
        branch_join_exprs,
        table_entry: table_entry?,
    })
}

fn execute_factorization(
    tree: &mut QueryTree,
    setop: BlockId,
    plan: FactorPlan,
) -> Result<ApplyEffect> {
    let inputs = {
        let QueryBlock::SetOp(so) = tree.block(setop)? else {
            return Err(Error::transform("not a set op"));
        };
        so.inputs.clone()
    };
    let arity = tree.block(setop)?.output_arity(tree);

    // find who references the setop before we restructure
    let parent_view = crate::util::find_view_ref(tree, setop);
    let is_root = tree.root == setop;
    if parent_view.is_none() && !is_root {
        return Err(Error::transform("factorization target has no parent"));
    }

    // rewrite each branch
    for (bi, b) in inputs.iter().enumerate() {
        let tref = plan.branch_refs[bi];
        let s = tree.select_mut(*b)?;
        s.tables.retain(|t| t.refid != tref);
        s.where_conjuncts
            .retain(|c| !c.referenced_tables().contains(&tref));
        for (p, _) in &plan.passthrough {
            s.select[*p] = OutputItem {
                expr: QExpr::Lit(Value::Null),
                name: format!("PRUNED{p}"),
            };
        }
        for (k, e) in plan.branch_join_exprs[bi].iter().enumerate() {
            s.select.push(OutputItem {
                expr: e.clone(),
                name: format!("FJ{k}"),
            });
        }
    }

    // build the factored block F
    let rt = tree.new_ref();
    let rv = tree.new_ref();
    let mut f = SelectBlock::default();
    f.tables.push(QTable {
        refid: rt,
        alias: plan.table_entry.alias.clone(),
        source: plan.table_entry.source.clone(),
        join: JoinInfo::Inner,
    });
    f.tables.push(QTable {
        refid: rv,
        alias: format!("VW_F{}", setop.0),
        source: QTableSource::View(setop),
        join: JoinInfo::Inner,
    });
    for p in 0..arity {
        let expr = match plan.passthrough.iter().find(|(pp, _)| *pp == p) {
            Some((_, col)) => QExpr::col(rt, *col),
            None => QExpr::col(rv, p),
        };
        f.select.push(OutputItem {
            expr,
            name: format!("C{p}"),
        });
    }
    for (k, col) in plan.join_cols.iter().enumerate() {
        f.where_conjuncts
            .push(QExpr::eq(QExpr::col(rt, *col), QExpr::col(rv, arity + k)));
    }
    let fid = tree.add_block(QueryBlock::Select(f));

    // repoint the parent (or root) to F
    if is_root {
        tree.root = fid;
    } else if let Some((pblock, pref)) = parent_view {
        let p = tree.select_mut(pblock)?;
        let t = p.table_mut(pref).expect("parent view ref");
        t.source = QTableSource::View(fid);
    }
    Ok(ApplyEffect {
        created_views: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::testutil::{build, catalog};

    /// The paper's Q14 (reconstructed): two UNION ALL branches sharing
    /// departments + locations; we factor departments.
    const Q14ISH: &str = "SELECT e.employee_name, d.department_name \
        FROM employees e, departments d WHERE e.dept_id = d.dept_id \
        UNION ALL \
        SELECT j.job_title, d.department_name \
        FROM job_history j, departments d WHERE j.dept_id = d.dept_id";

    #[test]
    fn finds_common_table() {
        let cat = catalog();
        let tree = build(&cat, Q14ISH);
        let targets = CbJoinFactorization.find_targets(&tree, &cat);
        assert_eq!(targets.len(), 1, "{targets:?}");
        let Target::Factorize { table, .. } = &targets[0] else {
            panic!()
        };
        assert_eq!(cat.table(*table).unwrap().name, "departments");
    }

    #[test]
    fn factorization_pulls_table_out() {
        let cat = catalog();
        let mut tree = build(&cat, Q14ISH);
        let targets = CbJoinFactorization.find_targets(&tree, &cat);
        CbJoinFactorization
            .apply(&mut tree, &cat, &targets[0], 1)
            .unwrap();
        tree.validate().unwrap();
        // the new root joins departments to a UNION ALL view
        let root = tree.select(tree.root).unwrap();
        assert_eq!(root.tables.len(), 2);
        assert!(matches!(root.tables[0].source, QTableSource::Base(_)));
        assert!(matches!(root.tables[1].source, QTableSource::View(_)));
        assert_eq!(root.where_conjuncts.len(), 1);
        // branches no longer contain departments
        let QTableSource::View(u) = root.tables[1].source else {
            panic!()
        };
        let QueryBlock::SetOp(so) = tree.block(u).unwrap() else {
            panic!()
        };
        for b in &so.inputs {
            let s = tree.select(*b).unwrap();
            assert_eq!(s.tables.len(), 1);
            // join expr exposed as an extra output
            assert_eq!(s.select.len(), 3);
        }
    }

    #[test]
    fn no_target_when_table_filtered_differently() {
        let cat = catalog();
        let tree = build(
            &cat,
            "SELECT e.employee_name FROM employees e, departments d \
             WHERE e.dept_id = d.dept_id AND d.loc_id = 1 \
             UNION ALL \
             SELECT j.job_title FROM job_history j, departments d WHERE j.dept_id = d.dept_id",
        );
        // d.loc_id = 1 is a single-table predicate on d → not factorable
        assert!(CbJoinFactorization.find_targets(&tree, &cat).is_empty());
    }

    #[test]
    fn no_target_for_union_distinct() {
        let cat = catalog();
        let tree = build(
            &cat,
            "SELECT d.dept_id FROM departments d UNION SELECT d.dept_id FROM departments d",
        );
        assert!(CbJoinFactorization.find_targets(&tree, &cat).is_empty());
    }

    #[test]
    fn factored_query_under_a_parent_view() {
        let cat = catalog();
        let mut tree = build(&cat, &format!("SELECT w.employee_name FROM ({Q14ISH}) w"));
        let targets = CbJoinFactorization.find_targets(&tree, &cat);
        assert_eq!(targets.len(), 1);
        CbJoinFactorization
            .apply(&mut tree, &cat, &targets[0], 1)
            .unwrap();
        tree.validate().unwrap();
    }
}
