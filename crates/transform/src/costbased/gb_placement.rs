//! Group-by placement (§2.2.4): pushes the group-by operator below the
//! joins ("eager aggregation", [Yan & Larson]) by pre-aggregating one
//! table into a group-by view keyed on its join and grouping columns.
//!
//! `SUM`/`COUNT` become partial aggregates re-aggregated with `SUM`
//! above the join; `AVG` decomposes into `SUM`/`COUNT`; `MIN`/`MAX`
//! re-aggregate with themselves. Valid because the view groups by every
//! column of the chosen table that the join or the outer query uses, so
//! join fan-out multiplies whole groups uniformly.

use super::{ApplyEffect, CbTransform, Target};
use cbqt_catalog::Catalog;
use cbqt_common::{Error, Result};
use cbqt_qgm::{
    AggFunc, BinOp, BlockId, JoinInfo, OutputItem, QExpr, QTable, QTableSource, QueryBlock,
    QueryTree, RefId, SelectBlock,
};

pub struct CbGroupByPlacement;

impl CbTransform for CbGroupByPlacement {
    fn name(&self) -> &'static str {
        "group-by placement"
    }

    fn find_targets(&self, tree: &QueryTree, _catalog: &Catalog) -> Vec<Target> {
        let mut out = Vec::new();
        for id in tree.bottom_up() {
            let Ok(QueryBlock::Select(s)) = tree.block(id) else {
                continue;
            };
            if !eligible_block(s) {
                continue;
            }
            for t in &s.tables {
                if !matches!(t.source, QTableSource::Base(_)) || !t.join.is_inner() {
                    continue;
                }
                if aggs_of(s).is_empty() {
                    continue;
                }
                if aggs_all_on(s, t.refid) {
                    out.push(Target::GroupByPush {
                        block: id,
                        table_ref: t.refid,
                    });
                }
            }
        }
        out
    }

    fn apply(
        &self,
        tree: &mut QueryTree,
        _catalog: &Catalog,
        target: &Target,
        _choice: usize,
    ) -> Result<ApplyEffect> {
        let Target::GroupByPush { block, table_ref } = target else {
            return Err(Error::transform("wrong target kind"));
        };
        push_group_by(tree, *block, *table_ref)
    }
}

fn eligible_block(s: &SelectBlock) -> bool {
    s.group_by.len() + s.tables.len() >= 3 // group-by over ≥2 tables
        && !s.group_by.is_empty()
        && s.grouping_sets.is_none()
        && !s.distinct
        && s.distinct_keys.is_none()
        && s.rownum_limit.is_none()
        && s.tables.len() >= 2
        && s.tables.iter().all(|t| t.join.is_inner())
        && !s.select.iter().any(|i| i.expr.contains_window())
        && !block_refs_subqueries(s)
}

fn block_refs_subqueries(s: &SelectBlock) -> bool {
    let mut found = false;
    s.for_each_expr(&mut |e| {
        if e.contains_subquery() {
            found = true;
        }
    });
    found
}

/// Collects the distinct aggregate expressions of a block.
fn aggs_of(s: &SelectBlock) -> Vec<QExpr> {
    let mut aggs = Vec::new();
    s.for_each_expr(&mut |e| {
        e.walk(&mut |n| {
            if matches!(n, QExpr::Agg { .. }) && !aggs.contains(n) {
                aggs.push(n.clone());
            }
        });
    });
    aggs
}

/// All aggregates reference only columns of `table` (COUNT(*) counts the
/// join result, which eager aggregation also supports), none is
/// DISTINCT, and functions are decomposable.
fn aggs_all_on(s: &SelectBlock, table: RefId) -> bool {
    for a in aggs_of(s) {
        let QExpr::Agg { arg, distinct, .. } = &a else {
            return false;
        };
        if *distinct {
            return false;
        }
        if let Some(arg) = arg {
            let refs = arg.referenced_tables();
            if refs.is_empty() || !refs.iter().all(|r| *r == table) {
                return false;
            }
        }
        // COUNT(*) is fine: the partial counts rows of `table`, the join
        // fan-out is applied by the outer SUM
    }
    true
}

fn push_group_by(tree: &mut QueryTree, block: BlockId, table_ref: RefId) -> Result<ApplyEffect> {
    // 1. columns of the table needed outside aggregate arguments
    let mut needed: Vec<usize> = Vec::new();
    {
        let s = tree.select(block)?;
        let mut note = |e: &QExpr| {
            e.rewrite_probe(&mut |n| match n {
                QExpr::Agg { .. } => true, // don't descend into agg args
                QExpr::Col { table, column } => {
                    if *table == table_ref && !needed.contains(column) {
                        needed.push(*column);
                    }
                    false
                }
                _ => false,
            });
        };
        for c in &s.where_conjuncts {
            note(c);
        }
        for g in &s.group_by {
            note(g);
        }
        for i in &s.select {
            note(&i.expr);
        }
        for h in &s.having {
            note(h);
        }
        for o in &s.order_by {
            note(&o.expr);
        }
    }
    needed.sort_unstable();

    // 2. build the pre-aggregation view
    let aggs = {
        let s = tree.select(block)?;
        aggs_of(s)
    };
    let (table_entry, moved_preds) = {
        let s = tree.select_mut(block)?;
        let pos = s
            .tables
            .iter()
            .position(|t| t.refid == table_ref)
            .ok_or_else(|| Error::transform("table ref vanished"))?;
        let entry = s.tables.remove(pos);
        // single-table predicates on the table move into the view
        let mut moved = Vec::new();
        let mut kept = Vec::new();
        for c in s.where_conjuncts.drain(..) {
            let refs = c.referenced_tables();
            if !c.contains_subquery() && !refs.is_empty() && refs.iter().all(|r| *r == table_ref) {
                moved.push(c);
            } else {
                kept.push(c);
            }
        }
        s.where_conjuncts = kept;
        (entry, moved)
    };

    let mut view = SelectBlock {
        tables: vec![QTable {
            join: JoinInfo::Inner,
            ..table_entry
        }],
        where_conjuncts: moved_preds,
        ..Default::default()
    };
    for &c in &needed {
        view.select.push(OutputItem {
            expr: QExpr::col(table_ref, c),
            name: format!("K{c}"),
        });
        view.group_by.push(QExpr::col(table_ref, c));
    }
    // partial aggregates; record how each original agg is rebuilt
    let mut rebuild: Vec<(QExpr, QExpr)> = Vec::new(); // (original, outer replacement)
    let rv = tree.new_ref();
    for a in &aggs {
        let QExpr::Agg { func, arg, .. } = a else {
            unreachable!()
        };
        let slot = view.select.len();
        match func {
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                view.select.push(OutputItem {
                    expr: a.clone(),
                    name: format!("P{slot}"),
                });
                let outer_func = if *func == AggFunc::Sum {
                    AggFunc::Sum
                } else {
                    *func
                };
                rebuild.push((
                    a.clone(),
                    QExpr::Agg {
                        func: outer_func,
                        arg: Some(Box::new(QExpr::col(rv, slot))),
                        distinct: false,
                    },
                ));
            }
            AggFunc::Count | AggFunc::CountStar => {
                view.select.push(OutputItem {
                    expr: a.clone(),
                    name: format!("P{slot}"),
                });
                rebuild.push((
                    a.clone(),
                    QExpr::Agg {
                        func: AggFunc::Sum,
                        arg: Some(Box::new(QExpr::col(rv, slot))),
                        distinct: false,
                    },
                ));
            }
            AggFunc::Avg => {
                let arg = arg.clone().expect("AVG has an argument");
                view.select.push(OutputItem {
                    expr: QExpr::Agg {
                        func: AggFunc::Sum,
                        arg: Some(arg.clone()),
                        distinct: false,
                    },
                    name: format!("P{slot}S"),
                });
                view.select.push(OutputItem {
                    expr: QExpr::Agg {
                        func: AggFunc::Count,
                        arg: Some(arg),
                        distinct: false,
                    },
                    name: format!("P{slot}C"),
                });
                let sum = QExpr::Agg {
                    func: AggFunc::Sum,
                    arg: Some(Box::new(QExpr::col(rv, slot))),
                    distinct: false,
                };
                let cnt = QExpr::Agg {
                    func: AggFunc::Sum,
                    arg: Some(Box::new(QExpr::col(rv, slot + 1))),
                    distinct: false,
                };
                rebuild.push((a.clone(), QExpr::bin(BinOp::Div, sum, cnt)));
            }
        }
    }
    let vid = tree.add_block(QueryBlock::Select(view));

    // 3. splice the view into the block and rewrite expressions
    {
        let s = tree.select_mut(block)?;
        s.tables.push(QTable {
            refid: rv,
            alias: format!("VW_G{}", block.0),
            source: QTableSource::View(vid),
            join: JoinInfo::Inner,
        });
        let col_slot = |c: usize| needed.iter().position(|&x| x == c).expect("collected");
        s.for_each_expr_mut(&mut |e| {
            e.rewrite_topdown(&mut |n| {
                if let Some((_, repl)) = rebuild.iter().find(|(orig, _)| orig == n) {
                    return Some(repl.clone());
                }
                if let QExpr::Col { table, column } = n {
                    if *table == table_ref {
                        return Some(QExpr::col(rv, col_slot(*column)));
                    }
                }
                None
            });
        });
    }
    Ok(ApplyEffect::default())
}

/// Small extension trait: a probing walk that can refuse to descend.
trait RewriteProbe {
    fn rewrite_probe(&self, stop: &mut impl FnMut(&QExpr) -> bool);
}

impl RewriteProbe for QExpr {
    fn rewrite_probe(&self, stop: &mut impl FnMut(&QExpr) -> bool) {
        if stop(self) {
            return;
        }
        // visit direct children only
        let mut clone = self.clone();
        clone.for_each_child_mut(|c| c.rewrite_probe(stop));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::testutil::{build, catalog};

    const GB_QUERY: &str = "SELECT d.department_name, SUM(e.salary) total, AVG(e.salary) a, \
                                   COUNT(*) c \
        FROM employees e, departments d \
        WHERE e.dept_id = d.dept_id \
        GROUP BY d.department_name";

    #[test]
    fn finds_target_on_aggregated_table() {
        let cat = catalog();
        let tree = build(&cat, GB_QUERY);
        let targets = CbGroupByPlacement.find_targets(&tree, &cat);
        assert_eq!(targets.len(), 1);
        let Target::GroupByPush { table_ref, .. } = &targets[0] else {
            panic!()
        };
        let root = tree.select(tree.root).unwrap();
        assert_eq!(root.table(*table_ref).unwrap().alias, "e");
    }

    #[test]
    fn pushes_partial_aggregation_below_join() {
        let cat = catalog();
        let mut tree = build(&cat, GB_QUERY);
        let targets = CbGroupByPlacement.find_targets(&tree, &cat);
        CbGroupByPlacement
            .apply(&mut tree, &cat, &targets[0], 1)
            .unwrap();
        tree.validate().unwrap();
        let root = tree.select(tree.root).unwrap();
        // employees replaced by a view
        assert!(root
            .tables
            .iter()
            .any(|t| matches!(t.source, QTableSource::View(_))));
        let vt = root
            .tables
            .iter()
            .find(|t| matches!(t.source, QTableSource::View(_)))
            .unwrap();
        let QTableSource::View(vb) = vt.source else {
            panic!()
        };
        let v = tree.select(vb).unwrap();
        // view groups by e.dept_id and carries SUM, SUM+COUNT (avg), COUNT(*)
        assert_eq!(v.group_by.len(), 1);
        assert_eq!(v.select.len(), 1 + 4);
        // outer aggregates re-aggregate the partials
        assert!(root.select[1].expr.contains_agg());
        // outer AVG became SUM/SUM
        assert!(matches!(
            root.select[2].expr,
            QExpr::Bin { op: BinOp::Div, .. }
        ));
    }

    #[test]
    fn no_target_when_aggs_span_tables() {
        let cat = catalog();
        let tree = build(
            &cat,
            "SELECT SUM(e.salary + d.loc_id) FROM employees e, departments d \
             WHERE e.dept_id = d.dept_id GROUP BY d.department_name",
        );
        assert!(CbGroupByPlacement.find_targets(&tree, &cat).is_empty());
    }

    #[test]
    fn no_target_for_distinct_agg() {
        let cat = catalog();
        let tree = build(
            &cat,
            "SELECT COUNT(DISTINCT e.salary) FROM employees e, departments d \
             WHERE e.dept_id = d.dept_id GROUP BY d.department_name",
        );
        assert!(CbGroupByPlacement.find_targets(&tree, &cat).is_empty());
    }

    #[test]
    fn single_table_predicates_move_into_view() {
        let cat = catalog();
        let mut tree = build(
            &cat,
            "SELECT d.department_name, SUM(e.salary) FROM employees e, departments d \
             WHERE e.dept_id = d.dept_id AND e.salary > 100 GROUP BY d.department_name",
        );
        let targets = CbGroupByPlacement.find_targets(&tree, &cat);
        CbGroupByPlacement
            .apply(&mut tree, &cat, &targets[0], 1)
            .unwrap();
        tree.validate().unwrap();
        let root = tree.select(tree.root).unwrap();
        let vt = root
            .tables
            .iter()
            .find(|t| matches!(t.source, QTableSource::View(_)))
            .unwrap();
        let QTableSource::View(vb) = vt.source else {
            panic!()
        };
        assert_eq!(tree.select(vb).unwrap().where_conjuncts.len(), 1);
        // join predicate stays outside
        assert_eq!(root.where_conjuncts.len(), 1);
    }
}
