//! Row tables and B-tree indexes.

use cbqt_catalog::{Catalog, ColumnStats, Histogram, IndexId, TableId, TableStats};
use cbqt_common::{Error, Result, Row, Value};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Bound;

/// Heap of rows for one table.
#[derive(Debug, Default, Clone)]
pub struct TableData {
    pub rows: Vec<Row>,
}

/// A multi-column B-tree index mapping key tuples to row ordinals.
///
/// NULL key components are stored (sorted last by `Value`'s total order)
/// but equality probes skip NULL keys, matching SQL index semantics.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    pub table: TableId,
    pub columns: Vec<usize>,
    map: BTreeMap<Vec<Value>, Vec<usize>>,
}

impl BTreeIndex {
    fn key_of(&self, row: &Row) -> Vec<Value> {
        self.columns.iter().map(|&c| row[c].clone()).collect()
    }

    /// Row ordinals whose key equals `key` (NULL components never match).
    pub fn lookup_eq(&self, key: &[Value]) -> &[usize] {
        if key.iter().any(Value::is_null) {
            return &[];
        }
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Row ordinals whose *leading column* lies in the given bounds.
    /// Only single-column ranges are supported (that is all the planner
    /// generates); NULL keys are excluded.
    pub fn lookup_range(&self, lo: Bound<&Value>, hi: Bound<&Value>, out: &mut Vec<usize>) {
        let lo_key = match lo {
            Bound::Included(v) => Bound::Included(vec![v.clone()]),
            Bound::Excluded(v) => {
                // exclusive lower bound must skip all composite keys with
                // the same leading value, so bump to "value, +inf" — we
                // emulate by including and filtering below
                Bound::Included(vec![v.clone()])
            }
            Bound::Unbounded => Bound::Unbounded,
        };
        let excl_lo = matches!(lo, Bound::Excluded(_));
        for (k, rows) in self.map.range((lo_key, Bound::Unbounded)) {
            let lead = &k[0];
            if lead.is_null() {
                break; // nulls sort last
            }
            if excl_lo {
                if let Bound::Excluded(v) = lo {
                    if lead.sql_eq(v) == Some(true) {
                        continue;
                    }
                }
            }
            match hi {
                Bound::Included(v) => {
                    if lead
                        .sql_cmp(v)
                        .map(|o| o == std::cmp::Ordering::Greater)
                        .unwrap_or(true)
                    {
                        break;
                    }
                }
                Bound::Excluded(v) => {
                    if lead
                        .sql_cmp(v)
                        .map(|o| o != std::cmp::Ordering::Less)
                        .unwrap_or(true)
                    {
                        break;
                    }
                }
                Bound::Unbounded => {}
            }
            out.extend_from_slice(rows);
        }
    }

    /// Number of distinct keys (used to report index statistics).
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// All table data and index structures.
#[derive(Debug, Default, Clone)]
pub struct Storage {
    tables: HashMap<TableId, TableData>,
    indexes: HashMap<IndexId, BTreeIndex>,
}

impl Storage {
    pub fn new() -> Storage {
        Storage::default()
    }

    /// Ensures a heap exists for `table`.
    pub fn create_table(&mut self, table: TableId) {
        self.tables.entry(table).or_default();
    }

    pub fn table(&self, table: TableId) -> Result<&TableData> {
        cbqt_common::failpoint!(cbqt_common::failpoint::STORAGE_SCAN);
        self.tables
            .get(&table)
            .ok_or_else(|| Error::execution(format!("no data for table id {}", table.0)))
    }

    pub fn row_count(&self, table: TableId) -> usize {
        self.tables.get(&table).map(|t| t.rows.len()).unwrap_or(0)
    }

    /// Appends a row, maintaining any indexes on the table.
    pub fn insert(&mut self, table: TableId, row: Row) -> Result<()> {
        let data = self.tables.entry(table).or_default();
        let ordinal = data.rows.len();
        data.rows.push(row);
        let row_ref = &self.tables[&table].rows[ordinal];
        let keys: Vec<(IndexId, Vec<Value>)> = self
            .indexes
            .iter()
            .filter(|(_, ix)| ix.table == table)
            .map(|(id, ix)| (*id, ix.key_of(row_ref)))
            .collect();
        for (id, key) in keys {
            self.indexes
                .get_mut(&id)
                .unwrap()
                .map
                .entry(key)
                .or_default()
                .push(ordinal);
        }
        Ok(())
    }

    /// Bulk-appends rows (faster than repeated `insert`).
    pub fn insert_many(&mut self, table: TableId, rows: Vec<Row>) -> Result<()> {
        for r in rows {
            self.insert(table, r)?;
        }
        Ok(())
    }

    /// Builds (or rebuilds) the physical structure for a catalog index.
    pub fn build_index(&mut self, id: IndexId, table: TableId, columns: Vec<usize>) -> Result<()> {
        let data = self.table(table)?;
        let mut map: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
        for (ordinal, row) in data.rows.iter().enumerate() {
            let key: Vec<Value> = columns.iter().map(|&c| row[c].clone()).collect();
            map.entry(key).or_default().push(ordinal);
        }
        self.indexes.insert(
            id,
            BTreeIndex {
                table,
                columns,
                map,
            },
        );
        Ok(())
    }

    pub fn index(&self, id: IndexId) -> Result<&BTreeIndex> {
        cbqt_common::failpoint!(cbqt_common::failpoint::STORAGE_INDEX);
        self.indexes
            .get(&id)
            .ok_or_else(|| Error::execution(format!("index id {} not built", id.0)))
    }

    /// Recomputes optimizer statistics for every table in the catalog
    /// (the engine's ANALYZE).
    pub fn analyze(&self, catalog: &mut Catalog) -> Result<()> {
        let ids: Vec<TableId> = catalog.tables().map(|t| t.id).collect();
        for id in ids {
            let ncols = catalog.table(id)?.columns.len();
            let stats = match self.tables.get(&id) {
                Some(data) => compute_stats(data, ncols),
                None => TableStats {
                    analyzed: true,
                    rows: 0,
                    columns: vec![ColumnStats::default(); ncols],
                },
            };
            catalog.table_mut(id)?.stats = stats;
        }
        Ok(())
    }
}

const HISTOGRAM_BUCKETS: usize = 32;
/// Histograms are only collected for columns with at least this many rows
/// (cheap guard against noise on tiny tables).
const HISTOGRAM_MIN_ROWS: usize = 64;

fn compute_stats(data: &TableData, ncols: usize) -> TableStats {
    let rows = data.rows.len() as u64;
    let mut columns = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let mut distinct: HashSet<Value> = HashSet::new();
        let mut nulls = 0u64;
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        let mut numeric: Vec<f64> = Vec::new();
        for row in &data.rows {
            let v = &row[c];
            if v.is_null() {
                nulls += 1;
                continue;
            }
            if min.as_ref().map(|m| v.total_cmp(m).is_lt()).unwrap_or(true) {
                min = Some(v.clone());
            }
            if max.as_ref().map(|m| v.total_cmp(m).is_gt()).unwrap_or(true) {
                max = Some(v.clone());
            }
            if let Some(f) = v.as_f64() {
                numeric.push(f);
            }
            distinct.insert(v.clone());
        }
        let histogram =
            if numeric.len() >= HISTOGRAM_MIN_ROWS && numeric.len() == (rows - nulls) as usize {
                Histogram::build(numeric.into_iter(), HISTOGRAM_BUCKETS)
            } else {
                None
            };
        columns.push(ColumnStats {
            ndv: distinct.len() as u64,
            nulls,
            min,
            max,
            histogram,
        });
    }
    TableStats {
        analyzed: true,
        rows,
        columns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbqt_catalog::{Column, Constraint};
    use cbqt_common::DataType;

    fn setup() -> (Catalog, Storage, TableId) {
        let mut cat = Catalog::new();
        let t = cat
            .add_table(
                "t",
                vec![
                    Column {
                        name: "id".into(),
                        data_type: DataType::Int,
                        not_null: true,
                    },
                    Column {
                        name: "grp".into(),
                        data_type: DataType::Int,
                        not_null: false,
                    },
                ],
                vec![Constraint::PrimaryKey(vec![0])],
            )
            .unwrap();
        let mut st = Storage::new();
        st.create_table(t);
        (cat, st, t)
    }

    #[test]
    fn insert_and_scan() {
        let (_, mut st, t) = setup();
        st.insert(t, vec![Value::Int(1), Value::Int(10)]).unwrap();
        st.insert(t, vec![Value::Int(2), Value::Null]).unwrap();
        assert_eq!(st.row_count(t), 2);
        assert_eq!(st.table(t).unwrap().rows[1][1], Value::Null);
    }

    #[test]
    fn index_eq_lookup() {
        let (mut cat, mut st, t) = setup();
        for i in 0..100 {
            st.insert(t, vec![Value::Int(i), Value::Int(i % 7)])
                .unwrap();
        }
        let ix = cat.add_index("i_grp", t, vec![1], false).unwrap();
        st.build_index(ix, t, vec![1]).unwrap();
        let idx = st.index(ix).unwrap();
        let hits = idx.lookup_eq(&[Value::Int(3)]);
        assert_eq!(hits.len(), 14); // 3, 10, ..., 94
        assert!(idx.lookup_eq(&[Value::Null]).is_empty());
    }

    #[test]
    fn index_maintained_on_insert() {
        let (mut cat, mut st, t) = setup();
        let ix = cat.add_index("i_grp", t, vec![1], false).unwrap();
        st.build_index(ix, t, vec![1]).unwrap();
        st.insert(t, vec![Value::Int(1), Value::Int(42)]).unwrap();
        st.insert(t, vec![Value::Int(2), Value::Int(42)]).unwrap();
        assert_eq!(st.index(ix).unwrap().lookup_eq(&[Value::Int(42)]).len(), 2);
    }

    #[test]
    fn index_range_scan() {
        let (mut cat, mut st, t) = setup();
        for i in 0..50 {
            st.insert(t, vec![Value::Int(i), Value::Int(i)]).unwrap();
        }
        st.insert(t, vec![Value::Int(50), Value::Null]).unwrap();
        let ix = cat.add_index("i_grp", t, vec![1], false).unwrap();
        st.build_index(ix, t, vec![1]).unwrap();
        let idx = st.index(ix).unwrap();
        let mut out = Vec::new();
        idx.lookup_range(
            Bound::Included(&Value::Int(10)),
            Bound::Excluded(&Value::Int(20)),
            &mut out,
        );
        assert_eq!(out.len(), 10);
        out.clear();
        idx.lookup_range(Bound::Excluded(&Value::Int(47)), Bound::Unbounded, &mut out);
        assert_eq!(out.len(), 2); // 48, 49 — the NULL key must not appear
    }

    #[test]
    fn composite_index_lookup() {
        let (mut cat, mut st, t) = setup();
        for i in 0..20 {
            st.insert(t, vec![Value::Int(i % 4), Value::Int(i % 5)])
                .unwrap();
        }
        let ix = cat.add_index("i_both", t, vec![0, 1], false).unwrap();
        st.build_index(ix, t, vec![0, 1]).unwrap();
        let hits = st
            .index(ix)
            .unwrap()
            .lookup_eq(&[Value::Int(1), Value::Int(1)]);
        assert_eq!(hits.len(), 1); // i=1, i%4==1 && i%5==1 only at i=1 within 0..20... i=1 and i=21(no)
    }

    #[test]
    fn analyze_populates_stats() {
        let (mut cat, mut st, t) = setup();
        for i in 0..200 {
            let grp = if i % 10 == 0 {
                Value::Null
            } else {
                Value::Int(i % 7)
            };
            st.insert(t, vec![Value::Int(i), grp]).unwrap();
        }
        st.analyze(&mut cat).unwrap();
        let s = &cat.table(t).unwrap().stats;
        assert!(s.analyzed);
        assert_eq!(s.rows, 200);
        assert_eq!(s.columns[0].ndv, 200);
        assert_eq!(s.columns[1].nulls, 20);
        assert_eq!(s.columns[1].ndv, 7); // i%7 takes all of 0..=6 among non-null rows
        assert!(s.columns[0].histogram.is_some());
        assert_eq!(s.columns[0].min, Some(Value::Int(0)));
        assert_eq!(s.columns[0].max, Some(Value::Int(199)));
    }

    #[test]
    fn analyze_empty_table() {
        let (mut cat, st, t) = setup();
        st.analyze(&mut cat).unwrap();
        let s = &cat.table(t).unwrap().stats;
        assert!(s.analyzed);
        assert_eq!(s.rows, 0);
        assert_eq!(s.columns.len(), 2);
    }
}
