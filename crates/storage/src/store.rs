//! MVCC row storage: version heaps, snapshots, and B-tree indexes.
//!
//! Every table is an append-only [`VersionHeap`] of [`RowVersion`]s, each
//! stamped with a `begin` and `end` mark. Marks are either **commit
//! sequence numbers** (small integers `1..TXN_BASE`, allocated when a
//! transaction publishes) or **transaction ids** (`>= TXN_BASE`,
//! identifying an uncommitted writer). A [`Snapshot`] pins the heap
//! `Arc`s plus a commit watermark; a version is visible to a snapshot iff
//! its `begin` mark committed at or before the watermark (or belongs to
//! the snapshot's own transaction) and its `end` mark did not.
//!
//! **Readers never block on writers**: a snapshot is a handful of `Arc`
//! clones taken under the storage mutex and then read lock-free. Writers
//! mutate heaps through [`Arc::make_mut`] — copy-on-write kicks in only
//! while some snapshot actually pins the heap, so single-threaded
//! workloads keep in-place appends.
//!
//! Writes follow **first-updater-wins (no-wait)** conflict resolution: an
//! UPDATE/DELETE claims a version by stamping its `end` with the writer's
//! transaction id; finding the version already claimed (or superseded by
//! a later commit) loses immediately — the caller maps that to
//! [`Error::WriteConflict`] and rolls the transaction back. Commit
//! atomically restamps all of a transaction's marks with a fresh commit
//! sequence and advances the watermark under one mutex acquisition, so
//! concurrent snapshots observe either none or all of a transaction.
//!
//! Row ordinals are version-heap positions and stay stable forever (heaps
//! only append); indexes map key tuples to ordinals and only ever gain
//! entries — dead versions are filtered by visibility at read time.

use cbqt_catalog::{Catalog, ColumnStats, Histogram, IndexId, TableId, TableStats};
use cbqt_common::{Error, Result, Row, Value};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Marks below this value are commit sequence numbers; marks at or above
/// it are transaction ids of uncommitted writers.
pub const TXN_BASE: u64 = 1 << 48;
/// `begin` mark of a rolled-back insert: never visible to anyone
/// (`ABORTED >= TXN_BASE` and no transaction ever gets this id).
const ABORTED: u64 = u64::MAX;

/// One version of one row.
#[derive(Debug, Clone)]
pub struct RowVersion {
    /// Commit sequence that created this version, or the creating
    /// transaction's id while uncommitted, or `ABORTED`.
    pub begin: u64,
    /// 0 while live; otherwise the commit sequence that deleted this
    /// version, or the deleting transaction's id while uncommitted.
    pub end: u64,
    pub row: Row,
}

/// Append-only heap of row versions for one table.
#[derive(Debug, Default, Clone)]
pub struct VersionHeap {
    versions: Vec<RowVersion>,
    /// Committed, un-deleted versions — O(1) `row_count` for the
    /// statistics sampler.
    live: usize,
}

impl VersionHeap {
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }
}

/// True iff `v` is visible to a snapshot at `watermark` owned by
/// transaction `txn` (0 when the snapshot has no transaction).
fn visible(v: &RowVersion, watermark: u64, txn: u64) -> bool {
    let begin_ok = (v.begin < TXN_BASE && v.begin <= watermark) || (txn != 0 && v.begin == txn);
    if !begin_ok {
        return false;
    }
    let deleted =
        v.end != 0 && ((v.end < TXN_BASE && v.end <= watermark) || (txn != 0 && v.end == txn));
    !deleted
}

/// A multi-column B-tree index mapping key tuples to row ordinals.
///
/// NULL key components are stored (sorted last by `Value`'s total order)
/// but equality probes skip NULL keys, matching SQL index semantics.
/// Entries point at version-heap ordinals and are append-only; callers
/// filter hits through [`SnapTable::visible`].
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    pub table: TableId,
    pub columns: Vec<usize>,
    map: BTreeMap<Vec<Value>, Vec<usize>>,
}

impl BTreeIndex {
    fn key_of(&self, row: &Row) -> Vec<Value> {
        self.columns.iter().map(|&c| row[c].clone()).collect()
    }

    fn insert_key(&mut self, key: Vec<Value>, ordinal: usize) {
        self.map.entry(key).or_default().push(ordinal);
    }

    /// Row ordinals whose key equals `key` (NULL components never match).
    pub fn lookup_eq(&self, key: &[Value]) -> &[usize] {
        if key.iter().any(Value::is_null) {
            return &[];
        }
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Row ordinals whose *leading column* lies in the given bounds.
    /// Only single-column ranges are supported (that is all the planner
    /// generates); NULL keys are excluded.
    pub fn lookup_range(&self, lo: Bound<&Value>, hi: Bound<&Value>, out: &mut Vec<usize>) {
        let lo_key = match lo {
            Bound::Included(v) => Bound::Included(vec![v.clone()]),
            Bound::Excluded(v) => {
                // exclusive lower bound must skip all composite keys with
                // the same leading value, so bump to "value, +inf" — we
                // emulate by including and filtering below
                Bound::Included(vec![v.clone()])
            }
            Bound::Unbounded => Bound::Unbounded,
        };
        let excl_lo = matches!(lo, Bound::Excluded(_));
        for (k, rows) in self.map.range((lo_key, Bound::Unbounded)) {
            let lead = &k[0];
            if lead.is_null() {
                break; // nulls sort last
            }
            if excl_lo {
                if let Bound::Excluded(v) = lo {
                    if lead.sql_eq(v) == Some(true) {
                        continue;
                    }
                }
            }
            match hi {
                Bound::Included(v) => {
                    if lead
                        .sql_cmp(v)
                        .map(|o| o == std::cmp::Ordering::Greater)
                        .unwrap_or(true)
                    {
                        break;
                    }
                }
                Bound::Excluded(v) => {
                    if lead
                        .sql_cmp(v)
                        .map(|o| o != std::cmp::Ordering::Less)
                        .unwrap_or(true)
                    {
                        break;
                    }
                }
                Bound::Unbounded => {}
            }
            out.extend_from_slice(rows);
        }
    }

    /// Number of distinct keys (used to report index statistics; counts
    /// dead versions' keys too — acceptable for an estimate).
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteKind {
    Insert,
    Delete,
}

/// One entry of a transaction's write set: enough to restamp the version
/// at commit or undo the claim at rollback.
#[derive(Debug, Clone, Copy)]
struct Write {
    table: TableId,
    ordinal: usize,
    kind: WriteKind,
}

#[derive(Debug, Clone)]
struct TxnState {
    /// Commit watermark the transaction reads as of.
    snapshot: u64,
    writes: Vec<Write>,
}

#[derive(Debug, Clone)]
struct Inner {
    tables: HashMap<TableId, Arc<VersionHeap>>,
    indexes: HashMap<IndexId, Arc<BTreeIndex>>,
    txns: HashMap<u64, TxnState>,
    /// Highest published commit sequence.
    watermark: u64,
    next_txn: u64,
}

impl Default for Inner {
    fn default() -> Inner {
        Inner {
            tables: HashMap::new(),
            indexes: HashMap::new(),
            txns: HashMap::new(),
            watermark: 0,
            next_txn: TXN_BASE,
        }
    }
}

/// Lifetime counters for [`Storage::txn_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnStats {
    pub begun: u64,
    pub committed: u64,
    pub rolled_back: u64,
    pub conflicts: u64,
}

/// What a successful [`Storage::commit`] published — the caller bumps
/// catalog versions for exactly `tables`.
#[derive(Debug, Clone)]
pub struct CommitInfo {
    pub txn: u64,
    /// Commit watermark after publish (unchanged for read-only commits).
    pub watermark: u64,
    /// Row versions published (inserts + delete claims).
    pub versions: usize,
    /// Distinct tables written, in first-write order.
    pub tables: Vec<TableId>,
}

/// All table heaps and index structures, plus the transaction table.
///
/// Interior mutability throughout: writers and snapshot-takers share a
/// `&Storage`. The single mutex guards only bookkeeping — scans run on
/// pinned `Arc`s outside any lock.
#[derive(Debug, Default)]
pub struct Storage {
    inner: Mutex<Inner>,
    begun: AtomicU64,
    committed: AtomicU64,
    rolled_back: AtomicU64,
    conflicts: AtomicU64,
}

impl Clone for Storage {
    fn clone(&self) -> Storage {
        Storage {
            inner: Mutex::new(self.lock().clone()),
            begun: AtomicU64::new(self.begun.load(Ordering::Relaxed)),
            committed: AtomicU64::new(self.committed.load(Ordering::Relaxed)),
            rolled_back: AtomicU64::new(self.rolled_back.load(Ordering::Relaxed)),
            conflicts: AtomicU64::new(self.conflicts.load(Ordering::Relaxed)),
        }
    }
}

impl Storage {
    pub fn new() -> Storage {
        Storage::default()
    }

    /// Poison-recovering lock: an injected panic caught at the `Database`
    /// boundary must never wedge storage. All mutations keep the heaps
    /// structurally consistent at every push/stamp, so recovering the
    /// guard is sound.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Ensures a heap exists for `table`.
    pub fn create_table(&self, table: TableId) {
        self.lock().tables.entry(table).or_default();
    }

    /// Pins a read snapshot at the latest commit watermark.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.lock();
        Snapshot {
            watermark: g.watermark,
            txn: 0,
            tables: g.tables.clone(),
            indexes: g.indexes.clone(),
        }
    }

    /// Pins a snapshot for an open transaction: reads as of the
    /// transaction's begin watermark plus its own uncommitted writes.
    pub fn txn_snapshot(&self, txn: u64) -> Result<Snapshot> {
        let g = self.lock();
        let st = g
            .txns
            .get(&txn)
            .ok_or_else(|| Error::execution(format!("no open transaction {txn}")))?;
        Ok(Snapshot {
            watermark: st.snapshot,
            txn,
            tables: g.tables.clone(),
            indexes: g.indexes.clone(),
        })
    }

    /// The latest published commit sequence.
    pub fn watermark(&self) -> u64 {
        self.lock().watermark
    }

    /// Committed live rows (what a fresh snapshot would see).
    pub fn row_count(&self, table: TableId) -> usize {
        self.lock().tables.get(&table).map_or(0, |h| h.live)
    }

    // -- transactions -------------------------------------------------

    /// Opens a transaction; returns `(txn id, snapshot watermark)`.
    pub fn begin(&self) -> (u64, u64) {
        let mut g = self.lock();
        let txn = g.next_txn;
        g.next_txn += 1;
        let snapshot = g.watermark;
        g.txns.insert(
            txn,
            TxnState {
                snapshot,
                writes: Vec::new(),
            },
        );
        self.begun.fetch_add(1, Ordering::Relaxed);
        (txn, snapshot)
    }

    /// True iff `txn` is open (neither committed nor rolled back).
    pub fn txn_open(&self, txn: u64) -> bool {
        self.lock().txns.contains_key(&txn)
    }

    /// Appends an uncommitted row version for `txn`. The version is
    /// visible only to `txn` until commit. The failpoint fires before
    /// any mutation, so an injected fault leaves storage untouched.
    pub fn write_version(&self, txn: u64, table: TableId, row: Row) -> Result<()> {
        cbqt_common::failpoint!(cbqt_common::failpoint::STORAGE_WRITE_VERSION);
        let mut g = self.lock();
        let inner = &mut *g;
        if !inner.txns.contains_key(&txn) {
            return Err(Error::execution(format!("no open transaction {txn}")));
        }
        let heap = Arc::make_mut(inner.tables.entry(table).or_default());
        let ordinal = heap.versions.len();
        for ix_arc in inner.indexes.values_mut() {
            if ix_arc.table == table {
                let ix = Arc::make_mut(ix_arc);
                let key = ix.key_of(&row);
                ix.insert_key(key, ordinal);
            }
        }
        heap.versions.push(RowVersion {
            begin: txn,
            end: 0,
            row,
        });
        inner.txns.get_mut(&txn).unwrap().writes.push(Write {
            table,
            ordinal,
            kind: WriteKind::Insert,
        });
        Ok(())
    }

    /// First-updater-wins delete claim: stamps the version's `end` with
    /// `txn`. Returns `Ok(None)` when claimed, `Ok(Some(winner))` when a
    /// concurrent writer (or a commit after this transaction's snapshot)
    /// got there first — the caller maps that to
    /// [`Error::WriteConflict`] and aborts.
    pub fn try_delete_version(
        &self,
        txn: u64,
        table: TableId,
        ordinal: usize,
    ) -> Result<Option<u64>> {
        cbqt_common::failpoint!(cbqt_common::failpoint::TXN_CONFLICT_CHECK);
        let mut g = self.lock();
        let inner = &mut *g;
        if !inner.txns.contains_key(&txn) {
            return Err(Error::execution(format!("no open transaction {txn}")));
        }
        let heap_arc = inner
            .tables
            .get_mut(&table)
            .ok_or_else(|| Error::execution(format!("no data for table id {}", table.0)))?;
        let current_end = heap_arc
            .versions
            .get(ordinal)
            .ok_or_else(|| Error::execution(format!("no row version at ordinal {ordinal}")))?
            .end;
        match current_end {
            0 => {
                let heap = Arc::make_mut(heap_arc);
                heap.versions[ordinal].end = txn;
                inner.txns.get_mut(&txn).unwrap().writes.push(Write {
                    table,
                    ordinal,
                    kind: WriteKind::Delete,
                });
                Ok(None)
            }
            end if end == txn => Ok(None), // already claimed by us
            winner => {
                self.conflicts.fetch_add(1, Ordering::Relaxed);
                Ok(Some(winner))
            }
        }
    }

    /// Atomically publishes `txn`: restamps every written version with a
    /// fresh commit sequence and advances the watermark, all under one
    /// lock acquisition — snapshots see none or all of the transaction.
    /// The failpoint fires before the lock, so an injected fault aborts
    /// the transaction whole (the caller rolls back).
    pub fn commit(&self, txn: u64) -> Result<CommitInfo> {
        cbqt_common::failpoint!(cbqt_common::failpoint::STORAGE_COMMIT_PUBLISH);
        let mut g = self.lock();
        let inner = &mut *g;
        let st = inner
            .txns
            .remove(&txn)
            .ok_or_else(|| Error::execution(format!("no open transaction {txn}")))?;
        self.committed.fetch_add(1, Ordering::Relaxed);
        if st.writes.is_empty() {
            return Ok(CommitInfo {
                txn,
                watermark: inner.watermark,
                versions: 0,
                tables: Vec::new(),
            });
        }
        let seq = inner.watermark + 1;
        let mut tables: Vec<TableId> = Vec::new();
        for w in &st.writes {
            if !tables.contains(&w.table) {
                tables.push(w.table);
            }
            let heap = Arc::make_mut(inner.tables.get_mut(&w.table).expect("written table"));
            let v = &mut heap.versions[w.ordinal];
            match w.kind {
                WriteKind::Insert => {
                    if v.begin == txn {
                        v.begin = seq;
                        heap.live += 1;
                    }
                }
                WriteKind::Delete => {
                    if v.end == txn {
                        v.end = seq;
                        heap.live -= 1;
                    }
                }
            }
        }
        inner.watermark = seq;
        Ok(CommitInfo {
            txn,
            watermark: seq,
            versions: st.writes.len(),
            tables,
        })
    }

    /// Discards `txn`: marks its inserts aborted and releases its delete
    /// claims. Infallible and idempotent (rolling back an unknown or
    /// already-closed transaction is a no-op) — abort paths must never
    /// fail. Returns the number of versions discarded.
    pub fn rollback(&self, txn: u64) -> usize {
        let mut g = self.lock();
        let inner = &mut *g;
        let Some(st) = inner.txns.remove(&txn) else {
            return 0;
        };
        for w in &st.writes {
            let heap = Arc::make_mut(inner.tables.get_mut(&w.table).expect("written table"));
            let v = &mut heap.versions[w.ordinal];
            match w.kind {
                WriteKind::Insert => {
                    if v.begin == txn {
                        v.begin = ABORTED;
                    }
                }
                WriteKind::Delete => {
                    if v.end == txn {
                        v.end = 0;
                    }
                }
            }
        }
        self.rolled_back.fetch_add(1, Ordering::Relaxed);
        st.writes.len()
    }

    /// Lifetime transaction counters.
    pub fn txn_stats(&self) -> TxnStats {
        TxnStats {
            begun: self.begun.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            rolled_back: self.rolled_back.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
        }
    }

    // -- autocommit conveniences --------------------------------------

    /// Appends a committed row (an implicit single-row transaction).
    pub fn insert(&self, table: TableId, row: Row) -> Result<()> {
        self.insert_many(table, vec![row])
    }

    /// Bulk-appends committed rows under one commit sequence.
    pub fn insert_many(&self, table: TableId, rows: Vec<Row>) -> Result<()> {
        cbqt_common::failpoint!(cbqt_common::failpoint::STORAGE_WRITE_VERSION);
        let mut g = self.lock();
        let inner = &mut *g;
        let seq = inner.watermark + 1;
        let heap = Arc::make_mut(inner.tables.entry(table).or_default());
        for row in rows {
            let ordinal = heap.versions.len();
            for ix_arc in inner.indexes.values_mut() {
                if ix_arc.table == table {
                    let ix = Arc::make_mut(ix_arc);
                    let key = ix.key_of(&row);
                    ix.insert_key(key, ordinal);
                }
            }
            heap.versions.push(RowVersion {
                begin: seq,
                end: 0,
                row,
            });
            heap.live += 1;
        }
        inner.watermark = seq;
        Ok(())
    }

    /// Builds (or rebuilds) the physical structure for a catalog index
    /// over every version in the heap (dead versions' keys are harmless:
    /// visibility filtering drops their ordinals at read time).
    pub fn build_index(&self, id: IndexId, table: TableId, columns: Vec<usize>) -> Result<()> {
        let mut g = self.lock();
        let inner = &mut *g;
        let heap = inner
            .tables
            .get(&table)
            .ok_or_else(|| Error::execution(format!("no data for table id {}", table.0)))?;
        let mut map: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
        for (ordinal, v) in heap.versions.iter().enumerate() {
            let key: Vec<Value> = columns.iter().map(|&c| v.row[c].clone()).collect();
            map.entry(key).or_default().push(ordinal);
        }
        inner.indexes.insert(
            id,
            Arc::new(BTreeIndex {
                table,
                columns,
                map,
            }),
        );
        Ok(())
    }

    /// Recomputes optimizer statistics for every table in the catalog
    /// (the engine's ANALYZE) over the latest committed snapshot —
    /// uncommitted versions never leak into statistics.
    pub fn analyze(&self, catalog: &mut Catalog) -> Result<()> {
        let snap = self.snapshot();
        let ids: Vec<TableId> = catalog.tables().map(|t| t.id).collect();
        for id in ids {
            let ncols = catalog.table(id)?.columns.len();
            let stats = match snap.table(id) {
                Ok(data) => {
                    let rows: Vec<&Row> = data.rows().collect();
                    compute_stats(&rows, ncols)
                }
                Err(_) => TableStats {
                    analyzed: true,
                    rows: 0,
                    columns: vec![ColumnStats::default(); ncols],
                },
            };
            catalog.table_mut(id)?.stats = stats;
        }
        Ok(())
    }
}

/// A pinned, lock-free view of storage "as of" a commit watermark (plus
/// the uncommitted writes of its own transaction, if any). Cheap to
/// clone — a few `Arc` bumps.
#[derive(Debug, Clone)]
pub struct Snapshot {
    watermark: u64,
    txn: u64,
    tables: HashMap<TableId, Arc<VersionHeap>>,
    indexes: HashMap<IndexId, Arc<BTreeIndex>>,
}

impl Snapshot {
    /// The commit watermark this snapshot reads as of.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// The owning transaction id (0 for a plain read snapshot).
    pub fn txn(&self) -> u64 {
        self.txn
    }

    /// The visibility-filtered view of one table.
    pub fn table(&self, table: TableId) -> Result<SnapTable<'_>> {
        cbqt_common::failpoint!(cbqt_common::failpoint::STORAGE_SCAN);
        self.tables
            .get(&table)
            .map(|heap| SnapTable {
                heap,
                watermark: self.watermark,
                txn: self.txn,
            })
            .ok_or_else(|| Error::execution(format!("no data for table id {}", table.0)))
    }

    /// An index structure; returned ordinals must be filtered through
    /// [`SnapTable::visible`].
    pub fn index(&self, id: IndexId) -> Result<&BTreeIndex> {
        cbqt_common::failpoint!(cbqt_common::failpoint::STORAGE_INDEX);
        self.indexes
            .get(&id)
            .map(Arc::as_ref)
            .ok_or_else(|| Error::execution(format!("index id {} not built", id.0)))
    }
}

/// One table viewed through a [`Snapshot`]: ordinal-addressed rows with
/// per-version visibility checks (two integer compares per version).
#[derive(Debug, Clone, Copy)]
pub struct SnapTable<'a> {
    heap: &'a VersionHeap,
    watermark: u64,
    txn: u64,
}

impl<'a> SnapTable<'a> {
    /// Total versions in the heap (visible or not) — the full-scan
    /// ordinal space.
    pub fn version_count(&self) -> usize {
        self.heap.versions.len()
    }

    /// True iff the version at `ordinal` is visible to this snapshot.
    pub fn visible(&self, ordinal: usize) -> bool {
        self.heap
            .versions
            .get(ordinal)
            .is_some_and(|v| visible(v, self.watermark, self.txn))
    }

    /// The row data at `ordinal` (caller guarantees a valid ordinal,
    /// normally one that passed [`SnapTable::visible`]).
    pub fn row(&self, ordinal: usize) -> &'a Row {
        &self.heap.versions[ordinal].row
    }

    /// Ordinals of all visible versions, in heap order.
    pub fn visible_ordinals(&self) -> impl Iterator<Item = usize> + 'a {
        let (w, t) = (self.watermark, self.txn);
        self.heap
            .versions
            .iter()
            .enumerate()
            .filter(move |(_, v)| visible(v, w, t))
            .map(|(i, _)| i)
    }

    /// All visible rows, in heap order.
    pub fn rows(&self) -> impl Iterator<Item = &'a Row> + 'a {
        let (w, t) = (self.watermark, self.txn);
        self.heap
            .versions
            .iter()
            .filter(move |v| visible(v, w, t))
            .map(|v| &v.row)
    }

    pub fn visible_count(&self) -> usize {
        self.visible_ordinals().count()
    }
}

const HISTOGRAM_BUCKETS: usize = 32;
/// Histograms are only collected for columns with at least this many rows
/// (cheap guard against noise on tiny tables).
const HISTOGRAM_MIN_ROWS: usize = 64;

fn compute_stats(data: &[&Row], ncols: usize) -> TableStats {
    let rows = data.len() as u64;
    let mut columns = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let mut distinct: HashSet<Value> = HashSet::new();
        let mut nulls = 0u64;
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        let mut numeric: Vec<f64> = Vec::new();
        for row in data {
            let v = &row[c];
            if v.is_null() {
                nulls += 1;
                continue;
            }
            if min.as_ref().map(|m| v.total_cmp(m).is_lt()).unwrap_or(true) {
                min = Some(v.clone());
            }
            if max.as_ref().map(|m| v.total_cmp(m).is_gt()).unwrap_or(true) {
                max = Some(v.clone());
            }
            if let Some(f) = v.as_f64() {
                numeric.push(f);
            }
            distinct.insert(v.clone());
        }
        let histogram =
            if numeric.len() >= HISTOGRAM_MIN_ROWS && numeric.len() == (rows - nulls) as usize {
                Histogram::build(numeric.into_iter(), HISTOGRAM_BUCKETS)
            } else {
                None
            };
        columns.push(ColumnStats {
            ndv: distinct.len() as u64,
            nulls,
            min,
            max,
            histogram,
        });
    }
    TableStats {
        analyzed: true,
        rows,
        columns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbqt_catalog::{Column, Constraint};
    use cbqt_common::DataType;

    fn setup() -> (Catalog, Storage, TableId) {
        let mut cat = Catalog::new();
        let t = cat
            .add_table(
                "t",
                vec![
                    Column {
                        name: "id".into(),
                        data_type: DataType::Int,
                        not_null: true,
                    },
                    Column {
                        name: "grp".into(),
                        data_type: DataType::Int,
                        not_null: false,
                    },
                ],
                vec![Constraint::PrimaryKey(vec![0])],
            )
            .unwrap();
        let st = Storage::new();
        st.create_table(t);
        (cat, st, t)
    }

    fn visible_rows(snap: &Snapshot, t: TableId) -> Vec<Row> {
        snap.table(t).unwrap().rows().cloned().collect()
    }

    #[test]
    fn insert_and_scan() {
        let (_, st, t) = setup();
        st.insert(t, vec![Value::Int(1), Value::Int(10)]).unwrap();
        st.insert(t, vec![Value::Int(2), Value::Null]).unwrap();
        assert_eq!(st.row_count(t), 2);
        let snap = st.snapshot();
        let data = snap.table(t).unwrap();
        assert_eq!(data.row(1)[1], Value::Null);
        assert_eq!(data.visible_count(), 2);
    }

    #[test]
    fn index_eq_lookup() {
        let (mut cat, st, t) = setup();
        for i in 0..100 {
            st.insert(t, vec![Value::Int(i), Value::Int(i % 7)])
                .unwrap();
        }
        let ix = cat.add_index("i_grp", t, vec![1], false).unwrap();
        st.build_index(ix, t, vec![1]).unwrap();
        let snap = st.snapshot();
        let idx = snap.index(ix).unwrap();
        let hits = idx.lookup_eq(&[Value::Int(3)]);
        assert_eq!(hits.len(), 14); // 3, 10, ..., 94
        assert!(idx.lookup_eq(&[Value::Null]).is_empty());
    }

    #[test]
    fn index_maintained_on_insert() {
        let (mut cat, st, t) = setup();
        let ix = cat.add_index("i_grp", t, vec![1], false).unwrap();
        st.build_index(ix, t, vec![1]).unwrap();
        st.insert(t, vec![Value::Int(1), Value::Int(42)]).unwrap();
        st.insert(t, vec![Value::Int(2), Value::Int(42)]).unwrap();
        let snap = st.snapshot();
        assert_eq!(
            snap.index(ix).unwrap().lookup_eq(&[Value::Int(42)]).len(),
            2
        );
    }

    #[test]
    fn index_range_scan() {
        let (mut cat, st, t) = setup();
        for i in 0..50 {
            st.insert(t, vec![Value::Int(i), Value::Int(i)]).unwrap();
        }
        st.insert(t, vec![Value::Int(50), Value::Null]).unwrap();
        let ix = cat.add_index("i_grp", t, vec![1], false).unwrap();
        st.build_index(ix, t, vec![1]).unwrap();
        let snap = st.snapshot();
        let idx = snap.index(ix).unwrap();
        let mut out = Vec::new();
        idx.lookup_range(
            Bound::Included(&Value::Int(10)),
            Bound::Excluded(&Value::Int(20)),
            &mut out,
        );
        assert_eq!(out.len(), 10);
        out.clear();
        idx.lookup_range(Bound::Excluded(&Value::Int(47)), Bound::Unbounded, &mut out);
        assert_eq!(out.len(), 2); // 48, 49 — the NULL key must not appear
    }

    #[test]
    fn composite_index_lookup() {
        let (mut cat, st, t) = setup();
        for i in 0..20 {
            st.insert(t, vec![Value::Int(i % 4), Value::Int(i % 5)])
                .unwrap();
        }
        let ix = cat.add_index("i_both", t, vec![0, 1], false).unwrap();
        st.build_index(ix, t, vec![0, 1]).unwrap();
        let snap = st.snapshot();
        let hits = snap
            .index(ix)
            .unwrap()
            .lookup_eq(&[Value::Int(1), Value::Int(1)]);
        assert_eq!(hits.len(), 1); // i=1, i%4==1 && i%5==1 only at i=1 within 0..20... i=1 and i=21(no)
    }

    #[test]
    fn analyze_populates_stats() {
        let (mut cat, st, t) = setup();
        for i in 0..200 {
            let grp = if i % 10 == 0 {
                Value::Null
            } else {
                Value::Int(i % 7)
            };
            st.insert(t, vec![Value::Int(i), grp]).unwrap();
        }
        st.analyze(&mut cat).unwrap();
        let s = &cat.table(t).unwrap().stats;
        assert!(s.analyzed);
        assert_eq!(s.rows, 200);
        assert_eq!(s.columns[0].ndv, 200);
        assert_eq!(s.columns[1].nulls, 20);
        assert_eq!(s.columns[1].ndv, 7); // i%7 takes all of 0..=6 among non-null rows
        assert!(s.columns[0].histogram.is_some());
        assert_eq!(s.columns[0].min, Some(Value::Int(0)));
        assert_eq!(s.columns[0].max, Some(Value::Int(199)));
    }

    #[test]
    fn analyze_empty_table() {
        let (mut cat, st, t) = setup();
        st.analyze(&mut cat).unwrap();
        let s = &cat.table(t).unwrap().stats;
        assert!(s.analyzed);
        assert_eq!(s.rows, 0);
        assert_eq!(s.columns.len(), 2);
    }

    // -- MVCC semantics -----------------------------------------------

    #[test]
    fn uncommitted_writes_visible_only_to_owner() {
        let (_, st, t) = setup();
        st.insert(t, vec![Value::Int(1), Value::Int(10)]).unwrap();
        let (txn, _) = st.begin();
        st.write_version(txn, t, vec![Value::Int(2), Value::Int(20)])
            .unwrap();
        // outsiders see only the committed row
        assert_eq!(visible_rows(&st.snapshot(), t).len(), 1);
        assert_eq!(st.row_count(t), 1);
        // the writer sees both
        let mine = st.txn_snapshot(txn).unwrap();
        assert_eq!(visible_rows(&mine, t).len(), 2);
        // commit publishes atomically
        let info = st.commit(txn).unwrap();
        assert_eq!(info.versions, 1);
        assert_eq!(info.tables, vec![t]);
        assert_eq!(visible_rows(&st.snapshot(), t).len(), 2);
        assert_eq!(st.row_count(t), 2);
    }

    #[test]
    fn pinned_snapshot_ignores_later_commits() {
        let (_, st, t) = setup();
        st.insert(t, vec![Value::Int(1), Value::Int(10)]).unwrap();
        let old = st.snapshot();
        let (txn, _) = st.begin();
        st.write_version(txn, t, vec![Value::Int(2), Value::Int(20)])
            .unwrap();
        st.commit(txn).unwrap();
        // the pre-commit snapshot still reads as of its watermark
        assert_eq!(visible_rows(&old, t).len(), 1);
        assert_eq!(visible_rows(&st.snapshot(), t).len(), 2);
    }

    #[test]
    fn rollback_restores_pre_transaction_state() {
        let (_, st, t) = setup();
        st.insert(t, vec![Value::Int(1), Value::Int(10)]).unwrap();
        let before = visible_rows(&st.snapshot(), t);
        let w0 = st.watermark();
        let (txn, _) = st.begin();
        st.write_version(txn, t, vec![Value::Int(2), Value::Int(20)])
            .unwrap();
        assert_eq!(st.try_delete_version(txn, t, 0).unwrap(), None);
        assert_eq!(st.rollback(txn), 2);
        assert_eq!(visible_rows(&st.snapshot(), t), before);
        assert_eq!(st.watermark(), w0); // rollback publishes nothing
        assert_eq!(st.row_count(t), 1);
        // double rollback is a safe no-op
        assert_eq!(st.rollback(txn), 0);
    }

    #[test]
    fn first_updater_wins_conflict() {
        let (_, st, t) = setup();
        st.insert(t, vec![Value::Int(1), Value::Int(10)]).unwrap();
        let (t1, _) = st.begin();
        let (t2, _) = st.begin();
        assert_eq!(st.try_delete_version(t1, t, 0).unwrap(), None);
        // second updater loses immediately, without waiting
        assert_eq!(st.try_delete_version(t2, t, 0).unwrap(), Some(t1));
        assert_eq!(st.txn_stats().conflicts, 1);
        // after the winner rolls back, the claim is released
        st.rollback(t1);
        assert_eq!(st.try_delete_version(t2, t, 0).unwrap(), None);
        st.commit(t2).unwrap();
        assert_eq!(visible_rows(&st.snapshot(), t).len(), 0);
    }

    #[test]
    fn committed_delete_after_snapshot_conflicts() {
        let (_, st, t) = setup();
        st.insert(t, vec![Value::Int(1), Value::Int(10)]).unwrap();
        let (t1, _) = st.begin();
        let (t2, _) = st.begin();
        st.try_delete_version(t1, t, 0).unwrap();
        let info = st.commit(t1).unwrap();
        // t2's snapshot predates the delete, but the row is gone: lose.
        assert_eq!(
            st.try_delete_version(t2, t, 0).unwrap(),
            Some(info.watermark)
        );
    }

    #[test]
    fn update_own_insert_within_transaction() {
        let (_, st, t) = setup();
        let (txn, _) = st.begin();
        st.write_version(txn, t, vec![Value::Int(1), Value::Int(10)])
            .unwrap();
        // delete own uncommitted insert (the UPDATE path), insert anew
        assert_eq!(st.try_delete_version(txn, t, 0).unwrap(), None);
        st.write_version(txn, t, vec![Value::Int(1), Value::Int(11)])
            .unwrap();
        st.commit(txn).unwrap();
        let rows = visible_rows(&st.snapshot(), t);
        assert_eq!(rows, vec![vec![Value::Int(1), Value::Int(11)]]);
        assert_eq!(st.row_count(t), 1);
    }

    #[test]
    fn read_only_commit_keeps_watermark() {
        let (_, st, t) = setup();
        st.insert(t, vec![Value::Int(1), Value::Int(10)]).unwrap();
        let w0 = st.watermark();
        let (txn, snap_w) = st.begin();
        assert_eq!(snap_w, w0);
        let info = st.commit(txn).unwrap();
        assert_eq!(info.watermark, w0);
        assert_eq!(info.versions, 0);
        assert!(info.tables.is_empty());
    }

    #[test]
    fn txn_stats_counters() {
        let (_, st, t) = setup();
        let (t1, _) = st.begin();
        st.write_version(t1, t, vec![Value::Int(1), Value::Int(1)])
            .unwrap();
        st.commit(t1).unwrap();
        let (t2, _) = st.begin();
        st.rollback(t2);
        let s = st.txn_stats();
        assert_eq!(s.begun, 2);
        assert_eq!(s.committed, 1);
        assert_eq!(s.rolled_back, 1);
    }

    #[test]
    fn index_hits_filtered_by_visibility() {
        let (mut cat, st, t) = setup();
        st.insert(t, vec![Value::Int(1), Value::Int(42)]).unwrap();
        let ix = cat.add_index("i_grp", t, vec![1], false).unwrap();
        st.build_index(ix, t, vec![1]).unwrap();
        let (txn, _) = st.begin();
        st.write_version(txn, t, vec![Value::Int(2), Value::Int(42)])
            .unwrap();
        // index holds both ordinals; visibility separates the readers
        let outsider = st.snapshot();
        let outsider_tbl = outsider.table(t).unwrap();
        let hits: Vec<usize> = outsider
            .index(ix)
            .unwrap()
            .lookup_eq(&[Value::Int(42)])
            .iter()
            .copied()
            .filter(|&o| outsider_tbl.visible(o))
            .collect();
        assert_eq!(hits, vec![0]);
        let mine = st.txn_snapshot(txn).unwrap();
        let mine_tbl = mine.table(t).unwrap();
        let hits: Vec<usize> = mine
            .index(ix)
            .unwrap()
            .lookup_eq(&[Value::Int(42)])
            .iter()
            .copied()
            .filter(|&o| mine_tbl.visible(o))
            .collect();
        assert_eq!(hits, vec![0, 1]);
        st.rollback(txn);
    }
}
