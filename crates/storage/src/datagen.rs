//! Synthetic data generators.
//!
//! The experiment harness builds randomized database instances: table
//! sizes, value skew and foreign-key fan-out all vary per instance so
//! that transformation decisions genuinely depend on cost (the paper's
//! central premise).

use cbqt_common::{Row, Value};
use cbqt_testkit::Rng;

/// Generator for one column's values.
#[derive(Debug, Clone)]
pub enum ColumnGen {
    /// 0, 1, 2, ... (dense primary key).
    Serial,
    /// Uniform integer in `[lo, hi]`.
    UniformInt { lo: i64, hi: i64 },
    /// Zipf-skewed integer in `[0, n)`; `theta` near 0 is uniform, near 1
    /// is highly skewed. Used to create duplicate-heavy join columns
    /// (which the paper notes make semijoin caching attractive).
    Zipf { n: u64, theta: f64 },
    /// Uniform double in `[lo, hi)`.
    UniformDouble { lo: f64, hi: f64 },
    /// Picks uniformly from a fixed string list.
    Choice(Vec<&'static str>),
    /// A foreign key referencing serial keys `[0, parent_rows)`.
    Fk { parent_rows: u64 },
    /// Wraps another generator, replacing a fraction of values by NULL.
    Nullable {
        inner: Box<ColumnGen>,
        null_frac: f64,
    },
    /// Constant value.
    Const(Value),
}

impl ColumnGen {
    fn generate(&self, row: u64, rng: &mut Rng, zipf_cache: &mut Vec<f64>) -> Value {
        match self {
            ColumnGen::Serial => Value::Int(row as i64),
            ColumnGen::UniformInt { lo, hi } => Value::Int(rng.gen_range(*lo..=*hi)),
            ColumnGen::Zipf { n, theta } => {
                Value::Int(zipf_sample(*n, *theta, rng, zipf_cache) as i64)
            }
            ColumnGen::UniformDouble { lo, hi } => Value::Double(rng.gen_range(*lo..*hi)),
            ColumnGen::Choice(opts) => Value::str(opts[rng.gen_range(0..opts.len())]),
            ColumnGen::Fk { parent_rows } => {
                Value::Int(rng.gen_range(0..(*parent_rows).max(1)) as i64)
            }
            ColumnGen::Nullable { inner, null_frac } => {
                if rng.gen_bool(*null_frac) {
                    Value::Null
                } else {
                    inner.generate(row, rng, zipf_cache)
                }
            }
            ColumnGen::Const(v) => v.clone(),
        }
    }
}

/// Draws from a Zipf(θ) distribution over `[0, n)` using the standard
/// CDF-inversion over harmonic weights (cached per generator run).
fn zipf_sample(n: u64, theta: f64, rng: &mut Rng, cache: &mut Vec<f64>) -> u64 {
    let n = n.max(1) as usize;
    if cache.len() != n {
        cache.clear();
        let mut sum = 0.0;
        for i in 0..n {
            sum += 1.0 / ((i + 1) as f64).powf(theta);
            cache.push(sum);
        }
        let total = cache[n - 1];
        for v in cache.iter_mut() {
            *v /= total;
        }
    }
    let u: f64 = rng.gen_f64();
    match cache.binary_search_by(|p| p.total_cmp(&u)) {
        Ok(i) | Err(i) => i.min(n - 1) as u64,
    }
}

/// Deterministic row generator for a table.
#[derive(Debug, Clone)]
pub struct RowGenerator {
    pub rows: u64,
    pub columns: Vec<ColumnGen>,
    pub seed: u64,
}

impl RowGenerator {
    pub fn new(rows: u64, columns: Vec<ColumnGen>, seed: u64) -> RowGenerator {
        RowGenerator {
            rows,
            columns,
            seed,
        }
    }

    /// Generates all rows.
    pub fn generate(&self) -> Vec<Row> {
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut caches: Vec<Vec<f64>> = vec![Vec::new(); self.columns.len()];
        let mut out = Vec::with_capacity(self.rows as usize);
        for r in 0..self.rows {
            let row: Row = self
                .columns
                .iter()
                .zip(caches.iter_mut())
                .map(|(g, cache)| g.generate(r, &mut rng, cache))
                .collect();
            out.push(row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn serial_is_dense() {
        let g = RowGenerator::new(5, vec![ColumnGen::Serial], 1);
        let rows = g.generate();
        assert_eq!(
            rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![
                Value::Int(0),
                Value::Int(1),
                Value::Int(2),
                Value::Int(3),
                Value::Int(4)
            ]
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let g1 = RowGenerator::new(100, vec![ColumnGen::UniformInt { lo: 0, hi: 1000 }], 42);
        let g2 = RowGenerator::new(100, vec![ColumnGen::UniformInt { lo: 0, hi: 1000 }], 42);
        assert_eq!(g1.generate(), g2.generate());
        let g3 = RowGenerator::new(100, vec![ColumnGen::UniformInt { lo: 0, hi: 1000 }], 43);
        assert_ne!(g1.generate(), g3.generate());
    }

    #[test]
    fn uniform_respects_bounds() {
        let g = RowGenerator::new(500, vec![ColumnGen::UniformInt { lo: 10, hi: 20 }], 7);
        for r in g.generate() {
            let v = r[0].as_i64().unwrap();
            assert!((10..=20).contains(&v));
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let g = RowGenerator::new(5000, vec![ColumnGen::Zipf { n: 100, theta: 1.0 }], 3);
        let mut counts: HashMap<i64, usize> = HashMap::new();
        for r in g.generate() {
            *counts.entry(r[0].as_i64().unwrap()).or_default() += 1;
        }
        let c0 = counts.get(&0).copied().unwrap_or(0);
        let c50 = counts.get(&50).copied().unwrap_or(0);
        assert!(c0 > c50 * 5, "zipf head {c0} should dominate tail {c50}");
    }

    #[test]
    fn nullable_fraction_approximate() {
        let g = RowGenerator::new(
            2000,
            vec![ColumnGen::Nullable {
                inner: Box::new(ColumnGen::UniformInt { lo: 0, hi: 9 }),
                null_frac: 0.25,
            }],
            11,
        );
        let nulls = g.generate().iter().filter(|r| r[0].is_null()).count();
        assert!((400..600).contains(&nulls), "nulls={nulls}");
    }

    #[test]
    fn fk_within_parent_range() {
        let g = RowGenerator::new(300, vec![ColumnGen::Fk { parent_rows: 10 }], 5);
        for r in g.generate() {
            let v = r[0].as_i64().unwrap();
            assert!((0..10).contains(&v));
        }
    }

    #[test]
    fn choice_and_const() {
        let g = RowGenerator::new(
            50,
            vec![
                ColumnGen::Choice(vec!["US", "UK"]),
                ColumnGen::Const(Value::Int(9)),
            ],
            2,
        );
        for r in g.generate() {
            assert!(matches!(r[0].as_str(), Some("US") | Some("UK")));
            assert_eq!(r[1], Value::Int(9));
        }
    }
}
