//! In-memory storage substrate: row tables, multi-column B-tree indexes,
//! statistics collection (ANALYZE), and synthetic data generators used by
//! the workload harness.

pub mod datagen;
pub mod store;

pub use datagen::{ColumnGen, RowGenerator};
pub use store::{BTreeIndex, Storage, TableData};
