//! In-memory MVCC storage substrate: version heaps with snapshot
//! isolation, multi-column B-tree indexes, statistics collection
//! (ANALYZE), and synthetic data generators used by the workload harness.

pub mod datagen;
pub mod store;

pub use datagen::{ColumnGen, RowGenerator};
pub use store::{
    BTreeIndex, CommitInfo, RowVersion, SnapTable, Snapshot, Storage, TxnStats, VersionHeap,
    TXN_BASE,
};
