//! Property: B-tree index lookups agree with filtered full scans.

use cbqt_catalog::{Catalog, Column, Constraint};
use cbqt_common::{DataType, Value};
use cbqt_storage::Storage;
use cbqt_testkit::prop::{any_bool, option_of, vec_of};
use cbqt_testkit::props;
use std::ops::Bound;

fn setup(vals: &[Option<i64>]) -> (Storage, cbqt_catalog::IndexId) {
    let mut cat = Catalog::new();
    let t = cat
        .add_table(
            "t",
            vec![
                Column {
                    name: "id".into(),
                    data_type: DataType::Int,
                    not_null: true,
                },
                Column {
                    name: "k".into(),
                    data_type: DataType::Int,
                    not_null: false,
                },
            ],
            vec![Constraint::PrimaryKey(vec![0])],
        )
        .unwrap();
    let st = Storage::new();
    st.create_table(t);
    for (i, v) in vals.iter().enumerate() {
        let k = v.map(Value::Int).unwrap_or(Value::Null);
        st.insert(t, vec![Value::Int(i as i64), k]).unwrap();
    }
    let ix = cat.add_index("i_k", t, vec![1], false).unwrap();
    st.build_index(ix, t, vec![1]).unwrap();
    (st, ix)
}

props! {
    fn eq_lookup_matches_scan(
        vals in vec_of(option_of(-20i64..20), 0..=199),
        probe in -25i64..25,
    ) {
        let (st, ix) = setup(&vals);
        let snap = st.snapshot();
        let hits = snap.index(ix).unwrap().lookup_eq(&[Value::Int(probe)]);
        let expected: Vec<usize> = vals
            .iter()
            .enumerate()
            .filter(|(_, v)| **v == Some(probe))
            .map(|(i, _)| i)
            .collect();
        let mut got = hits.to_vec();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    fn range_lookup_matches_scan(
        vals in vec_of(option_of(-20i64..20), 0..=199),
        lo in -25i64..25,
        span in 0i64..20,
        inc_lo in any_bool(),
        inc_hi in any_bool(),
    ) {
        let hi = lo + span;
        let (st, ix) = setup(&vals);
        let lov = Value::Int(lo);
        let hiv = Value::Int(hi);
        let lob = if inc_lo { Bound::Included(&lov) } else { Bound::Excluded(&lov) };
        let hib = if inc_hi { Bound::Included(&hiv) } else { Bound::Excluded(&hiv) };
        let mut got = Vec::new();
        st.snapshot().index(ix).unwrap().lookup_range(lob, hib, &mut got);
        got.sort_unstable();
        let expected: Vec<usize> = vals
            .iter()
            .enumerate()
            .filter(|(_, v)| {
                v.map(|x| {
                    (if inc_lo { x >= lo } else { x > lo })
                        && (if inc_hi { x <= hi } else { x < hi })
                })
                .unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, expected);
    }

    fn incremental_insert_equals_bulk_build(
        vals in vec_of(option_of(-10i64..10), 1..=99),
        probe in -12i64..12,
    ) {
        // maintaining the index on insert must equal rebuilding it
        let (st, ix) = setup(&vals);
        let bulk = {
            let mut cat = Catalog::new();
            let t = cat
                .add_table(
                    "t",
                    vec![
                        Column { name: "id".into(), data_type: DataType::Int, not_null: true },
                        Column { name: "k".into(), data_type: DataType::Int, not_null: false },
                    ],
                    vec![],
                )
                .unwrap();
            let st2 = Storage::new();
            st2.create_table(t);
            let ix2 = cat.add_index("i_k", t, vec![1], false).unwrap();
            st2.build_index(ix2, t, vec![1]).unwrap(); // build EMPTY first
            for (i, v) in vals.iter().enumerate() {
                let k = v.map(Value::Int).unwrap_or(Value::Null);
                st2.insert(t, vec![Value::Int(i as i64), k]).unwrap();
            }
            st2.snapshot().index(ix2).unwrap().lookup_eq(&[Value::Int(probe)]).to_vec()
        };
        let rebuilt = st.snapshot().index(ix).unwrap().lookup_eq(&[Value::Int(probe)]).to_vec();
        let mut a = bulk;
        let mut b = rebuilt;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
