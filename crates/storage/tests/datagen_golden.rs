//! Pins the exact output of the synthetic data generator for a fixed
//! seed. Recorded experiment artifacts assume seed `S` reproduces the
//! same database everywhere; this test fails if the PRNG stream or the
//! generator's draw order ever changes.

use cbqt_common::Value;
use cbqt_storage::datagen::{ColumnGen, RowGenerator};

#[test]
fn golden_rows_seed_42() {
    let g = RowGenerator::new(
        4,
        vec![
            ColumnGen::Serial,
            ColumnGen::UniformInt { lo: -50, hi: 50 },
            ColumnGen::Zipf { n: 10, theta: 0.8 },
            ColumnGen::Choice(vec!["US", "UK", "DE"]),
            ColumnGen::Fk { parent_rows: 7 },
            ColumnGen::Nullable {
                inner: Box::new(ColumnGen::UniformInt { lo: 0, hi: 9 }),
                null_frac: 0.5,
            },
        ],
        42,
    );
    let rows = g.generate();
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| r.iter().map(Value::to_string).collect::<Vec<_>>().join(","))
        .collect();
    assert_eq!(
        rendered,
        [
            "0,-42,1,'DE',6,7",
            "1,22,6,'DE',4,2",
            "2,30,1,'DE',6,8",
            "3,21,4,'US',1,NULL",
        ],
    );
}

#[test]
fn golden_doubles_seed_7() {
    let g = RowGenerator::new(3, vec![ColumnGen::UniformDouble { lo: 0.0, hi: 1.0 }], 7);
    let rendered: Vec<String> = g
        .generate()
        .iter()
        .map(|r| format!("{:.6}", r[0].as_f64().unwrap()))
        .collect();
    assert_eq!(rendered, ["0.700576", "0.278751", "0.839627"]);
}

#[test]
fn generate_is_pure() {
    // calling generate() twice on the same generator yields identical rows
    let g = RowGenerator::new(
        64,
        vec![
            ColumnGen::UniformInt {
                lo: 0,
                hi: 1_000_000,
            },
            ColumnGen::Zipf { n: 50, theta: 1.0 },
        ],
        9,
    );
    assert_eq!(g.generate(), g.generate());
}
