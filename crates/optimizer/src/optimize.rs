//! Per-block plan generation: access paths, left-deep join enumeration
//! (dynamic programming with a greedy fallback), post-join costing, and
//! the optimizer-level caches from §3.4.

use crate::est::{Estimator, RelStats, DEFAULT_NDV_FRAC, DEFAULT_ROWS};
use crate::plan::{weights, *};
use cbqt_catalog::{Catalog, TableId};
use cbqt_common::failpoint;
use cbqt_common::{cost_lt, Error, Governor, Result, TraceEvent, Tracer, Value};
use cbqt_qgm::{
    render, BlockId, JoinInfo, QExpr, QTableSource, QueryBlock, QueryTree, RefId, SelectBlock,
    SetOp,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Tuning knobs of the physical optimizer.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Blocks with at most this many FROM items use exhaustive DP join
    /// enumeration; larger blocks fall back to a greedy heuristic.
    pub dp_max_items: usize,
    /// Blocks with at most this many FROM items (all plain inner,
    /// non-correlated) use the memoized bushy enumerator; beyond it the
    /// left-deep DP tier applies up to `dp_max_items`, then greedy.
    /// Set to 0 to disable bushy enumeration entirely.
    pub bushy_max_items: usize,
    pub enable_index_nl: bool,
    pub enable_hash_join: bool,
    pub enable_merge_join: bool,
    /// Enable §3.4.2 cost-annotation reuse.
    pub reuse_annotations: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            dp_max_items: 10,
            bushy_max_items: 10,
            enable_index_nl: true,
            enable_hash_join: true,
            enable_merge_join: true,
            reuse_annotations: true,
        }
    }
}

/// Counters reported by the optimizer (Table 1 reproduces these).
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimizerStats {
    /// Query blocks actually optimized (annotation misses).
    pub blocks_costed: u64,
    /// Query blocks whose plan was reused from a cost annotation.
    pub annotation_hits: u64,
    /// A bushy join enumeration ran out of its per-block state
    /// allowance and degraded to the greedy path. Sticky for the
    /// optimizer's lifetime; the CBQT framework folds it into the
    /// governor's degraded outcome at deterministic commit points.
    pub enum_degraded: bool,
}

/// Number of lock shards in [`CostAnnotations`]. Keys are already
/// uniform hashes, so the low bits pick the shard.
const ANNOTATION_SHARDS: usize = 16;

/// Cost-annotation store (§3.4.2): canonical block rendering → plan.
/// Shared across all transformation states of one optimization session.
///
/// The store is a sharded-lock concurrent map so the parallel CBQT
/// search can share annotations across worker threads: a `&CostAnnotations`
/// is all any optimizer needs, and a hit produced by one worker is
/// immediately visible to the others. Lock poisoning is ignored (a
/// panicking worker leaves at worst a valid-but-partial cache).
#[derive(Debug, Default)]
pub struct CostAnnotations {
    shards: [Mutex<HashMap<u64, BlockPlan>>; ANNOTATION_SHARDS],
}

impl CostAnnotations {
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, BlockPlan>> {
        &self.shards[(key % ANNOTATION_SHARDS as u64) as usize]
    }

    /// Looks up the annotated plan for a canonical block key.
    pub fn get(&self, key: u64) -> Option<BlockPlan> {
        self.shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .cloned()
    }

    /// Records the annotated plan for a canonical block key.
    pub fn insert(&self, key: u64, plan: BlockPlan) {
        self.shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, plan);
    }

    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Absorbs every entry of `other` (typically a wave worker's private
    /// overlay) into this store. Identical keys carry identical plans
    /// (the key is a full canonical rendering and the optimizer is
    /// deterministic), so merge order cannot change the contents.
    pub fn merge(&self, other: CostAnnotations) {
        for (i, shard) in other.shards.into_iter().enumerate() {
            let src = shard.into_inner().unwrap_or_else(|e| e.into_inner());
            if src.is_empty() {
                continue;
            }
            self.shards[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(src);
        }
    }
}

/// Dynamic sampling (§3.4.4): asks the storage layer for an estimate of
/// `(rows, selectivity)` of single-table conjuncts on a table without
/// statistics. Results are cached in a [`SamplingCache`].
/// `Sync` because the parallel CBQT search samples from concurrent
/// costing workers.
pub trait DynamicSampler: Sync {
    fn sample(&self, table: TableId, conjuncts_key: &str) -> Option<(f64, f64)>;
}

/// Cache for dynamic-sampling results, shared across optimizer calls.
pub type SamplingCache = Mutex<HashMap<(TableId, String), (f64, f64)>>;

/// Sentinel message used by the cost cut-off mechanism (§3.4.1).
pub const COST_CUTOFF: &str = "COST_CUTOFF";

/// Returns true if an error is the cost-cut-off sentinel.
pub fn is_cutoff(e: &Error) -> bool {
    matches!(e, Error::Plan(m) if m == COST_CUTOFF)
}

/// The physical optimizer.
pub struct Optimizer<'a> {
    pub catalog: &'a Catalog,
    pub config: OptimizerConfig,
    pub annotations: &'a CostAnnotations,
    /// Private annotation write layer for parallel wave costing: when
    /// set, reads consult the overlay first and then the shared store,
    /// and writes land in the overlay only — the coordinator merges
    /// overlays into the shared store in deterministic state order.
    /// `None` (the default) reads and writes the shared store directly.
    pub overlay: Option<&'a CostAnnotations>,
    pub sampler: Option<&'a dyn DynamicSampler>,
    pub sampling_cache: &'a SamplingCache,
    /// Observed-cardinality source (the feedback loop's estimate side):
    /// when set, eligible base-table scans prefer a previously observed
    /// actual over the NDV/histogram estimate. `None` (the default)
    /// estimates statically.
    pub feedback: Option<&'a dyn crate::est::CardFeedback>,
    pub stats: OptimizerStats,
    /// Optimizer trace sink (disabled by default; see `cbqt_common::trace`).
    pub tracer: Tracer<'a>,
    /// Statement-level resource governor. Deadline/cancellation are
    /// observed inside join enumeration; an exhausted optimizer-state
    /// budget degrades wide-block planning from DP to greedy.
    pub governor: Governor,
}

impl<'a> Optimizer<'a> {
    pub fn new(
        catalog: &'a Catalog,
        annotations: &'a CostAnnotations,
        sampling_cache: &'a SamplingCache,
    ) -> Self {
        Optimizer {
            catalog,
            config: OptimizerConfig::default(),
            annotations,
            overlay: None,
            sampler: None,
            sampling_cache,
            feedback: None,
            stats: OptimizerStats::default(),
            tracer: Tracer::disabled(),
            governor: Governor::unlimited(),
        }
    }

    /// Optimizes the whole tree bottom-up and returns the root plan.
    /// With `budget` set, aborts with the [`COST_CUTOFF`] error as soon
    /// as the root cost provably exceeds it.
    pub fn optimize(&mut self, tree: &QueryTree, budget: Option<f64>) -> Result<BlockPlan> {
        let mut plans: HashMap<BlockId, BlockPlan> = HashMap::new();
        let order = tree.bottom_up();
        for id in &order {
            let plan = self.plan_block(tree, *id, &plans, budget)?;
            if let Some(b) = budget {
                // the root cost is at least the cost of any block that the
                // root (transitively) executes at least once
                if *id == tree.root && plan.cost > b {
                    return Err(Error::plan(COST_CUTOFF));
                }
            }
            plans.insert(*id, plan);
        }
        plans
            .remove(&tree.root)
            .ok_or_else(|| Error::plan("root block was not planned"))
    }

    fn plan_block(
        &mut self,
        tree: &QueryTree,
        id: BlockId,
        plans: &HashMap<BlockId, BlockPlan>,
        budget: Option<f64>,
    ) -> Result<BlockPlan> {
        cbqt_common::failpoint!(failpoint::OPTIMIZER_PLAN);
        self.governor.check_interrupt()?;
        let key = if self.config.reuse_annotations {
            let rendered = render::render_block(tree, self.catalog, id);
            let mut h = DefaultHasher::new();
            rendered.hash(&mut h);
            // correlated blocks bind outer table references: two blocks
            // that render identically but reference different outer
            // RefIds (e.g. copies made by OR expansion) must NOT share a
            // plan, so the correlation identities join the key
            for (r, c) in tree.correlated_cols(id) {
                r.0.hash(&mut h);
                c.hash(&mut h);
            }
            let key = h.finish();
            let cached = self
                .overlay
                .and_then(|o| o.get(key))
                .or_else(|| self.annotations.get(key));
            if let Some(p) = cached {
                self.stats.annotation_hits += 1;
                self.tracer.emit(|| TraceEvent::AnnotationHit {
                    block: id.to_string(),
                });
                let mut reused = p;
                reused.block = id;
                return Ok(reused);
            }
            Some(key)
        } else {
            None
        };
        self.stats.blocks_costed += 1;
        self.tracer.emit(|| TraceEvent::BlockCosted {
            block: id.to_string(),
        });
        let plan = match tree.block(id)? {
            QueryBlock::Select(s) => self.plan_select(tree, id, s, plans, budget)?,
            QueryBlock::SetOp(s) => {
                let inputs: Vec<BlockPlan> = s
                    .inputs
                    .iter()
                    .map(|i| {
                        plans
                            .get(i)
                            .cloned()
                            .ok_or_else(|| Error::plan(format!("missing child plan {i}")))
                    })
                    .collect::<Result<_>>()?;
                let mut cost: f64 = inputs.iter().map(|p| p.cost).sum();
                let total: f64 = inputs.iter().map(|p| p.rows).sum();
                let (rows, extra) = match s.op {
                    SetOp::UnionAll => (total, total * weights::ROW),
                    SetOp::Union => ((total * 0.7).max(1.0), total * weights::DEDUP),
                    SetOp::Intersect => {
                        let m = inputs.iter().map(|p| p.rows).fold(f64::INFINITY, f64::min);
                        ((m * 0.5).max(1.0), total * weights::DEDUP)
                    }
                    SetOp::Minus => ((inputs[0].rows * 0.5).max(1.0), total * weights::DEDUP),
                };
                cost += extra;
                let arity = inputs[0].out_ndv.len();
                let out_ndv = vec![rows.max(1.0); arity];
                BlockPlan {
                    block: id,
                    root: PlanRoot::SetOp(SetOpPlan { op: s.op, inputs }),
                    cost,
                    rows,
                    out_ndv,
                }
            }
        };
        if let (Some(b), true) = (budget, plan.cost.is_finite()) {
            // any single block costing more than the budget dooms the state
            if plan.cost > b {
                return Err(Error::plan(COST_CUTOFF));
            }
        }
        if let Some(k) = key {
            self.overlay
                .unwrap_or(self.annotations)
                .insert(k, plan.clone());
        }
        Ok(plan)
    }

    fn plan_select(
        &mut self,
        tree: &QueryTree,
        id: BlockId,
        s: &SelectBlock,
        plans: &HashMap<BlockId, BlockPlan>,
        budget: Option<f64>,
    ) -> Result<BlockPlan> {
        let declared = s.declared_refs();

        // --- relation statistics per item --------------------------------
        let mut rels: HashMap<RefId, RelStats> = HashMap::new();
        let mut base: HashMap<RefId, TableId> = HashMap::new();
        for t in &s.tables {
            match &t.source {
                QTableSource::Base(tid) => {
                    let tbl = self.catalog.table(*tid)?;
                    let rows = if tbl.stats.analyzed {
                        tbl.stats.rows as f64
                    } else {
                        DEFAULT_ROWS
                    };
                    let mut ndv: Vec<f64> = (0..tbl.columns.len())
                        .map(|c| {
                            if tbl.stats.analyzed {
                                tbl.stats
                                    .column(c)
                                    .map(|cs| cs.ndv as f64)
                                    .unwrap_or(1.0)
                                    .max(1.0)
                            } else {
                                (rows * DEFAULT_NDV_FRAC).max(1.0)
                            }
                        })
                        .collect();
                    ndv.push(rows.max(1.0)); // virtual ROWID
                    rels.insert(t.refid, RelStats { rows, ndv });
                    base.insert(t.refid, *tid);
                }
                QTableSource::View(b) => {
                    let p = plans
                        .get(b)
                        .ok_or_else(|| Error::plan(format!("missing view plan {b}")))?;
                    rels.insert(
                        t.refid,
                        RelStats {
                            rows: p.rows,
                            ndv: p.out_ndv.clone(),
                        },
                    );
                }
            }
        }

        // --- partition WHERE conjuncts ------------------------------------
        let mut table_preds: HashMap<RefId, Vec<QExpr>> = HashMap::new();
        let mut join_preds: Vec<QExpr> = Vec::new();
        let mut post_filter: Vec<QExpr> = Vec::new();
        let outer_annotated: HashSet<RefId> = s
            .tables
            .iter()
            .filter(|t| matches!(t.join, JoinInfo::LeftOuter { .. }))
            .map(|t| t.refid)
            .collect();
        let has_limit = s.rownum_limit.is_some();
        for c in &s.where_conjuncts {
            let locals: Vec<RefId> = c
                .referenced_tables()
                .into_iter()
                .filter(|r| declared.contains(r))
                .collect();
            // expensive predicates under a ROWNUM limit stay above the
            // join so the early exit bounds their evaluations (§2.2.6)
            if c.contains_subquery()
                || locals.iter().any(|r| outer_annotated.contains(r))
                || (has_limit && expensive_cost(c) > 0.0)
            {
                post_filter.push(c.clone());
            } else {
                match locals.len() {
                    0 => post_filter.push(c.clone()),
                    1 => table_preds.entry(locals[0]).or_default().push(c.clone()),
                    _ => join_preds.push(c.clone()),
                }
            }
        }

        // --- dynamic sampling for unanalyzed base tables -------------------
        for t in &s.tables {
            if let QTableSource::Base(tid) = &t.source {
                let tbl = self.catalog.table(*tid)?;
                if !tbl.stats.analyzed {
                    if let Some(sampler) = self.sampler {
                        let preds = table_preds.get(&t.refid).cloned().unwrap_or_default();
                        let key_str = format!("{}|{}", tbl.name, preds.len());
                        let cached = {
                            // a poisoned cache only means another optimizer
                            // thread panicked mid-insert; the map itself is
                            // still a valid cache, so keep using it
                            self.sampling_cache
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .get(&(*tid, key_str.clone()))
                                .copied()
                        };
                        let sampled = match cached {
                            Some(v) => Some(v),
                            None => {
                                let v = sampler.sample(*tid, &key_str);
                                if let Some(v) = v {
                                    self.sampling_cache
                                        .lock()
                                        .unwrap_or_else(|e| e.into_inner())
                                        .insert((*tid, key_str), v);
                                }
                                v
                            }
                        };
                        if let Some((rows, _sel)) = sampled {
                            if let Some(rs) = rels.get_mut(&t.refid) {
                                rs.rows = rows.max(1.0);
                                let n = rs.ndv.len();
                                rs.ndv =
                                    vec![(rows * DEFAULT_NDV_FRAC).max(1.0); n.saturating_sub(1)];
                                rs.ndv.push(rows.max(1.0));
                            }
                        }
                    }
                }
            }
        }

        // --- join enumeration ---------------------------------------------
        let items: Vec<Item> = s
            .tables
            .iter()
            .map(|t| self.make_item(tree, t, &declared, &rels, plans))
            .collect::<Result<_>>()?;

        let est = Estimator {
            catalog: self.catalog,
            rels: &rels,
            base: &base,
        };
        let enumerator = JoinEnumerator {
            opt: self,
            est: &est,
            items: &items,
            table_preds: &table_preds,
            join_preds: &join_preds,
            budget,
            block: id,
            enum_left: std::cell::Cell::new(self.governor.state_budget()),
            enum_degraded: std::cell::Cell::new(false),
        };
        // Tier selection: bushy (all plain inner, within bushy_max_items)
        // → left-deep DP (within dp_max_items) → greedy. The framework's
        // search-degraded flag drops every later block straight to greedy;
        // the per-block bushy allowance (enum_left) is a snapshot of the
        // configured budget, so tier choice and plan shape depend only on
        // the block itself — identical across CBQT states and workers.
        let exhausted = enumerator.opt.governor.search_exhausted();
        let bushy_eligible = items.len() >= 2
            && items.len() <= enumerator.opt.config.bushy_max_items
            && items.len() <= 32
            && items.iter().all(|i| i.join.is_inner() && !i.correlated);
        let best = if items.is_empty() {
            // FROM-less SELECT: one constant row
            (PlanNode::OneRow, weights::ROW, 1.0)
        } else if bushy_eligible && !exhausted {
            enumerator.enumerate_bushy()?
        } else if items.len() <= enumerator.opt.config.dp_max_items && !exhausted {
            enumerator.enumerate_dp()?
        } else {
            // greedy fallback: very wide blocks, or the statement's
            // optimizer budget ran out (degraded search keeps planning
            // cheap but always yields a valid plan)
            enumerator.enumerate_greedy()?
        };
        let bushy_degraded = enumerator.enum_degraded.get();
        let (join_node, mut cost, mut rows) = best;
        if bushy_degraded {
            self.stats.enum_degraded = true;
            // the payload uses the configured budget (a constant), not
            // the shared states_used counter, so the event is identical
            // whether this block is costed serially or in a wave worker
            self.tracer.emit(|| TraceEvent::SearchDegraded {
                transform: "bushy join enumeration".to_string(),
                states_used: self.governor.state_budget().unwrap_or(0),
            });
            if self.overlay.is_none() {
                // serial costing: fold into the governor's degraded
                // outcome directly. Wave workers instead carry the flag
                // in their counters; the coordinator applies it in
                // deterministic commit order (committed states only).
                self.governor.mark_enum_degraded();
            }
        }

        // --- post-join pipeline --------------------------------------------
        let layout = Layout::from_node(&join_node);

        // subquery (TIS) filters
        let mut subplans: Vec<(BlockId, BlockPlan)> = Vec::new();
        let collect_subplans = |e: &QExpr, subplans: &mut Vec<(BlockId, BlockPlan)>| {
            for b in e.subquery_blocks() {
                if !subplans.iter().any(|(x, _)| *x == b) {
                    if let Some(p) = plans.get(&b) {
                        subplans.push((b, p.clone()));
                    }
                }
            }
        };
        for c in &post_filter {
            collect_subplans(c, &mut subplans);
        }
        for i in &s.select {
            collect_subplans(&i.expr, &mut subplans);
        }
        for h in &s.having {
            collect_subplans(h, &mut subplans);
        }

        // TIS cost: each referenced subquery runs once per distinct binding
        // (the execution engine caches results on the correlation values —
        // §2.1.1's caching), plus a cache probe per input row.
        let mut post_sel = 1.0;
        for c in &post_filter {
            post_sel *= est.selectivity(c);
        }
        // with a ROWNUM limit the executor stops filtering once the limit
        // fills, so only ~limit/selectivity input rows ever pay for the
        // post-filter — the economics behind predicate pullup (§2.2.6)
        let expected_filtered = match s.rownum_limit {
            Some(lim) => (lim as f64 / post_sel.max(1e-9)).min(rows),
            None => rows,
        };
        for (b, p) in &subplans {
            let corr = tree.correlated_cols(*b);
            let eff = if corr.is_empty() {
                1.0
            } else {
                let mut prod = 1.0_f64;
                for (r, cidx) in &corr {
                    let ndv = rels
                        .get(r)
                        .map(|rs| rs.ndv_of(*cidx))
                        .unwrap_or(DEFAULT_ROWS);
                    prod = (prod * ndv).min(1e15);
                }
                prod.min(expected_filtered)
            };
            cost += eff * p.cost + expected_filtered * weights::HASH_PROBE;
        }
        cost += expected_filtered * post_filter.len() as f64 * weights::PRED;
        let expensive_units: f64 = post_filter.iter().map(expensive_cost).sum();
        cost += expected_filtered * expensive_units;
        rows = (rows * post_sel).max(0.0);

        // aggregation
        let mut aggs: Vec<QExpr> = Vec::new();
        let mut windows: Vec<QExpr> = Vec::new();
        let scan_for_special = |e: &QExpr, aggs: &mut Vec<QExpr>, wins: &mut Vec<QExpr>| {
            e.walk(&mut |n| match n {
                QExpr::Agg { .. } if !aggs.contains(n) => {
                    aggs.push(n.clone());
                }
                QExpr::Win { .. } if !wins.contains(n) => {
                    wins.push(n.clone());
                }
                _ => {}
            });
        };
        for i in &s.select {
            scan_for_special(&i.expr, &mut aggs, &mut windows);
        }
        for h in &s.having {
            scan_for_special(&h.expr_ref(), &mut aggs, &mut windows);
        }
        for o in &s.order_by {
            scan_for_special(&o.expr, &mut aggs, &mut windows);
        }

        let aggregated = !s.group_by.is_empty() || !s.having.is_empty() || !aggs.is_empty();
        if aggregated {
            let nsets = s.grouping_sets.as_ref().map(|g| g.len()).unwrap_or(1) as f64;
            cost += rows * weights::AGG * nsets;
            let groups = if let Some(sets) = &s.grouping_sets {
                let mut total = 0.0;
                for set in sets {
                    let keys: Vec<QExpr> = set.iter().map(|&i| s.group_by[i].clone()).collect();
                    total += est.group_count(&keys, rows);
                }
                total
            } else {
                est.group_count(&s.group_by, rows)
            };
            rows = groups;
            // HAVING
            let mut hsel = 1.0;
            for h in &s.having {
                hsel *= est.selectivity(h);
                cost += rows * weights::PRED;
            }
            rows = (rows * hsel).max(0.0);
        }

        // windows: sort per distinct (partition, order) spec + one pass
        if !windows.is_empty() {
            let n = rows.max(1.0);
            cost += windows.len() as f64 * (weights::SORT * n * n.log2().max(1.0) + n);
        }

        // distinct
        if s.distinct || s.distinct_keys.is_some() {
            cost += rows * weights::DEDUP;
            let keys: Vec<QExpr> = match &s.distinct_keys {
                Some(k) => k.clone(),
                None => s.select.iter().map(|i| i.expr.clone()).collect(),
            };
            rows = est.group_count(&keys, rows);
        }

        // order by
        if !s.order_by.is_empty() {
            let n = rows.max(2.0);
            cost += weights::SORT * n * n.log2();
        }

        // rownum limit: truncates output; when there is no blocking sort
        // upstream the expensive post-filter work is also bounded
        if let Some(limit) = s.rownum_limit {
            rows = rows.min(limit as f64);
        }

        // projection
        cost += rows * weights::ROW;
        // scalar subqueries in the select list run per output row
        for i in &s.select {
            for b in i.expr.subquery_blocks() {
                if let Some(p) = plans.get(&b) {
                    let corr_execs = if tree.is_correlated(b) { rows } else { 1.0 };
                    cost += corr_execs.max(1.0) * p.cost;
                }
            }
        }
        let select_expensive: f64 = s.select.iter().map(|i| expensive_cost(&i.expr)).sum();
        cost += rows * select_expensive;

        rows = rows.max(if aggregated && s.group_by.is_empty() {
            1.0
        } else {
            0.0
        });

        // output NDV per select item
        let out_ndv: Vec<f64> = s
            .select
            .iter()
            .map(|i| match &i.expr {
                QExpr::Col { table, column } => rels
                    .get(table)
                    .map(|rs| rs.ndv_of(*column))
                    .unwrap_or(rows)
                    .min(rows.max(1.0)),
                QExpr::Lit(_) | QExpr::Param { .. } => 1.0,
                QExpr::Agg { .. } => rows.max(1.0),
                _ => (rows * 0.5).max(1.0),
            })
            .collect();

        let plan = SelectPlan {
            join: join_node,
            layout,
            post_filter,
            aggs,
            group_by: s.group_by.clone(),
            grouping_sets: s.grouping_sets.clone(),
            having: s.having.clone(),
            windows,
            select: s.select.iter().map(|i| i.expr.clone()).collect(),
            distinct: s.distinct,
            distinct_keys: s.distinct_keys.clone(),
            order_by: s.order_by.clone(),
            rownum_limit: s.rownum_limit,
            subplans,
        };
        Ok(BlockPlan {
            block: id,
            root: PlanRoot::Select(Box::new(plan)),
            cost,
            rows: rows.max(0.0),
            out_ndv,
        })
    }

    fn make_item(
        &self,
        tree: &QueryTree,
        t: &cbqt_qgm::QTable,
        declared: &HashSet<RefId>,
        rels: &HashMap<RefId, RelStats>,
        plans: &HashMap<BlockId, BlockPlan>,
    ) -> Result<Item> {
        let mut deps: HashSet<RefId> = HashSet::new();
        for c in t.join.on_conjuncts() {
            deps.extend(
                c.referenced_tables()
                    .into_iter()
                    .filter(|r| declared.contains(r) && *r != t.refid),
            );
        }
        let (kind, correlated, plan) = match &t.source {
            QTableSource::Base(tid) => (ItemKind::Base(*tid), false, None),
            QTableSource::View(b) => {
                let corr: HashSet<RefId> = tree
                    .correlated_refs(*b)
                    .into_iter()
                    .filter(|r| declared.contains(r))
                    .collect();
                deps.extend(corr.iter().copied());
                let p = plans
                    .get(b)
                    .ok_or_else(|| Error::plan(format!("missing view plan {b}")))?;
                (
                    ItemKind::View(*b),
                    !corr.is_empty(),
                    Some(Box::new(p.clone())),
                )
            }
        };
        let rows = rels.get(&t.refid).map(|r| r.rows).unwrap_or(DEFAULT_ROWS);
        Ok(Item {
            refid: t.refid,
            alias: t.alias.clone(),
            kind,
            join: t.join.clone(),
            deps,
            correlated,
            plan,
            base_rows: rows,
            width: match &t.source {
                QTableSource::Base(tid) => self.catalog.table(*tid)?.columns.len() + 1,
                QTableSource::View(b) => tree.block(*b)?.output_arity(tree),
            },
        })
    }
}

fn expensive_cost(e: &QExpr) -> f64 {
    let mut total = 0.0;
    e.walk(&mut |n| {
        if let QExpr::Func { name, args } = n {
            if name == "EXPENSIVE" {
                total += match args.get(1) {
                    Some(QExpr::Lit(Value::Int(u))) => *u as f64,
                    _ => weights::EXPENSIVE_DEFAULT,
                };
            }
        }
    });
    total
}

/// helper so `scan_for_special` can take &QExpr from both OutputItem and
/// plain exprs uniformly
trait ExprRef {
    fn expr_ref(&self) -> QExpr;
}
impl ExprRef for QExpr {
    fn expr_ref(&self) -> QExpr {
        self.clone()
    }
}

#[derive(Debug, Clone)]
enum ItemKind {
    Base(TableId),
    View(BlockId),
}

#[derive(Debug, Clone)]
struct Item {
    refid: RefId,
    #[allow(dead_code)]
    alias: String,
    kind: ItemKind,
    join: JoinInfo,
    /// Items (by refid) that must precede this one.
    deps: HashSet<RefId>,
    /// View correlated to sibling tables (lateral).
    correlated: bool,
    plan: Option<Box<BlockPlan>>,
    base_rows: f64,
    width: usize,
}

struct JoinEnumerator<'b, 'a> {
    opt: &'b Optimizer<'a>,
    est: &'b Estimator<'a>,
    items: &'b [Item],
    table_preds: &'b HashMap<RefId, Vec<QExpr>>,
    join_preds: &'b [QExpr],
    budget: Option<f64>,
    /// Block being enumerated (JOIN ENUM trace events).
    block: BlockId,
    /// Remaining per-block bushy-memo state allowance — a snapshot of
    /// the governor's configured optimizer-state budget, deliberately
    /// NOT the shared remaining counter: a constant allowance makes the
    /// chosen plan a function of the block alone, so CBQT states cost
    /// identically whether they run serially, in parallel waves, or out
    /// of the annotation cache. `None` = unlimited.
    enum_left: std::cell::Cell<Option<u64>>,
    /// Set when the bushy enumeration exhausted `enum_left` and
    /// degraded to greedy. Read by `plan_select` after enumeration.
    enum_degraded: std::cell::Cell<bool>,
}

#[derive(Clone)]
struct Partial {
    node: PlanNode,
    cost: f64,
    rows: f64,
    refs: HashSet<RefId>,
}

/// Union of the join-graph neighborhoods of every item in `mask`
/// (including bits inside `mask` itself — callers mask those out).
fn mask_neighbors(mask: u32, adj: &[u32]) -> u32 {
    let mut nb = 0u32;
    let mut t = mask;
    while t != 0 {
        let i = t.trailing_zeros() as usize;
        nb |= adj[i];
        t &= t - 1;
    }
    nb
}

/// True if the items in `mask` form one connected subgraph of the
/// join-predicate graph (grown from the lowest set bit).
fn mask_is_connected(mask: u32, adj: &[u32]) -> bool {
    debug_assert!(mask != 0);
    let mut m = mask & mask.wrapping_neg();
    loop {
        let grow = mask_neighbors(m, adj) & mask & !m;
        if grow == 0 {
            break;
        }
        m |= grow;
    }
    m == mask
}

impl<'b, 'a> JoinEnumerator<'b, 'a> {
    /// Exhaustive left-deep DP over subsets.
    fn enumerate_dp(&self) -> Result<(PlanNode, f64, f64)> {
        let n = self.items.len();
        if n == 0 {
            return Err(Error::plan("block has no tables"));
        }
        let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
        let mut best: HashMap<u32, Partial> = HashMap::new();
        for (i, item) in self.items.iter().enumerate() {
            if !item.join.is_inner() || item.correlated && !item.deps.is_empty() {
                // annotated / lateral items cannot drive the join
                if !item.join.is_inner() || !item.deps.is_empty() {
                    continue;
                }
            }
            if let Some(p) = self.standalone(item) {
                best.insert(1 << i, p);
            }
        }
        if best.is_empty() {
            return Err(Error::plan(
                "no valid driving table (all tables are join-annotated)",
            ));
        }
        for size in 1..n {
            let mut masks: Vec<u32> = best
                .keys()
                .copied()
                .filter(|m| m.count_ones() as usize == size)
                .collect();
            // fixed expansion order so cost ties always break the same
            // way — EXPLAIN output must be deterministic
            masks.sort_unstable();
            for mask in masks {
                self.opt.governor.check_interrupt()?;
                let left = best.get(&mask).cloned().unwrap();
                if let Some(b) = self.budget {
                    if left.cost > b {
                        continue; // §3.4.1 cost cut-off prunes this state
                    }
                }
                for (i, item) in self.items.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        continue;
                    }
                    if !item.deps.iter().all(|d| left.refs.contains(d)) {
                        continue;
                    }
                    if let Some(cand) = self.extend(&left, item)? {
                        let key = mask | (1 << i);
                        match best.get(&key) {
                            Some(old) if old.cost <= cand.cost => {}
                            _ => {
                                best.insert(key, cand);
                            }
                        }
                    }
                }
            }
        }
        let fin = match best.remove(&full) {
            Some(f) => f,
            None if self.budget.is_some() => return Err(Error::plan(COST_CUTOFF)),
            None => return Err(Error::plan("join enumeration found no complete plan")),
        };
        if let Some(b) = self.budget {
            if fin.cost > b {
                return Err(Error::plan(COST_CUTOFF));
            }
        }
        Ok((fin.node, fin.cost, fin.rows))
    }

    /// Charges one unit of the per-block bushy state allowance. Returns
    /// false (and latches the degraded flag) once the allowance is gone.
    fn charge_memo_entry(&self) -> bool {
        match self.enum_left.get() {
            None => true,
            Some(0) => {
                self.enum_degraded.set(true);
                false
            }
            Some(n) => {
                self.enum_left.set(Some(n - 1));
                true
            }
        }
    }

    /// Memoized bushy join enumeration (csg-cmp-pair style): a memo
    /// keyed by connected item subsets (bitset keys) caches the best
    /// (plan, cost, rows) per subset, costed over every partition into
    /// two connected halves with a join edge between them — both
    /// orientations, so bushy trees fall out naturally — with the
    /// existing access-path alternatives at the leaves. Connectivity
    /// comes from the join-predicate graph: subsets without a
    /// connecting edge are never costed, and cross-products appear only
    /// when folding distinct connected components at the end (naive 3^n
    /// partitioning never runs). Only called for blocks whose items are
    /// all plain inner and non-correlated, so ordering dependencies
    /// never arise.
    ///
    /// Every memo entry costed charges one unit of the per-block state
    /// allowance ([`Self::charge_memo_entry`]); exhaustion abandons the
    /// memo mid-enumeration and degrades to the greedy path.
    ///
    /// Determinism: component masks, subset masks, and partition
    /// submasks are all visited in ascending numeric order, and cost
    /// ties keep the first minimum (`total_cmp` / `cost_lt`), so EXPLAIN
    /// output and trace streams are byte-identical run-to-run.
    fn enumerate_bushy(&self) -> Result<(PlanNode, f64, f64)> {
        let n = self.items.len();
        debug_assert!((2..=32).contains(&n));
        self.opt.tracer.emit(|| TraceEvent::JoinEnumBegin {
            block: self.block.to_string(),
            items: n,
        });
        let mut memo_entries = 0usize;
        let mut memo_hits = 0usize;
        let mut pairs = 0usize;

        // --- join-predicate adjacency over item indices -------------------
        let idx_of: HashMap<RefId, usize> = self
            .items
            .iter()
            .enumerate()
            .map(|(i, it)| (it.refid, i))
            .collect();
        let mut adj = vec![0u32; n];
        for c in self.join_preds {
            let locals: HashSet<usize> = c
                .referenced_tables()
                .into_iter()
                .filter_map(|r| idx_of.get(&r).copied())
                .collect();
            for &i in &locals {
                for &j in &locals {
                    if i != j {
                        adj[i] |= 1 << j;
                    }
                }
            }
        }

        // --- connected components (ascending lowest set bit) --------------
        let mut comps: Vec<u32> = Vec::new();
        let mut seen = 0u32;
        for i in 0..n {
            if seen & (1 << i) != 0 {
                continue;
            }
            let mut m = 1u32 << i;
            loop {
                let grow = mask_neighbors(m, &adj) & !m;
                if grow == 0 {
                    break;
                }
                m |= grow;
            }
            seen |= m;
            comps.push(m);
        }

        // --- per-component memo over connected subsets ---------------------
        let mut memo: HashMap<u32, Partial> = HashMap::new();
        let mut folded: Option<Partial> = None;
        for &comp in &comps {
            // leaves
            for i in 0..n {
                if comp & (1 << i) == 0 {
                    continue;
                }
                if !self.charge_memo_entry() {
                    return self.bushy_degrade(memo_entries, memo_hits, pairs);
                }
                memo_entries += 1;
                let p = self.standalone(&self.items[i]).ok_or_else(|| {
                    Error::plan("bushy enumeration: item cannot stand alone")
                })?;
                memo.insert(1 << i, p);
            }
            let csize = comp.count_ones() as usize;
            if csize >= 2 {
                // all submasks of the component, bucketed by size and
                // visited in ascending numeric order within each size
                let mut by_size: Vec<Vec<u32>> = vec![Vec::new(); csize + 1];
                let mut s = comp;
                loop {
                    by_size[s.count_ones() as usize].push(s);
                    if s == 0 {
                        break;
                    }
                    s = (s - 1) & comp;
                }
                for v in &mut by_size {
                    v.sort_unstable();
                }
                for size in 2..=csize {
                    for &mask in &by_size[size] {
                        self.opt.governor.check_interrupt()?;
                        if !mask_is_connected(mask, &adj) {
                            continue;
                        }
                        if !self.charge_memo_entry() {
                            return self.bushy_degrade(memo_entries, memo_hits, pairs);
                        }
                        memo_entries += 1;
                        let mut best: Option<Partial> = None;
                        // every proper partition (s1, mask \ s1), both
                        // orientations via the full submask sweep
                        let mut subs: Vec<u32> = Vec::new();
                        let mut s1 = (mask - 1) & mask;
                        while s1 != 0 {
                            subs.push(s1);
                            s1 = (s1 - 1) & mask;
                        }
                        subs.sort_unstable();
                        for s1 in subs {
                            let s2 = mask & !s1;
                            // a join edge must connect the halves
                            // (cross-products only between components)
                            if mask_neighbors(s1, &adj) & s2 == 0 {
                                continue;
                            }
                            let (Some(l), Some(r)) = (memo.get(&s1), memo.get(&s2)) else {
                                continue;
                            };
                            memo_hits += 2;
                            if let Some(b) = self.budget {
                                // §3.4.1 cost cut-off prunes this pair
                                if l.cost > b || r.cost > b {
                                    continue;
                                }
                            }
                            pairs += 1;
                            if let Some(cand) = self.join_pair(l, r)? {
                                if best
                                    .as_ref()
                                    .map(|b| cand.cost.total_cmp(&b.cost).is_lt())
                                    .unwrap_or(true)
                                {
                                    best = Some(cand);
                                }
                            }
                        }
                        if let Some(b) = best {
                            memo.insert(mask, b);
                        }
                    }
                }
            }
            let comp_best = match memo.get(&comp) {
                Some(p) => p.clone(),
                // with a budget the only way to lose the full-component
                // entry is the cut-off prune above
                None if self.budget.is_some() => return Err(Error::plan(COST_CUTOFF)),
                None => {
                    return Err(Error::plan(
                        "bushy join enumeration found no complete plan",
                    ))
                }
            };
            folded = Some(match folded {
                None => comp_best,
                Some(acc) => {
                    // deterministic cross-product between components: no
                    // join edge exists, so join_pair yields the block-NL
                    // candidate with an empty predicate set
                    pairs += 1;
                    self.join_pair(&acc, &comp_best)?.ok_or_else(|| {
                        Error::plan("bushy enumeration: cross-product produced no plan")
                    })?
                }
            });
        }
        let fin = folded.expect("bushy enumeration requires at least one item");
        if let Some(b) = self.budget {
            if fin.cost > b {
                return Err(Error::plan(COST_CUTOFF));
            }
        }
        self.opt.tracer.emit(|| TraceEvent::JoinEnumEnd {
            block: self.block.to_string(),
            memo_entries,
            memo_hits,
            pairs,
            degraded: false,
        });
        Ok((fin.node, fin.cost, fin.rows))
    }

    /// Abandons a budget-exhausted bushy enumeration: emits the
    /// degraded end event and re-plans the whole block greedily (the
    /// greedy pass is O(n²) extends — cheap next to the memo).
    fn bushy_degrade(
        &self,
        memo_entries: usize,
        memo_hits: usize,
        pairs: usize,
    ) -> Result<(PlanNode, f64, f64)> {
        self.opt.tracer.emit(|| TraceEvent::JoinEnumEnd {
            block: self.block.to_string(),
            memo_entries,
            memo_hits,
            pairs,
            degraded: true,
        });
        self.enumerate_greedy()
    }

    /// Joins two disjoint sub-plans — the generalization of [`Self::extend`]
    /// to composite right inputs, with identical cost formulas so bushy
    /// and left-deep plans compete on one scale. Join conjuncts that
    /// cross the two sides become the join predicate: equalities are
    /// oriented so the left expression references only `l` and the right
    /// expression only `r`, everything else is residual. Candidates
    /// mirror `extend`: hash (build right, probe left), merge, block
    /// nested loop (always valid — the cross-product fallback), and
    /// index NL when the right side is a single base item.
    fn join_pair(&self, l: &Partial, r: &Partial) -> Result<Option<Partial>> {
        let mut scope = l.refs.clone();
        scope.extend(r.refs.iter().copied());
        let mut applicable: Vec<QExpr> = Vec::new();
        for c in self.join_preds {
            let locals: HashSet<RefId> = c
                .referenced_tables()
                .into_iter()
                .filter(|x| self.est.rels.contains_key(x))
                .collect();
            if locals.is_subset(&scope)
                && locals.iter().any(|x| l.refs.contains(x))
                && locals.iter().any(|x| r.refs.contains(x))
            {
                // conjuncts local to one side were already applied when
                // that side's subset was memoized
                applicable.push(c.clone());
            }
        }

        let mut equi: Vec<(QExpr, QExpr)> = Vec::new();
        let mut residual: Vec<QExpr> = Vec::new();
        for c in &applicable {
            let mut placed = false;
            if let Some((a, b)) = c.as_equality() {
                let arefs = a.referenced_tables();
                let brefs = b.referenced_tables();
                let on_side = |refs: &HashSet<RefId>, side: &HashSet<RefId>| {
                    refs.iter()
                        .all(|x| side.contains(x) || !self.est.rels.contains_key(x))
                };
                let a_nonempty = !arefs.is_empty();
                let b_nonempty = !brefs.is_empty();
                if on_side(&arefs, &l.refs) && on_side(&brefs, &r.refs) && a_nonempty && b_nonempty
                {
                    equi.push((a.clone(), b.clone()));
                    placed = true;
                } else if on_side(&arefs, &r.refs)
                    && on_side(&brefs, &l.refs)
                    && a_nonempty
                    && b_nonempty
                {
                    equi.push((b.clone(), a.clone()));
                    placed = true;
                }
            }
            if !placed {
                residual.push(c.clone());
            }
        }

        let mut sel = 1.0;
        for c in &applicable {
            sel *= self.est.selectivity(c);
        }
        let out_rows = (l.rows * r.rows * sel).max(0.0);
        let kind = PlanJoinKind::Inner; // bushy tier is all-inner by gate

        let mut candidates: Vec<(PlanNode, f64)> = Vec::new();
        // hash join: build the right sub-plan, probe the left
        if self.opt.config.enable_hash_join && !equi.is_empty() {
            let cost = l.cost
                + r.cost
                + r.rows * weights::HASH_BUILD
                + l.rows * weights::HASH_PROBE
                + out_rows * residual.len() as f64 * weights::PRED
                + out_rows * weights::ROW;
            candidates.push((
                PlanNode::Join {
                    left: Box::new(l.node.clone()),
                    right: Box::new(r.node.clone()),
                    kind,
                    method: JoinMethod::Hash,
                    equi: equi.clone(),
                    residual: residual.clone(),
                    lateral: false,
                    rows: out_rows,
                },
                cost,
            ));
        }
        // merge join
        if self.opt.config.enable_merge_join && !equi.is_empty() {
            let ln = l.rows.max(2.0);
            let rn = r.rows.max(2.0);
            let cost = l.cost
                + r.cost
                + weights::SORT * (ln * ln.log2() + rn * rn.log2())
                + (l.rows + r.rows) * weights::ROW
                + out_rows * weights::ROW;
            candidates.push((
                PlanNode::Join {
                    left: Box::new(l.node.clone()),
                    right: Box::new(r.node.clone()),
                    kind,
                    method: JoinMethod::Merge,
                    equi: equi.clone(),
                    residual: residual.clone(),
                    lateral: false,
                    rows: out_rows,
                },
                cost,
            ));
        }
        // block nested loop: always valid, and the only candidate for a
        // predicate-less cross product
        {
            let pred_count = (equi.len() + residual.len()).max(1) as f64;
            let cost = l.cost
                + r.cost
                + l.rows * r.rows * pred_count * weights::PRED
                + out_rows * weights::ROW;
            candidates.push((
                PlanNode::Join {
                    left: Box::new(l.node.clone()),
                    right: Box::new(r.node.clone()),
                    kind,
                    method: JoinMethod::NestedLoop,
                    equi: equi.clone(),
                    residual: residual.clone(),
                    lateral: false,
                    rows: out_rows,
                },
                cost,
            ));
        }
        // index nested loop: only when the right side is a single base
        // item (probing a composite sub-plan per left row has no index)
        if self.opt.config.enable_index_nl && !equi.is_empty() && r.refs.len() == 1 {
            let rref = *r.refs.iter().next().unwrap();
            let item = self.items.iter().find(|it| it.refid == rref);
            if let Some(item) = item {
                if let ItemKind::Base(tid) = &item.kind {
                    let local_preds = self
                        .table_preds
                        .get(&rref)
                        .cloned()
                        .unwrap_or_default();
                    let (pnode, pcost, _prows) =
                        self.best_base_scan(item, *tid, &local_preds, &equi);
                    if matches!(
                        pnode,
                        PlanNode::ScanBase {
                            access: AccessPath::IndexEq { .. },
                            ..
                        } | PlanNode::ScanBase {
                            access: AccessPath::IndexRange { .. },
                            ..
                        }
                    ) {
                        let cost = l.cost
                            + l.rows * pcost
                            + l.rows * weights::HASH_PROBE * 0.1
                            + out_rows * weights::ROW;
                        candidates.push((
                            PlanNode::Join {
                                left: Box::new(l.node.clone()),
                                right: Box::new(pnode),
                                kind,
                                method: JoinMethod::NestedLoop,
                                equi: equi.clone(),
                                residual: residual.clone(),
                                lateral: true,
                                rows: out_rows,
                            },
                            cost,
                        ));
                    }
                }
            }
        }

        let Some((node, cost)) = candidates.into_iter().min_by(|a, b| a.1.total_cmp(&b.1)) else {
            return Ok(None);
        };
        Ok(Some(Partial {
            node,
            cost,
            rows: out_rows,
            refs: scope,
        }))
    }

    /// Greedy fallback for very wide blocks: start from the cheapest
    /// driving table, repeatedly add the extension with minimal cost.
    fn enumerate_greedy(&self) -> Result<(PlanNode, f64, f64)> {
        let n = self.items.len();
        let mut included = vec![false; n];
        // pick cheapest valid start
        let mut start: Option<(usize, Partial)> = None;
        for (i, item) in self.items.iter().enumerate() {
            if !item.join.is_inner() || !item.deps.is_empty() {
                continue;
            }
            if let Some(p) = self.standalone(item) {
                if start
                    .as_ref()
                    .map(|(_, s)| cost_lt(p.cost, s.cost))
                    .unwrap_or(true)
                {
                    start = Some((i, p));
                }
            }
        }
        let (i0, p0) = start.ok_or_else(|| Error::plan("no valid driving table"))?;
        included[i0] = true;
        let mut current = Some(p0);
        for _ in 1..n {
            let cur = current.take().unwrap();
            let mut bestc: Option<(usize, Partial)> = None;
            for (i, item) in self.items.iter().enumerate() {
                if included[i] || !item.deps.iter().all(|d| cur.refs.contains(d)) {
                    continue;
                }
                if let Some(cand) = self.extend(&cur, item)? {
                    if bestc
                        .as_ref()
                        .map(|(_, b)| cost_lt(cand.cost, b.cost))
                        .unwrap_or(true)
                    {
                        bestc = Some((i, cand));
                    }
                }
            }
            let (i, p) = match bestc {
                Some(x) => x,
                None => {
                    // No remaining item has its ordering dependencies in
                    // scope (a dependency cycle among annotated items).
                    // Connect the stuck remainder deterministically
                    // instead of failing the statement: the lowest-index
                    // remaining item whose ON conjuncts are satisfiable
                    // once it joins (preferring one whose references are
                    // fully in scope), attached as a plain extension —
                    // with no shared columns this costs out as a
                    // cross-product via the block-NL candidate.
                    let pick = (0..n)
                        .filter(|&i| !included[i])
                        .find(|&i| {
                            let it = &self.items[i];
                            it.join.on_conjuncts().iter().all(|c| {
                                c.referenced_tables().iter().all(|x| {
                                    *x == it.refid
                                        || cur.refs.contains(x)
                                        || !self.est.rels.contains_key(x)
                                })
                            })
                        })
                        .or_else(|| (0..n).find(|&i| !included[i]))
                        .expect("greedy loop ran past all items");
                    let cand = self.extend(&cur, &self.items[pick])?.ok_or_else(|| {
                        Error::plan("greedy join enumeration got stuck")
                    })?;
                    (pick, cand)
                }
            };
            included[i] = true;
            current = Some(p);
        }
        let fin = current.unwrap();
        Ok((fin.node, fin.cost, fin.rows))
    }

    /// Cost of scanning an item on its own (driving position).
    fn standalone(&self, item: &Item) -> Option<Partial> {
        let preds = self
            .table_preds
            .get(&item.refid)
            .cloned()
            .unwrap_or_default();
        match &item.kind {
            ItemKind::Base(tid) => {
                let (node, cost, rows) = self.best_base_scan(item, *tid, &preds, &[]);
                Some(Partial {
                    node,
                    cost,
                    rows,
                    refs: std::iter::once(item.refid).collect(),
                })
            }
            ItemKind::View(b) => {
                if item.correlated {
                    return None; // lateral views cannot drive
                }
                let p = item.plan.as_ref().unwrap();
                let mut sel = 1.0;
                for c in &preds {
                    sel *= self.est.selectivity(c);
                }
                let rows = (p.rows * sel).max(0.0);
                let cost = p.cost + p.rows * preds.len() as f64 * weights::PRED;
                Some(Partial {
                    node: PlanNode::ScanView {
                        block: *b,
                        refid: item.refid,
                        width: item.width,
                        plan: p.clone(),
                        correlated: false,
                        filter: preds,
                        rows,
                    },
                    cost,
                    rows,
                    refs: std::iter::once(item.refid).collect(),
                })
            }
        }
    }

    /// Observed output cardinality for a base-table scan, when the
    /// optimizer has a feedback source and the scan's filter is
    /// feedback-eligible (see [`crate::est::scan_feedback_key`]).
    /// Clamped finite-and-nonnegative before re-entering the cost model;
    /// applications are traced as `FEEDBACK APPLIED`.
    fn observed_scan_rows(
        &self,
        tid: TableId,
        refid: RefId,
        preds: &[QExpr],
        est_rows: f64,
    ) -> Option<f64> {
        let fb = self.opt.feedback?;
        let key = crate::est::scan_feedback_key(self.opt.catalog, tid, refid, preds, &[])?;
        let observed = crate::est::clamp_feedback_rows(fb.observed_rows(&key)?)?;
        self.opt.tracer.emit(|| TraceEvent::FeedbackApplied {
            table: self
                .opt
                .catalog
                .table(tid)
                .map(|t| t.name.clone())
                .unwrap_or_else(|_| format!("#{}", tid.0)),
            pred: key.pred.clone(),
            observed,
            estimate: est_rows,
        });
        Some(observed)
    }

    /// Best access path for a base table given bound predicates
    /// (`bound_equi` are additional equality pairs whose "outer" side is
    /// available at probe time — used for index nested loops).
    fn best_base_scan(
        &self,
        item: &Item,
        tid: TableId,
        preds: &[QExpr],
        bound_equi: &[(QExpr, QExpr)],
    ) -> (PlanNode, f64, f64) {
        let rows = item.base_rows;
        let mut sel = 1.0;
        for c in preds {
            sel *= self.est.selectivity(c);
        }
        for (l, r) in bound_equi {
            sel *= self.est.selectivity(&QExpr::eq((*l).clone(), (*r).clone()));
        }
        let mut out_rows = (rows * sel).max(0.0);
        // cardinality feedback: a previously observed actual for this
        // exact (table, predicate, bands) beats any static guess. Probe
        // keys are value-free only for the pure local-filter shape, so
        // index-NL probes (bound_equi) keep their static estimate.
        if bound_equi.is_empty() {
            if let Some(observed) = self.observed_scan_rows(tid, item.refid, preds, out_rows) {
                out_rows = observed;
            }
        }
        let expensive: f64 = preds.iter().map(expensive_cost).sum();

        // full scan baseline
        let full_cost = rows * weights::ROW
            + rows * (preds.len() + bound_equi.len()) as f64 * weights::PRED
            + rows * expensive;
        let mut filter: Vec<QExpr> = preds.to_vec();
        for (l, r) in bound_equi {
            filter.push(QExpr::eq(l.clone(), r.clone()));
        }
        let mut best = (
            PlanNode::ScanBase {
                table: tid,
                refid: item.refid,
                width: item.width,
                access: AccessPath::FullScan,
                filter: filter.clone(),
                rows: out_rows,
            },
            full_cost,
            out_rows,
        );

        if !self.opt.config.enable_index_nl {
            return best;
        }

        // candidate equality keys: col = bound-expr conjuncts
        let mut eq_cols: Vec<(usize, QExpr)> = Vec::new();
        let mut collect_eq = |l: &QExpr, r: &QExpr| {
            if let QExpr::Col { table, column } = l {
                if *table == item.refid && self.est.is_bound(r) {
                    eq_cols.push((*column, r.clone()));
                }
            }
        };
        for c in preds.iter() {
            if let Some((l, r)) = c.as_equality() {
                collect_eq(l, r);
                collect_eq(r, l);
            }
        }
        for (l, r) in bound_equi {
            // by construction `r` is the local side in best_base_scan
            // callers pass (outer_expr, local_col); normalize both ways
            if let Some(()) = Some(()) {
                if let QExpr::Col { table, column } = r {
                    if *table == item.refid {
                        eq_cols.push((*column, l.clone()));
                    }
                }
                if let QExpr::Col { table, column } = l {
                    if *table == item.refid {
                        eq_cols.push((*column, r.clone()));
                    }
                }
            }
        }

        if !eq_cols.is_empty() {
            let cols: Vec<usize> = eq_cols.iter().map(|(c, _)| *c).collect();
            if let Some(ix) = self.opt.catalog.best_index_for(tid, &cols) {
                // how many leading index columns are matched
                let mut key = Vec::new();
                for ic in &ix.columns {
                    match eq_cols.iter().find(|(c, _)| c == ic) {
                        Some((_, e)) => key.push(e.clone()),
                        None => break,
                    }
                }
                if !key.is_empty() {
                    let mut key_sel = 1.0;
                    for (i, _) in key.iter().enumerate() {
                        let col = ix.columns[i];
                        let ndv = self
                            .est
                            .col_info(item.refid, col)
                            .map(|ci| ci.ndv)
                            .unwrap_or((rows * DEFAULT_NDV_FRAC).max(1.0));
                        key_sel *= 1.0 / ndv;
                    }
                    let matched = (rows * key_sel).max(0.0);
                    // residual predicates still evaluated per fetched row
                    let cost = weights::INDEX_PROBE
                        + matched * weights::INDEX_FETCH
                        + matched * filter.len() as f64 * weights::PRED
                        + matched * expensive;
                    if cost_lt(cost, best.1) {
                        best = (
                            PlanNode::ScanBase {
                                table: tid,
                                refid: item.refid,
                                width: item.width,
                                access: AccessPath::IndexEq { index: ix.id, key },
                                filter: filter.clone(),
                                rows: out_rows,
                            },
                            cost,
                            out_rows,
                        );
                    }
                }
            }
        }

        // range access on a leading index column
        for c in preds {
            if let QExpr::Bin { op, left, right } = c {
                use cbqt_qgm::BinOp::*;
                if !matches!(op, Lt | LtEq | Gt | GtEq) {
                    continue;
                }
                let (col_side, bound_side, col_is_left) = match (&**left, &**right) {
                    (QExpr::Col { table, column }, b)
                        if *table == item.refid && self.est.is_bound(b) =>
                    {
                        ((*table, *column), b, true)
                    }
                    (b, QExpr::Col { table, column })
                        if *table == item.refid && self.est.is_bound(b) =>
                    {
                        ((*table, *column), b, false)
                    }
                    _ => continue,
                };
                let Some(ix) = self
                    .opt
                    .catalog
                    .indexes_on(tid)
                    .find(|ix| ix.columns.first() == Some(&col_side.1))
                else {
                    continue;
                };
                let rsel = self.est.selectivity(c).clamp(0.0, 1.0);
                let matched = rows * rsel;
                let cost = weights::INDEX_PROBE
                    + matched * weights::INDEX_FETCH
                    + matched * filter.len() as f64 * weights::PRED
                    + matched * expensive;
                if cost_lt(cost, best.1) {
                    // col < bound  => hi bound;  col > bound => lo bound
                    let inclusive = matches!(op, LtEq | GtEq);
                    let is_upper = matches!(op, Lt | LtEq) == col_is_left;
                    let (lo, hi) = if is_upper {
                        (None, Some((bound_side.clone(), inclusive)))
                    } else {
                        (Some((bound_side.clone(), inclusive)), None)
                    };
                    best = (
                        PlanNode::ScanBase {
                            table: tid,
                            refid: item.refid,
                            width: item.width,
                            access: AccessPath::IndexRange {
                                index: ix.id,
                                lo,
                                hi,
                            },
                            filter: filter.clone(),
                            rows: out_rows,
                        },
                        cost,
                        out_rows,
                    );
                }
            }
        }
        best
    }

    /// Extends a left prefix with `item`, choosing the best join method.
    fn extend(&self, left: &Partial, item: &Item) -> Result<Option<Partial>> {
        // gather join conjuncts now applicable
        let mut applicable: Vec<QExpr> = Vec::new();
        let mut scope = left.refs.clone();
        scope.insert(item.refid);
        for c in self.join_preds {
            let locals: HashSet<RefId> = c
                .referenced_tables()
                .into_iter()
                .filter(|r| self.est.rels.contains_key(r))
                .collect();
            if locals.contains(&item.refid) && locals.is_subset(&scope) {
                applicable.push(c.clone());
            }
        }
        for c in item.join.on_conjuncts() {
            applicable.push(c.clone());
        }
        let local_preds = self
            .table_preds
            .get(&item.refid)
            .cloned()
            .unwrap_or_default();

        // split applicable into equi (left side vs item side) and residual
        let mut equi: Vec<(QExpr, QExpr)> = Vec::new();
        let mut residual: Vec<QExpr> = Vec::new();
        for c in &applicable {
            let mut placed = false;
            if let Some((l, r)) = c.as_equality() {
                let lrefs = l.referenced_tables();
                let rrefs = r.referenced_tables();
                let l_on_left = lrefs
                    .iter()
                    .all(|x| left.refs.contains(x) || !self.est.rels.contains_key(x));
                let r_on_item = rrefs
                    .iter()
                    .all(|x| *x == item.refid || !self.est.rels.contains_key(x));
                let l_on_item = lrefs
                    .iter()
                    .all(|x| *x == item.refid || !self.est.rels.contains_key(x));
                let r_on_left = rrefs
                    .iter()
                    .all(|x| left.refs.contains(x) || !self.est.rels.contains_key(x));
                // require each side to actually touch its relation
                let l_nonempty = !lrefs.is_empty();
                let r_nonempty = !rrefs.is_empty();
                if l_on_left && r_on_item && l_nonempty && r_nonempty {
                    equi.push((l.clone(), r.clone()));
                    placed = true;
                } else if l_on_item && r_on_left && l_nonempty && r_nonempty {
                    equi.push((r.clone(), l.clone()));
                    placed = true;
                }
            }
            if !placed {
                residual.push(c.clone());
            }
        }

        // joint selectivity of all applied conjuncts
        let mut sel = 1.0;
        for c in &applicable {
            sel *= self.est.selectivity(c);
        }
        let mut local_sel = 1.0;
        for c in &local_preds {
            local_sel *= self.est.selectivity(c);
        }
        let mut item_rows = (item.base_rows * local_sel).max(0.0);
        // joins size their inputs with the same observed cardinalities
        // the scan itself uses, so a feedback correction propagates into
        // join-method and join-order choices
        if let ItemKind::Base(tid) = &item.kind {
            if let Some(observed) =
                self.observed_scan_rows(*tid, item.refid, &local_preds, item_rows)
            {
                item_rows = observed;
            }
        }
        let kind = match &item.join {
            JoinInfo::Inner | JoinInfo::Lateral { semi: false } => PlanJoinKind::Inner,
            JoinInfo::Lateral { semi: true } => PlanJoinKind::Semi,
            JoinInfo::Semi { .. } => PlanJoinKind::Semi,
            JoinInfo::Anti { null_aware, .. } => PlanJoinKind::Anti {
                null_aware: *null_aware,
            },
            JoinInfo::LeftOuter { .. } => PlanJoinKind::LeftOuter,
        };
        let inner_rows = (left.rows * item_rows * sel).max(0.0);
        // semijoin match probability: containment assumption
        let semi_sel = match (&equi.first(), item_rows) {
            (Some((l, r)), ir) if ir > 0.0 => {
                let lndv = self.col_ndv(l).unwrap_or(left.rows.max(1.0));
                let rndv = self.col_ndv(r).unwrap_or(ir);
                (rndv / lndv).clamp(0.01, 1.0)
            }
            _ => 0.7,
        };
        let out_rows = match kind {
            PlanJoinKind::Inner => inner_rows,
            PlanJoinKind::Semi => (left.rows * semi_sel).max(0.0),
            PlanJoinKind::Anti { .. } => (left.rows * (1.0 - semi_sel)).max(left.rows * 0.01),
            PlanJoinKind::LeftOuter => inner_rows.max(left.rows),
        };

        let mut candidates: Vec<(PlanNode, f64)> = Vec::new();

        match &item.kind {
            ItemKind::View(b) if item.correlated => {
                // lateral view: per-left-row execution with binding cache
                let p = item.plan.as_ref().unwrap();
                let corr_cols: Vec<QExpr> = item.deps.iter().map(|r| QExpr::col(*r, 0)).collect();
                let _ = corr_cols;
                let distinct_bindings = {
                    // distinct combinations of the left columns the view
                    // depends on — approximated via their NDVs
                    let mut prod = 1.0_f64;
                    for r in &item.deps {
                        if let Some(rs) = self.est.rels.get(r) {
                            prod = (prod * rs.rows.max(1.0)).min(1e15);
                        }
                    }
                    prod
                };
                let eff = left.rows.min(distinct_bindings).max(1.0);
                let cost = left.cost
                    + eff * p.cost
                    + left.rows * weights::HASH_PROBE
                    + inner_rows * weights::ROW;
                let node = PlanNode::Join {
                    left: Box::new(left.node.clone()),
                    right: Box::new(PlanNode::ScanView {
                        block: *b,
                        refid: item.refid,
                        width: item.width,
                        plan: p.clone(),
                        correlated: true,
                        filter: local_preds.clone(),
                        rows: (p.rows * local_sel).max(0.0),
                    }),
                    kind,
                    method: JoinMethod::NestedLoop,
                    equi: equi.clone(),
                    residual: residual.clone(),
                    lateral: true,
                    rows: out_rows,
                };
                candidates.push((node, cost));
            }
            _ => {
                // materialized right side for hash / merge / block-NL
                let right_standalone = match &item.kind {
                    ItemKind::Base(tid) => Some(self.best_base_scan(item, *tid, &local_preds, &[])),
                    ItemKind::View(b) => {
                        let p = item.plan.as_ref().unwrap();
                        let cost = p.cost + p.rows * local_preds.len() as f64 * weights::PRED;
                        Some((
                            PlanNode::ScanView {
                                block: *b,
                                refid: item.refid,
                                width: item.width,
                                plan: p.clone(),
                                correlated: false,
                                filter: local_preds.clone(),
                                rows: (p.rows * local_sel).max(0.0),
                            },
                            cost,
                            (p.rows * local_sel).max(0.0),
                        ))
                    }
                };

                if let Some((rnode, rcost, rrows)) = right_standalone {
                    // hash join
                    if self.opt.config.enable_hash_join && !equi.is_empty() {
                        let cost = left.cost
                            + rcost
                            + rrows * weights::HASH_BUILD
                            + left.rows * weights::HASH_PROBE
                            + inner_rows * residual.len() as f64 * weights::PRED
                            + out_rows * weights::ROW;
                        candidates.push((
                            PlanNode::Join {
                                left: Box::new(left.node.clone()),
                                right: Box::new(rnode.clone()),
                                kind,
                                method: JoinMethod::Hash,
                                equi: equi.clone(),
                                residual: residual.clone(),
                                lateral: false,
                                rows: out_rows,
                            },
                            cost,
                        ));
                    }
                    // merge join (inner only in the executor)
                    if self.opt.config.enable_merge_join
                        && !equi.is_empty()
                        && kind == PlanJoinKind::Inner
                    {
                        let ln = left.rows.max(2.0);
                        let rn = rrows.max(2.0);
                        let cost = left.cost
                            + rcost
                            + weights::SORT * (ln * ln.log2() + rn * rn.log2())
                            + (left.rows + rrows) * weights::ROW
                            + out_rows * weights::ROW;
                        candidates.push((
                            PlanNode::Join {
                                left: Box::new(left.node.clone()),
                                right: Box::new(rnode.clone()),
                                kind,
                                method: JoinMethod::Merge,
                                equi: equi.clone(),
                                residual: residual.clone(),
                                lateral: false,
                                rows: out_rows,
                            },
                            cost,
                        ));
                    }
                    // block nested loop over the materialized right side
                    {
                        let pred_count = (equi.len() + residual.len()).max(1) as f64;
                        // stop-at-first-match for semi/anti + caching on
                        // duplicate left keys (§2.1.1)
                        let probe_fraction = match kind {
                            PlanJoinKind::Semi | PlanJoinKind::Anti { .. } => 0.5,
                            _ => 1.0,
                        };
                        let effective_left = match kind {
                            PlanJoinKind::Semi | PlanJoinKind::Anti { .. } => {
                                let ndv = equi
                                    .first()
                                    .and_then(|(l, _)| self.col_ndv(l))
                                    .unwrap_or(left.rows);
                                left.rows.min(ndv)
                            }
                            _ => left.rows,
                        };
                        let cost = left.cost
                            + rcost
                            + effective_left * rrows * pred_count * weights::PRED * probe_fraction
                            + out_rows * weights::ROW;
                        candidates.push((
                            PlanNode::Join {
                                left: Box::new(left.node.clone()),
                                right: Box::new(rnode),
                                kind,
                                method: JoinMethod::NestedLoop,
                                equi: equi.clone(),
                                residual: residual.clone(),
                                lateral: false,
                                rows: out_rows,
                            },
                            cost,
                        ));
                    }
                }

                // index nested loop: re-scan the base item per left row
                // using the equi columns as probe keys
                if let ItemKind::Base(tid) = &item.kind {
                    if self.opt.config.enable_index_nl && !equi.is_empty() {
                        let bound: Vec<(QExpr, QExpr)> =
                            equi.iter().map(|(l, r)| (l.clone(), r.clone())).collect();
                        let (pnode, pcost, prows) =
                            self.best_base_scan(item, *tid, &local_preds, &bound);
                        // only worthwhile when an index path was chosen
                        if matches!(
                            pnode,
                            PlanNode::ScanBase {
                                access: AccessPath::IndexEq { .. },
                                ..
                            } | PlanNode::ScanBase {
                                access: AccessPath::IndexRange { .. },
                                ..
                            }
                        ) {
                            let effective_left = match kind {
                                PlanJoinKind::Semi | PlanJoinKind::Anti { .. } => {
                                    let ndv = equi
                                        .first()
                                        .and_then(|(l, _)| self.col_ndv(l))
                                        .unwrap_or(left.rows);
                                    left.rows.min(ndv)
                                }
                                _ => left.rows,
                            };
                            let cost = left.cost
                                + effective_left * pcost
                                + left.rows * weights::HASH_PROBE * 0.1
                                + out_rows * weights::ROW;
                            let _ = prows;
                            candidates.push((
                                PlanNode::Join {
                                    left: Box::new(left.node.clone()),
                                    right: Box::new(pnode),
                                    kind,
                                    method: JoinMethod::NestedLoop,
                                    equi: equi.clone(),
                                    residual: residual.clone(),
                                    lateral: true,
                                    rows: out_rows,
                                },
                                cost,
                            ));
                        }
                    }
                }
            }
        }

        let Some((node, cost)) = candidates.into_iter().min_by(|a, b| a.1.total_cmp(&b.1)) else {
            return Ok(None);
        };
        Ok(Some(Partial {
            node,
            cost,
            rows: out_rows,
            refs: scope,
        }))
    }

    fn col_ndv(&self, e: &QExpr) -> Option<f64> {
        match e {
            QExpr::Col { table, column } => self.est.rels.get(table).map(|rs| rs.ndv_of(*column)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbqt_catalog::{Column, ColumnStats, Constraint, ForeignKey};
    use cbqt_common::DataType;
    use cbqt_qgm::build_query_tree;
    use cbqt_sql::parse_query;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let icol = |n: &str| Column {
            name: n.into(),
            data_type: DataType::Int,
            not_null: false,
        };
        let dept = cat
            .add_table(
                "departments",
                vec![icol("dept_id"), icol("loc_id")],
                vec![Constraint::PrimaryKey(vec![0])],
            )
            .unwrap();
        let emp = cat
            .add_table(
                "employees",
                vec![icol("emp_id"), icol("dept_id"), icol("salary")],
                vec![
                    Constraint::PrimaryKey(vec![0]),
                    Constraint::ForeignKey(ForeignKey {
                        columns: vec![1],
                        parent: dept,
                        parent_columns: vec![0],
                    }),
                ],
            )
            .unwrap();
        // statistics: 100 departments, 10_000 employees
        {
            let t = cat.table_mut(dept).unwrap();
            t.stats.analyzed = true;
            t.stats.rows = 100;
            t.stats.columns = vec![
                ColumnStats {
                    ndv: 100,
                    nulls: 0,
                    min: Some(Value::Int(0)),
                    max: Some(Value::Int(99)),
                    histogram: None,
                },
                ColumnStats {
                    ndv: 10,
                    nulls: 0,
                    min: Some(Value::Int(0)),
                    max: Some(Value::Int(9)),
                    histogram: None,
                },
            ];
        }
        {
            let t = cat.table_mut(emp).unwrap();
            t.stats.analyzed = true;
            t.stats.rows = 10_000;
            t.stats.columns = vec![
                ColumnStats {
                    ndv: 10_000,
                    nulls: 0,
                    min: Some(Value::Int(0)),
                    max: Some(Value::Int(9999)),
                    histogram: None,
                },
                ColumnStats {
                    ndv: 100,
                    nulls: 0,
                    min: Some(Value::Int(0)),
                    max: Some(Value::Int(99)),
                    histogram: None,
                },
                ColumnStats {
                    ndv: 5_000,
                    nulls: 0,
                    min: Some(Value::Int(0)),
                    max: Some(Value::Int(200_000)),
                    histogram: None,
                },
            ];
        }
        cat.add_index("pk_emp", emp, vec![0], true).unwrap();
        cat.add_index("i_emp_dept", emp, vec![1], false).unwrap();
        cat.add_index("pk_dept", dept, vec![0], true).unwrap();
        cat
    }

    fn plan(sql: &str) -> (BlockPlan, Catalog) {
        let cat = catalog();
        let tree = build_query_tree(&cat, &parse_query(sql).unwrap()).unwrap();
        let ann = CostAnnotations::new();
        let cache = SamplingCache::default();
        let mut opt = Optimizer::new(&cat, &ann, &cache);
        let p = opt.optimize(&tree, None).unwrap();
        (p, cat)
    }

    #[test]
    fn plans_single_table_scan() {
        let (p, _) = plan("SELECT emp_id FROM employees WHERE salary > 100000");
        let sp = p.as_select().unwrap();
        assert!(matches!(sp.join, PlanNode::ScanBase { .. }));
        assert!(p.rows > 0.0 && p.rows < 10_000.0);
    }

    #[test]
    fn equality_picks_index() {
        let (p, _) = plan("SELECT emp_id FROM employees WHERE emp_id = 5");
        let sp = p.as_select().unwrap();
        match &sp.join {
            PlanNode::ScanBase { access, .. } => {
                assert!(matches!(access, AccessPath::IndexEq { .. }), "{access:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(p.rows <= 2.0);
    }

    #[test]
    fn join_produces_two_leaf_plan() {
        let (p, _) =
            plan("SELECT e.emp_id FROM employees e, departments d WHERE e.dept_id = d.dept_id");
        let sp = p.as_select().unwrap();
        match &sp.join {
            PlanNode::Join { rows, .. } => {
                // FK join: ~10000 rows
                assert!(*rows > 5_000.0 && *rows < 20_000.0, "{rows}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(sp.layout.slots.len(), 2);
        // employees has 3 cols + rowid
        let total: usize = sp.layout.width;
        assert_eq!(total, 4 + 3);
    }

    #[test]
    fn small_probe_prefers_index_nl() {
        // one department's employees: driving from departments with an
        // index NL into employees should win over hashing 10k rows
        let (p, _) = plan(
            "SELECT e.emp_id FROM departments d, employees e \
             WHERE e.dept_id = d.dept_id AND d.dept_id = 42",
        );
        let sp = p.as_select().unwrap();
        match &sp.join {
            PlanNode::Join {
                method, lateral, ..
            } => {
                assert_eq!(*method, JoinMethod::NestedLoop);
                assert!(lateral);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn correlated_subquery_costed_with_tis() {
        let (p, _) = plan(
            "SELECT e1.emp_id FROM employees e1 WHERE e1.salary > \
             (SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e1.dept_id)",
        );
        let sp = p.as_select().unwrap();
        assert_eq!(sp.subplans.len(), 1);
        assert_eq!(sp.post_filter.len(), 1);
        // subplan itself must exist with nonzero cost
        assert!(sp.subplans[0].1.cost > 0.0);
        // TIS runs capped by ndv(dept_id)=100, so total cost is far less
        // than rows * subplan_cost
        let sub_cost = sp.subplans[0].1.cost;
        assert!(
            p.cost < 10_000.0 * sub_cost,
            "cost {} vs {}",
            p.cost,
            sub_cost
        );
    }

    #[test]
    fn semijoin_partial_order_respected() {
        // build a tree with a semi-annotated table manually
        let cat = catalog();
        let tree = build_query_tree(
            &cat,
            &parse_query(
                "SELECT d.dept_id FROM departments d WHERE EXISTS \
                 (SELECT 1 FROM employees e WHERE e.dept_id = d.dept_id)",
            )
            .unwrap(),
        )
        .unwrap();
        // (not unnested here — planner treats it as TIS filter)
        let ann = CostAnnotations::new();
        let cache = SamplingCache::default();
        let mut opt = Optimizer::new(&cat, &ann, &cache);
        let p = opt.optimize(&tree, None).unwrap();
        assert!(p.cost > 0.0);
    }

    #[test]
    fn annotation_reuse_counts() {
        let cat = catalog();
        let tree = build_query_tree(
            &cat,
            &parse_query("SELECT emp_id FROM employees WHERE salary > 10").unwrap(),
        )
        .unwrap();
        let ann = CostAnnotations::new();
        let cache = SamplingCache::default();
        let mut opt = Optimizer::new(&cat, &ann, &cache);
        opt.optimize(&tree, None).unwrap();
        assert_eq!(opt.stats.blocks_costed, 1);
        assert_eq!(opt.stats.annotation_hits, 0);
        // re-optimizing the equivalent tree hits the annotation
        let tree2 = build_query_tree(
            &cat,
            &parse_query("SELECT emp_id FROM employees WHERE salary > 10").unwrap(),
        )
        .unwrap();
        opt.optimize(&tree2, None).unwrap();
        assert_eq!(opt.stats.blocks_costed, 1);
        assert_eq!(opt.stats.annotation_hits, 1);
    }

    #[test]
    fn cost_cutoff_aborts() {
        let cat = catalog();
        let tree = build_query_tree(
            &cat,
            &parse_query(
                "SELECT e.emp_id FROM employees e, departments d WHERE e.dept_id = d.dept_id",
            )
            .unwrap(),
        )
        .unwrap();
        let ann = CostAnnotations::new();
        let cache = SamplingCache::default();
        let mut opt = Optimizer::new(&cat, &ann, &cache);
        opt.config.reuse_annotations = false;
        let err = opt.optimize(&tree, Some(1.0)).unwrap_err();
        assert!(is_cutoff(&err));
    }

    #[test]
    fn union_all_plan() {
        let (p, _) = plan("SELECT emp_id FROM employees UNION ALL SELECT dept_id FROM departments");
        match &p.root {
            PlanRoot::SetOp(s) => {
                assert_eq!(s.op, SetOp::UnionAll);
                assert_eq!(s.inputs.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!((p.rows - 10_100.0).abs() < 1.0);
    }

    #[test]
    fn group_by_cardinality() {
        let (p, _) = plan("SELECT dept_id, COUNT(*) FROM employees GROUP BY dept_id");
        assert!((p.rows - 100.0).abs() < 5.0, "{}", p.rows);
        let sp = p.as_select().unwrap();
        assert_eq!(sp.aggs.len(), 1);
    }

    #[test]
    fn rownum_limits_rows() {
        let (p, _) = plan("SELECT emp_id FROM employees WHERE rownum <= 10");
        assert!((p.rows - 10.0).abs() < 1e-6);
    }

    // --- enumerator tier selection ------------------------------------

    fn traced_plan_with(
        sql: &str,
        tweak: impl FnOnce(&mut Optimizer),
    ) -> (BlockPlan, OptimizerStats, Vec<TraceEvent>) {
        let cat = catalog();
        let tree = build_query_tree(&cat, &parse_query(sql).unwrap()).unwrap();
        let ann = CostAnnotations::new();
        let cache = SamplingCache::default();
        let buf = cbqt_common::TraceBuffer::new();
        let mut opt = Optimizer::new(&cat, &ann, &cache);
        opt.tracer = Tracer::new(&buf);
        tweak(&mut opt);
        let p = opt.optimize(&tree, None).unwrap();
        (p, opt.stats, buf.take())
    }

    fn has_enum_begin(events: &[TraceEvent]) -> bool {
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::JoinEnumBegin { .. }))
    }

    const TWO_TABLE: &str =
        "SELECT e.emp_id FROM employees e, departments d WHERE e.dept_id = d.dept_id";

    #[test]
    fn single_item_block_skips_bushy_tier() {
        let (_, stats, events) = traced_plan_with("SELECT emp_id FROM employees", |_| {});
        assert!(!has_enum_begin(&events));
        assert!(!stats.enum_degraded);
    }

    #[test]
    fn bushy_tier_fires_within_item_limit() {
        let (_, stats, events) = traced_plan_with(TWO_TABLE, |_| {});
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::JoinEnumBegin { items: 2, .. })),
            "{events:?}"
        );
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::JoinEnumEnd {
                degraded: false,
                ..
            }
        )));
        assert!(!stats.enum_degraded);
    }

    #[test]
    fn bushy_disabled_falls_back_to_left_deep_dp() {
        let (bushy, _, _) = traced_plan_with(TWO_TABLE, |_| {});
        let (dp, stats, events) = traced_plan_with(TWO_TABLE, |opt| {
            opt.config.bushy_max_items = 0;
        });
        assert!(!has_enum_begin(&events), "left-deep DP must not trace JOIN ENUM");
        assert!(!stats.enum_degraded);
        // two items: bushy and left-deep search the same space
        assert_eq!(bushy.cost.to_bits(), dp.cost.to_bits());
    }

    #[test]
    fn item_count_above_bushy_limit_uses_left_deep_dp() {
        let sql = "SELECT e1.emp_id FROM employees e1, employees e2, departments d \
                   WHERE e1.dept_id = d.dept_id AND e2.dept_id = d.dept_id";
        let (_, _, events) = traced_plan_with(sql, |opt| {
            opt.config.bushy_max_items = 2; // 3 items > limit
        });
        assert!(!has_enum_begin(&events));
        // raising the limit back turns the bushy tier on
        let (_, _, events) = traced_plan_with(sql, |_| {});
        assert!(has_enum_begin(&events));
    }

    #[test]
    fn bushy_never_costs_worse_than_left_deep() {
        let sql = "SELECT e1.emp_id FROM employees e1, employees e2, departments d \
                   WHERE e1.dept_id = d.dept_id AND e2.dept_id = d.dept_id";
        let (bushy, _, _) = traced_plan_with(sql, |_| {});
        let (dp, _, _) = traced_plan_with(sql, |opt| {
            opt.config.bushy_max_items = 0;
        });
        assert!(
            bushy.cost <= dp.cost,
            "bushy {} > left-deep {}",
            bushy.cost,
            dp.cost
        );
    }

    #[test]
    fn exhausted_search_drops_every_tier_to_greedy() {
        use cbqt_common::{CancelToken, ExecutionLimits};
        let limits = ExecutionLimits::none().with_optimizer_states(1);
        let governor = Governor::new(&limits, CancelToken::new());
        governor.charge_state(); // uses the only state
        governor.charge_state(); // trips the degraded flag
        assert!(governor.search_exhausted());
        let (p, stats, events) = traced_plan_with(TWO_TABLE, |opt| {
            opt.governor = governor.clone();
        });
        // greedy tier: no JOIN ENUM trace, but still a valid plan
        assert!(!has_enum_begin(&events));
        assert!(!stats.enum_degraded);
        assert!(p.cost > 0.0);
    }

    #[test]
    fn bushy_allowance_exhaustion_degrades_to_greedy() {
        use cbqt_common::{CancelToken, ExecutionLimits};
        // budget of 2 memo entries cannot even seed the two leaves plus
        // the pair, so the enumeration degrades mid-flight
        let limits = ExecutionLimits::none().with_optimizer_states(2);
        let governor = Governor::new(&limits, CancelToken::new());
        let (p, stats, events) = traced_plan_with(TWO_TABLE, |opt| {
            opt.governor = governor.clone();
        });
        assert!(stats.enum_degraded);
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::JoinEnumEnd { degraded: true, .. }
        )));
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::SearchDegraded { .. })),
            "{events:?}"
        );
        // the degraded greedy plan is still valid and executable
        assert!(p.cost > 0.0);
        // memo charges never touch the framework's shared state counter
        assert_eq!(governor.states_used(), 0);
        // the degradation is sticky on the governor (blocks cache publish)
        assert!(governor.optimizer_exhausted());
        // ... but does not force later blocks off the DP tiers
        assert!(!governor.search_exhausted());
    }

    #[test]
    fn greedy_completes_a_cyclic_dependency_graph() {
        // A crafted ordering-dependency cycle between two annotated
        // items — unreachable from parsed SQL today, but the greedy
        // fallback must finish with a deterministic cross-product
        // connection rather than erroring out mid-plan.
        fn count_scans(n: &PlanNode) -> usize {
            match n {
                PlanNode::Join { left, right, .. } => count_scans(left) + count_scans(right),
                PlanNode::ScanBase { .. } => 1,
                _ => 0,
            }
        }
        let mut cat = Catalog::new();
        let tid = cat
            .add_table(
                "t",
                vec![Column {
                    name: "x".into(),
                    data_type: cbqt_common::DataType::Int,
                    not_null: false,
                }],
                vec![],
            )
            .unwrap();
        let mk = |r: u32, join: JoinInfo, deps: &[u32]| Item {
            refid: RefId(r),
            alias: format!("t{r}"),
            kind: ItemKind::Base(tid),
            join,
            deps: deps.iter().map(|d| RefId(*d)).collect(),
            correlated: false,
            plan: None,
            base_rows: 10.0,
            width: 2,
        };
        let items = vec![
            mk(0, JoinInfo::Inner, &[]),
            mk(1, JoinInfo::Semi { on: vec![] }, &[2]),
            mk(2, JoinInfo::Semi { on: vec![] }, &[1]),
        ];
        let rels: HashMap<RefId, RelStats> = (0..3u32)
            .map(|r| {
                (
                    RefId(r),
                    RelStats {
                        rows: 10.0,
                        ndv: vec![10.0, 10.0],
                    },
                )
            })
            .collect();
        let base: HashMap<RefId, TableId> = (0..3u32).map(|r| (RefId(r), tid)).collect();
        let est = Estimator {
            catalog: &cat,
            rels: &rels,
            base: &base,
        };
        let ann = CostAnnotations::new();
        let cache = SamplingCache::default();
        let opt = Optimizer::new(&cat, &ann, &cache);
        let table_preds = HashMap::new();
        let join_preds: Vec<QExpr> = vec![];
        let run = || {
            let enumerator = JoinEnumerator {
                opt: &opt,
                est: &est,
                items: &items,
                table_preds: &table_preds,
                join_preds: &join_preds,
                budget: None,
                block: BlockId(0),
                enum_left: std::cell::Cell::new(None),
                enum_degraded: std::cell::Cell::new(false),
            };
            enumerator
                .enumerate_greedy()
                .expect("cyclic deps must not error")
        };
        let (node, cost, _) = run();
        assert_eq!(count_scans(&node), 3, "all three items joined");
        assert!(cost > 0.0);
        // deterministic: a second enumeration produces the same plan
        let (node2, cost2, _) = run();
        assert_eq!(cost.to_bits(), cost2.to_bits());
        assert_eq!(format!("{node:?}"), format!("{node2:?}"));
    }

    #[test]
    fn explain_renders() {
        let (p, _) =
            plan("SELECT e.emp_id FROM employees e, departments d WHERE e.dept_id = d.dept_id");
        let text = p.explain();
        assert!(text.contains("JOIN"), "{text}");
        assert!(text.contains("SCAN"), "{text}");
    }
}
