//! Cardinality and selectivity estimation.

use cbqt_catalog::{selectivity_band, Catalog, ColumnStats, FeedbackKey, TableId};
use cbqt_common::Value;
use cbqt_qgm::{BinOp, QExpr, RefId, SubqKind};
use std::collections::HashMap;

/// Default row count assumed for tables without statistics (when dynamic
/// sampling is unavailable).
pub const DEFAULT_ROWS: f64 = 1000.0;
/// Default NDV as a fraction of row count for columns without stats.
pub const DEFAULT_NDV_FRAC: f64 = 0.1;
/// Default selectivity of a predicate we cannot analyze.
pub const DEFAULT_SEL: f64 = 0.25;
/// Default selectivity of an EXISTS / IN subquery filter.
pub const SUBQ_SEL: f64 = 0.5;
/// Default selectivity of a comparison against a scalar subquery.
pub const SCALAR_CMP_SEL: f64 = 0.33;

/// Source of observed scan cardinalities the estimator prefers over its
/// NDV/histogram guesses: the runtime side of the cardinality-feedback
/// loop. `Sync` because the parallel CBQT search estimates from
/// concurrent costing workers.
pub trait CardFeedback: Sync {
    /// Observed output rows for the scan `key` describes, if an
    /// execution against the current table version recorded one.
    fn observed_rows(&self, key: &FeedbackKey) -> Option<f64>;
}

/// Clamps an observed cardinality to finite-and-nonnegative before it
/// may re-enter the cost model — the same hygiene
/// [`Estimator::selectivity`] applies. `None` means "unusable, keep the
/// static estimate" rather than a silent default.
pub fn clamp_feedback_rows(rows: f64) -> Option<f64> {
    (rows.is_finite() && rows >= 0.0).then_some(rows)
}

/// Builds the [`FeedbackKey`] identifying a base-table scan for
/// cardinality feedback, or `None` when the scan is not feedback-eligible.
///
/// Eligible filters are conjunctions of simple comparisons of the scan's
/// *own* columns against values (`Lit` or `Param`) plus non-negated
/// IN-lists of values — the shapes whose observed cardinality is a pure
/// property of (table, predicate, value bands) and therefore safe to
/// replay into a later compilation. Anything else (correlated columns,
/// subqueries, arithmetic) returns `None`: observing those would key on
/// an incomplete description and poison unrelated scans.
///
/// `params` resolves `Param` slots to the *runtime* bind values when the
/// caller has them (the record side); an empty slice falls back to each
/// param's compile-time peek (the estimate side). Both sides band the
/// values through [`selectivity_band`], so an estimate-side probe under
/// one bind bucket can only see actuals recorded under that bucket —
/// sibling bind-sharing variants never share entries.
///
/// The rendered predicate masks values (`c1=?`) and sorts conjuncts, so
/// conjunct order and literal spelling never split entries.
pub fn scan_feedback_key(
    catalog: &Catalog,
    table: TableId,
    refid: RefId,
    preds: &[QExpr],
    params: &[Value],
) -> Option<FeedbackKey> {
    fn value_of<'v>(e: &'v QExpr, params: &'v [Value]) -> Option<&'v Value> {
        match e {
            QExpr::Lit(v) => Some(v),
            QExpr::Param { slot, peek } => Some(params.get(*slot).unwrap_or(peek)),
            _ => None,
        }
    }

    let stats = catalog.table(table).ok().map(|t| &t.stats);
    let band_of = |column: usize, sel: &dyn Fn(&ColumnStats, u64) -> f64| -> i8 {
        match stats {
            Some(ts) if ts.analyzed => match ts.column(column) {
                Some(cs) => selectivity_band(sel(cs, ts.rows)),
                None => 0,
            },
            // unanalyzed tables put every value into one band, exactly
            // like adaptive cursor sharing's bucket_sig
            _ => 0,
        }
    };

    let mut conjuncts: Vec<(String, i8)> = Vec::with_capacity(preds.len());
    for c in preds {
        match c {
            QExpr::Bin { op, left, right } => {
                // normalize to col-op-value with the column on the left
                let (column, value, op) = match (&**left, &**right) {
                    (QExpr::Col { table: t, column }, v) if *t == refid => (*column, v, *op),
                    (v, QExpr::Col { table: t, column }) if *t == refid => {
                        let flipped = match op {
                            BinOp::Eq => BinOp::Eq,
                            BinOp::Lt => BinOp::Gt,
                            BinOp::LtEq => BinOp::GtEq,
                            BinOp::Gt => BinOp::Lt,
                            BinOp::GtEq => BinOp::LtEq,
                            _ => return None,
                        };
                        (*column, v, flipped)
                    }
                    _ => return None,
                };
                let v = value_of(value, params)?;
                let (mask, band) = match op {
                    BinOp::Eq => (
                        format!("c{column}=?"),
                        band_of(column, &|cs, rows| cs.eq_selectivity(rows, Some(v))),
                    ),
                    BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                        let lt = matches!(op, BinOp::Lt | BinOp::LtEq);
                        let inclusive = matches!(op, BinOp::LtEq | BinOp::GtEq);
                        let sym = match op {
                            BinOp::Lt => "<",
                            BinOp::LtEq => "<=",
                            BinOp::Gt => ">",
                            _ => ">=",
                        };
                        (
                            format!("c{column}{sym}?"),
                            band_of(column, &|cs, _| cs.range_selectivity(v, lt, inclusive)),
                        )
                    }
                    _ => return None,
                };
                conjuncts.push((mask, band));
            }
            QExpr::InList {
                expr,
                list,
                negated: false,
            } => {
                let QExpr::Col { table: t, column } = &**expr else {
                    return None;
                };
                if *t != refid {
                    return None;
                }
                let column = *column;
                let mut sel = 0.0;
                for item in list {
                    let v = value_of(item, params)?;
                    sel += match stats {
                        Some(ts) if ts.analyzed => ts
                            .column(column)
                            .map(|cs| cs.eq_selectivity(ts.rows, Some(v)))
                            .unwrap_or(0.0),
                        _ => 0.0,
                    };
                }
                let band = match stats {
                    Some(ts) if ts.analyzed && ts.column(column).is_some() => {
                        selectivity_band(sel.clamp(0.0, 1.0))
                    }
                    _ => 0,
                };
                conjuncts.push((format!("c{column} IN({})?", list.len()), band));
            }
            _ => return None,
        }
    }
    conjuncts.sort();
    let (pred, bands) = conjuncts.into_iter().fold(
        (String::new(), Vec::new()),
        |(mut p, mut b), (mask, band)| {
            if !p.is_empty() {
                p.push_str(" AND ");
            }
            p.push_str(&mask);
            b.push(band);
            (p, b)
        },
    );
    Some(FeedbackKey { table, pred, bands })
}

/// Statistics for one relation (base table reference or view output)
/// as seen by the estimator.
#[derive(Debug, Clone)]
pub struct RelStats {
    pub rows: f64,
    /// Per-column NDV (for base tables the last entry is the ROWID).
    pub ndv: Vec<f64>,
}

impl RelStats {
    pub fn ndv_of(&self, col: usize) -> f64 {
        self.ndv
            .get(col)
            .copied()
            .unwrap_or(self.rows * DEFAULT_NDV_FRAC)
            .max(1.0)
    }
}

/// Information the estimator can recover about one column reference.
#[derive(Debug, Clone, Copy)]
pub struct ColInfo<'a> {
    pub ndv: f64,
    pub rows: f64,
    pub stats: Option<&'a ColumnStats>,
}

/// Estimator over a set of in-scope relations.
///
/// `rels` maps every table reference that is *local* to the join being
/// estimated; references not present (correlated outer columns) are
/// treated as bound scalars.
pub struct Estimator<'a> {
    pub catalog: &'a Catalog,
    pub rels: &'a HashMap<RefId, RelStats>,
    /// Base-table identity for refs that scan catalog tables, to recover
    /// full `ColumnStats` (histograms etc.).
    pub base: &'a HashMap<RefId, cbqt_catalog::TableId>,
}

impl<'a> Estimator<'a> {
    pub fn col_info(&self, refid: RefId, col: usize) -> Option<ColInfo<'a>> {
        let rel = self.rels.get(&refid)?;
        let stats = self.base.get(&refid).and_then(|tid| {
            let t = self.catalog.table(*tid).ok()?;
            if t.stats.analyzed {
                t.stats.column(col)
            } else {
                None
            }
        });
        Some(ColInfo {
            ndv: rel.ndv_of(col),
            rows: rel.rows,
            stats,
        })
    }

    fn expr_col(&self, e: &QExpr) -> Option<(RefId, usize)> {
        match e {
            QExpr::Col { table, column } => Some((*table, *column)),
            _ => None,
        }
    }

    /// Whether an expression is "bound" at evaluation time: constant or
    /// referencing only out-of-scope (outer) tables.
    pub fn is_bound(&self, e: &QExpr) -> bool {
        if e.contains_subquery() {
            return false;
        }
        e.referenced_tables()
            .iter()
            .all(|r| !self.rels.contains_key(r))
    }

    fn literal_of<'b>(&self, e: &'b QExpr) -> Option<&'b Value> {
        match e {
            QExpr::Lit(v) => Some(v),
            // Bind peeking: cost the site with the value the statement
            // was compiled with (adaptive cursor sharing re-buckets
            // later executions against the cached plan's profile).
            QExpr::Param { peek, .. } => Some(peek),
            _ => None,
        }
    }

    /// Selectivity of a single conjunct over the in-scope relations.
    ///
    /// The result is always finite and in `[0, 1]`: degenerate
    /// statistics (zero-NDV columns, zero-row tables, collapsed
    /// min==max ranges) can drive the underlying math to NaN or ±∞, and
    /// a non-finite selectivity would poison every cost downstream.
    pub fn selectivity(&self, e: &QExpr) -> f64 {
        let s = self.selectivity_raw(e);
        if s.is_finite() {
            s.clamp(0.0, 1.0)
        } else {
            DEFAULT_SEL
        }
    }

    fn selectivity_raw(&self, e: &QExpr) -> f64 {
        match e {
            QExpr::Bin {
                op: BinOp::And,
                left,
                right,
            } => self.selectivity(left) * self.selectivity(right),
            QExpr::Bin {
                op: BinOp::Or,
                left,
                right,
            } => {
                let (a, b) = (self.selectivity(left), self.selectivity(right));
                (a + b - a * b).clamp(0.0, 1.0)
            }
            QExpr::Bin { op, left, right } if op.is_comparison() => {
                self.comparison_sel(*op, left, right)
            }
            QExpr::Not(inner) => (1.0 - self.selectivity(inner)).clamp(0.01, 1.0),
            QExpr::IsNull { expr, negated } => {
                let s = match self.expr_col(expr).and_then(|(r, c)| self.col_info(r, c)) {
                    Some(ci) => match ci.stats {
                        Some(cs) if ci.rows > 0.0 => (cs.nulls as f64 / ci.rows).clamp(0.0, 1.0),
                        _ => 0.05,
                    },
                    None => 0.05,
                };
                if *negated {
                    1.0 - s
                } else {
                    s
                }
            }
            QExpr::InList {
                expr,
                list,
                negated,
            } => {
                let eq = self.eq_sel_for(expr, None);
                let s = (eq * list.len() as f64).clamp(0.0, 1.0);
                if *negated {
                    (1.0 - s).max(0.01)
                } else {
                    s.max(0.001)
                }
            }
            QExpr::Like { negated, .. } => {
                if *negated {
                    0.9
                } else {
                    0.1
                }
            }
            QExpr::Subq { kind, .. } => match kind {
                SubqKind::Exists { .. } | SubqKind::In { .. } => SUBQ_SEL,
                SubqKind::Quant { .. } => SUBQ_SEL,
                SubqKind::Scalar => SCALAR_CMP_SEL,
            },
            QExpr::Bin { left, right, .. } => {
                // non-comparison binary (arith) used as predicate: unknown
                let _ = (left, right);
                DEFAULT_SEL
            }
            QExpr::Lit(Value::Bool(true)) => 1.0,
            QExpr::Lit(Value::Bool(false)) => 0.0,
            _ => DEFAULT_SEL,
        }
    }

    fn comparison_sel(&self, op: BinOp, left: &QExpr, right: &QExpr) -> f64 {
        // scalar-subquery comparisons get the classic default
        if left.contains_subquery() || right.contains_subquery() {
            return SCALAR_CMP_SEL;
        }
        let lcol = self
            .expr_col(left)
            .and_then(|(r, c)| self.col_info(r, c).map(|i| (r, c, i)));
        let rcol = self
            .expr_col(right)
            .and_then(|(r, c)| self.col_info(r, c).map(|i| (r, c, i)));
        match op {
            BinOp::Eq => match (&lcol, &rcol) {
                (Some((_, _, li)), Some((_, _, ri))) => 1.0 / li.ndv.max(ri.ndv),
                (Some((_, _, li)), None) if self.is_bound(right) => {
                    self.eq_with_stats(li, self.literal_of(right))
                }
                (None, Some((_, _, ri))) if self.is_bound(left) => {
                    self.eq_with_stats(ri, self.literal_of(left))
                }
                (Some((_, _, li)), None) => 1.0 / li.ndv,
                (None, Some((_, _, ri))) => 1.0 / ri.ndv,
                _ => DEFAULT_SEL,
            },
            BinOp::NotEq => {
                let eq = self.comparison_sel(BinOp::Eq, left, right);
                (1.0 - eq).max(0.01)
            }
            BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                // range predicate against a bound value
                if let (Some((_, _, ci)), true) = (&lcol, self.is_bound(right)) {
                    if let (Some(cs), Some(v)) = (ci.stats, self.literal_of(right)) {
                        let lt = matches!(op, BinOp::Lt | BinOp::LtEq);
                        return cs
                            .range_selectivity(v, lt, matches!(op, BinOp::LtEq | BinOp::GtEq))
                            .clamp(0.0001, 1.0);
                    }
                    return 0.33;
                }
                if let (Some((_, _, ci)), true) = (&rcol, self.is_bound(left)) {
                    if let (Some(cs), Some(v)) = (ci.stats, self.literal_of(left)) {
                        // v < col  ==  col > v
                        let lt = matches!(op, BinOp::Gt | BinOp::GtEq);
                        return cs
                            .range_selectivity(v, lt, matches!(op, BinOp::LtEq | BinOp::GtEq))
                            .clamp(0.0001, 1.0);
                    }
                    return 0.33;
                }
                0.33
            }
            _ => DEFAULT_SEL,
        }
    }

    fn eq_with_stats(&self, ci: &ColInfo<'_>, lit: Option<&Value>) -> f64 {
        match ci.stats {
            Some(cs) => cs
                .eq_selectivity(ci.rows.max(1.0) as u64, lit)
                .clamp(0.000001, 1.0),
            None => (1.0 / ci.ndv).clamp(0.000001, 1.0),
        }
    }

    /// Equality selectivity against an expression (for IN-list sizing).
    fn eq_sel_for(&self, e: &QExpr, lit: Option<&Value>) -> f64 {
        match self.expr_col(e).and_then(|(r, c)| self.col_info(r, c)) {
            Some(ci) => self.eq_with_stats(&ci, lit),
            None => 0.05,
        }
    }

    /// Estimated number of groups for a set of grouping expressions over
    /// `input_rows`.
    pub fn group_count(&self, keys: &[QExpr], input_rows: f64) -> f64 {
        if keys.is_empty() {
            return 1.0;
        }
        let mut prod = 1.0_f64;
        for k in keys {
            let ndv = match self.expr_col(k).and_then(|(r, c)| self.col_info(r, c)) {
                Some(ci) => ci.ndv,
                None => (input_rows * DEFAULT_NDV_FRAC).max(1.0),
            };
            prod *= ndv;
            if prod > input_rows {
                return input_rows.max(1.0);
            }
        }
        prod.min(input_rows).max(1.0)
    }

    /// Number of *distinct bindings* of the bound (outer) columns
    /// mentioned by the expressions — caps the number of distinct
    /// executions of a correlated subplan under correlation caching.
    pub fn distinct_bindings(&self, exprs: &[QExpr], outer_rels: &HashMap<RefId, RelStats>) -> f64 {
        let mut prod = 1.0_f64;
        let mut seen = std::collections::HashSet::new();
        for e in exprs {
            let mut cols = Vec::new();
            e.collect_cols(&mut cols);
            for (r, c) in cols {
                if self.rels.contains_key(&r) {
                    continue; // local, not a binding
                }
                if !seen.insert((r, c)) {
                    continue;
                }
                let ndv = outer_rels
                    .get(&r)
                    .map(|rs| rs.ndv_of(c))
                    .unwrap_or(DEFAULT_ROWS);
                prod = (prod * ndv).min(1e15);
            }
        }
        prod
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbqt_catalog::{Column, Constraint};
    use cbqt_common::DataType;

    fn setup() -> (
        Catalog,
        HashMap<RefId, RelStats>,
        HashMap<RefId, cbqt_catalog::TableId>,
    ) {
        let mut cat = Catalog::new();
        let icol = |n: &str| Column {
            name: n.into(),
            data_type: DataType::Int,
            not_null: false,
        };
        let t = cat
            .add_table(
                "t",
                vec![icol("a"), icol("b")],
                vec![Constraint::PrimaryKey(vec![0])],
            )
            .unwrap();
        // fake analyzed stats
        {
            let tbl = cat.table_mut(t).unwrap();
            tbl.stats.analyzed = true;
            tbl.stats.rows = 1000;
            tbl.stats.columns = vec![
                ColumnStats {
                    ndv: 1000,
                    nulls: 0,
                    min: Some(Value::Int(0)),
                    max: Some(Value::Int(999)),
                    histogram: None,
                },
                ColumnStats {
                    ndv: 10,
                    nulls: 100,
                    min: Some(Value::Int(0)),
                    max: Some(Value::Int(9)),
                    histogram: None,
                },
            ];
        }
        let mut rels = HashMap::new();
        rels.insert(
            RefId(0),
            RelStats {
                rows: 1000.0,
                ndv: vec![1000.0, 10.0, 1000.0],
            },
        );
        let mut base = HashMap::new();
        base.insert(RefId(0), t);
        (cat, rels, base)
    }

    #[test]
    fn eq_literal_uses_ndv() {
        let (cat, rels, base) = setup();
        let est = Estimator {
            catalog: &cat,
            rels: &rels,
            base: &base,
        };
        let e = QExpr::eq(QExpr::col(RefId(0), 1), QExpr::lit(3i64));
        let s = est.selectivity(&e);
        // ndv 10, 10% nulls -> 0.09
        assert!((s - 0.09).abs() < 0.001, "{s}");
    }

    #[test]
    fn col_col_eq_uses_larger_ndv() {
        let (cat, mut rels, base) = setup();
        rels.insert(
            RefId(1),
            RelStats {
                rows: 100.0,
                ndv: vec![50.0],
            },
        );
        let est = Estimator {
            catalog: &cat,
            rels: &rels,
            base: &base,
        };
        let e = QExpr::eq(QExpr::col(RefId(0), 0), QExpr::col(RefId(1), 0));
        assert!((est.selectivity(&e) - 0.001).abs() < 1e-9);
    }

    #[test]
    fn range_interpolation() {
        let (cat, rels, base) = setup();
        let est = Estimator {
            catalog: &cat,
            rels: &rels,
            base: &base,
        };
        let e = QExpr::bin(BinOp::Lt, QExpr::col(RefId(0), 0), QExpr::lit(500i64));
        let s = est.selectivity(&e);
        assert!((s - 0.5).abs() < 0.05, "{s}");
        // reversed: 500 < a  ==  a > 500
        let e = QExpr::bin(BinOp::Lt, QExpr::lit(500i64), QExpr::col(RefId(0), 0));
        let s = est.selectivity(&e);
        assert!((s - 0.5).abs() < 0.05, "{s}");
    }

    #[test]
    fn correlated_eq_is_bound() {
        let (cat, rels, base) = setup();
        let est = Estimator {
            catalog: &cat,
            rels: &rels,
            base: &base,
        };
        // RefId(7) is not local — treated as a bound outer scalar
        let outer = QExpr::col(RefId(7), 0);
        assert!(est.is_bound(&outer));
        let e = QExpr::eq(QExpr::col(RefId(0), 1), outer);
        let s = est.selectivity(&e);
        assert!(s > 0.0 && s < 0.2, "{s}");
    }

    #[test]
    fn and_or_combine() {
        let (cat, rels, base) = setup();
        let est = Estimator {
            catalog: &cat,
            rels: &rels,
            base: &base,
        };
        let p = QExpr::eq(QExpr::col(RefId(0), 1), QExpr::lit(3i64));
        let and = QExpr::bin(BinOp::And, p.clone(), p.clone());
        assert!(est.selectivity(&and) < est.selectivity(&p));
        let or = QExpr::bin(BinOp::Or, p.clone(), p.clone());
        assert!(est.selectivity(&or) > est.selectivity(&p));
    }

    #[test]
    fn group_count_capped_by_rows() {
        let (cat, rels, base) = setup();
        let est = Estimator {
            catalog: &cat,
            rels: &rels,
            base: &base,
        };
        let g = est.group_count(&[QExpr::col(RefId(0), 1)], 1000.0);
        assert!((g - 10.0).abs() < 1e-9);
        let g2 = est.group_count(&[QExpr::col(RefId(0), 0), QExpr::col(RefId(0), 1)], 500.0);
        assert!((g2 - 500.0).abs() < 1e-9);
        assert!((est.group_count(&[], 500.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn subquery_defaults() {
        let (cat, rels, base) = setup();
        let est = Estimator {
            catalog: &cat,
            rels: &rels,
            base: &base,
        };
        let e = QExpr::Subq {
            block: cbqt_qgm::BlockId(5),
            kind: SubqKind::Exists { negated: false },
        };
        assert_eq!(est.selectivity(&e), SUBQ_SEL);
    }

    #[test]
    fn degenerate_stats_yield_finite_selectivity() {
        // zero rows, zero NDV, collapsed min==max: every predicate must
        // still get a finite selectivity in [0, 1]
        let mut cat = Catalog::new();
        let t = cat
            .add_table(
                "empty",
                vec![Column {
                    name: "a".into(),
                    data_type: DataType::Int,
                    not_null: false,
                }],
                vec![],
            )
            .unwrap();
        {
            let tbl = cat.table_mut(t).unwrap();
            tbl.stats.analyzed = true;
            tbl.stats.rows = 0;
            tbl.stats.columns = vec![ColumnStats {
                ndv: 0,
                nulls: 0,
                min: Some(Value::Int(5)),
                max: Some(Value::Int(5)),
                histogram: None,
            }];
        }
        let mut rels = HashMap::new();
        rels.insert(
            RefId(0),
            RelStats {
                rows: 0.0,
                ndv: vec![0.0],
            },
        );
        let mut base = HashMap::new();
        base.insert(RefId(0), t);
        let est = Estimator {
            catalog: &cat,
            rels: &rels,
            base: &base,
        };
        let col = || QExpr::col(RefId(0), 0);
        for e in [
            QExpr::eq(col(), QExpr::lit(5i64)),
            QExpr::bin(BinOp::NotEq, col(), QExpr::lit(5i64)),
            QExpr::bin(BinOp::Lt, col(), QExpr::lit(5i64)),
            QExpr::bin(BinOp::GtEq, col(), QExpr::lit(5i64)),
            QExpr::eq(col(), col()),
            QExpr::Not(Box::new(QExpr::eq(col(), QExpr::lit(5i64)))),
        ] {
            let s = est.selectivity(&e);
            assert!(s.is_finite() && (0.0..=1.0).contains(&s), "{e:?} -> {s}");
        }
    }

    #[test]
    fn feedback_key_masks_sorts_and_bands() {
        let (cat, _, base) = setup();
        let t = base[&RefId(0)];
        // b = 3 AND a < 500, given in the opposite order and with the
        // column on either side
        let preds = [
            QExpr::bin(BinOp::Gt, QExpr::lit(500i64), QExpr::col(RefId(0), 0)),
            QExpr::eq(QExpr::lit(3i64), QExpr::col(RefId(0), 1)),
        ];
        let k = scan_feedback_key(&cat, t, RefId(0), &preds, &[]).unwrap();
        assert_eq!(k.pred, "c0<? AND c1=?");
        // a < 500 over [0,999] ~ 0.5 -> band 0; b = 3 with ndv 10 and 10%
        // nulls ~ 0.09 -> band -1
        assert_eq!(k.bands, vec![0, -1]);
        // same predicates in canonical order produce the identical key
        let preds2 = [
            QExpr::eq(QExpr::col(RefId(0), 1), QExpr::lit(3i64)),
            QExpr::bin(BinOp::Lt, QExpr::col(RefId(0), 0), QExpr::lit(500i64)),
        ];
        assert_eq!(
            scan_feedback_key(&cat, t, RefId(0), &preds2, &[]).unwrap(),
            k
        );
    }

    #[test]
    fn feedback_key_resolves_params_against_runtime_binds() {
        let (cat, _, base) = setup();
        let t = base[&RefId(0)];
        let pred = [QExpr::eq(
            QExpr::col(RefId(0), 0),
            QExpr::Param {
                slot: 0,
                peek: Value::Int(7),
            },
        )];
        let compile = scan_feedback_key(&cat, t, RefId(0), &pred, &[]).unwrap();
        // the runtime bind matches the peek: identical key
        let run = scan_feedback_key(&cat, t, RefId(0), &pred, &[Value::Int(7)]).unwrap();
        assert_eq!(compile, run);
        // predicate text never depends on the value, only bands may
        let other = scan_feedback_key(&cat, t, RefId(0), &pred, &[Value::Int(9)]).unwrap();
        assert_eq!(other.pred, compile.pred);
    }

    #[test]
    fn feedback_key_rejects_ineligible_filters() {
        let (cat, _, base) = setup();
        let t = base[&RefId(0)];
        // correlated column on the value side
        let corr = [QExpr::eq(QExpr::col(RefId(0), 0), QExpr::col(RefId(7), 0))];
        assert!(scan_feedback_key(&cat, t, RefId(0), &corr, &[]).is_none());
        // negated IN-list
        let notin = [QExpr::InList {
            expr: Box::new(QExpr::col(RefId(0), 0)),
            list: vec![QExpr::lit(1i64)],
            negated: true,
        }];
        assert!(scan_feedback_key(&cat, t, RefId(0), &notin, &[]).is_none());
        // one eligible + one ineligible conjunct rejects the whole scan
        let mixed = [
            QExpr::eq(QExpr::col(RefId(0), 0), QExpr::lit(1i64)),
            QExpr::bin(BinOp::NotEq, QExpr::col(RefId(0), 1), QExpr::lit(2i64)),
        ];
        assert!(scan_feedback_key(&cat, t, RefId(0), &mixed, &[]).is_none());
        // the empty filter is eligible: full-scan cardinality
        let k = scan_feedback_key(&cat, t, RefId(0), &[], &[]).unwrap();
        assert_eq!(k.pred, "");
        assert!(k.bands.is_empty());
    }

    #[test]
    fn clamp_feedback_rows_mirrors_selectivity_hygiene() {
        assert_eq!(clamp_feedback_rows(50.0), Some(50.0));
        assert_eq!(clamp_feedback_rows(0.0), Some(0.0));
        assert_eq!(clamp_feedback_rows(-1.0), None);
        assert_eq!(clamp_feedback_rows(f64::NAN), None);
        assert_eq!(clamp_feedback_rows(f64::INFINITY), None);
    }

    #[test]
    fn distinct_bindings_product() {
        let (cat, rels, base) = setup();
        let est = Estimator {
            catalog: &cat,
            rels: &rels,
            base: &base,
        };
        let mut outer = HashMap::new();
        outer.insert(
            RefId(9),
            RelStats {
                rows: 100.0,
                ndv: vec![20.0],
            },
        );
        let e = QExpr::eq(QExpr::col(RefId(0), 1), QExpr::col(RefId(9), 0));
        let n = est.distinct_bindings(&[e], &outer);
        assert!((n - 20.0).abs() < 1e-9);
    }
}
