//! Physical optimizer: cardinality estimation, cost model, access-path
//! selection, left-deep join enumeration, and per-block plan generation.
//!
//! In the paper's architecture (§3.1, Figure 1), the physical optimizer
//! serves double duty: it produces the final execution plan *and* it is
//! the **cost estimation technique** the cost-based transformation
//! framework invokes on each candidate state. Three of the paper's
//! optimization-performance techniques live here:
//!
//! * **cost cut-off** (§3.4.1): block optimization aborts as soon as the
//!   accumulated cost exceeds the best complete state found so far;
//! * **reuse of query sub-tree cost annotations** (§3.4.2): each query
//!   block's plan is cached under a canonical rendering of the block, so
//!   equivalent sub-trees across transformation states are optimized
//!   once;
//! * **caching of expensive optimizer computations** (§3.4.4): dynamic
//!   sampling results for tables without statistics are cached across
//!   optimizer calls.

pub mod est;
pub mod optimize;
pub mod plan;

pub use est::{clamp_feedback_rows, scan_feedback_key, CardFeedback, ColInfo, Estimator, RelStats};
pub use optimize::{
    is_cutoff, CostAnnotations, DynamicSampler, Optimizer, OptimizerConfig, OptimizerStats,
    SamplingCache, COST_CUTOFF,
};
pub use plan::*;
