//! Physical plan structures produced by the optimizer and interpreted by
//! the execution engine.

use cbqt_catalog::{IndexId, TableId};
use cbqt_qgm::{BlockId, QExpr, QOrder, RefId, SetOp};

/// Cost-model constants. The execution engine counts *work units* with
/// the same weights, so estimated cost and measured work are in the same
/// currency; estimation error then comes from cardinality estimation —
/// exactly the error source the paper attributes degradations to (§4.2).
pub mod weights {
    /// Touching one row in a scan or join output.
    pub const ROW: f64 = 1.0;
    /// Evaluating one predicate conjunct on one row.
    pub const PRED: f64 = 0.2;
    /// Descending a B-tree index once.
    pub const INDEX_PROBE: f64 = 8.0;
    /// Fetching one row through an index entry.
    pub const INDEX_FETCH: f64 = 1.5;
    /// Inserting one row into a hash table.
    pub const HASH_BUILD: f64 = 1.5;
    /// Probing a hash table once.
    pub const HASH_PROBE: f64 = 1.2;
    /// Per-row sort weight; total sort cost is `SORT * n * log2(n)`.
    pub const SORT: f64 = 2.0;
    /// Per-row aggregation weight.
    pub const AGG: f64 = 2.0;
    /// Per-row projection/distinct hashing weight.
    pub const DEDUP: f64 = 1.2;
    /// Default per-call cost of the EXPENSIVE() stand-in UDF when the
    /// call site does not pass an explicit unit count.
    pub const EXPENSIVE_DEFAULT: f64 = 50.0;
}

/// How a base-table scan locates its rows.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    FullScan,
    /// Equality probe on an index; `key` expressions are evaluated
    /// against bindings available at probe time (literals, correlated
    /// outer columns, or left-side join columns).
    IndexEq {
        index: IndexId,
        key: Vec<QExpr>,
    },
    /// Single-column range scan on the index's leading column.
    IndexRange {
        index: IndexId,
        lo: Option<(QExpr, bool)>,
        hi: Option<(QExpr, bool)>,
    },
}

impl AccessPath {
    pub fn describe(&self) -> String {
        match self {
            AccessPath::FullScan => "FULL SCAN".to_string(),
            AccessPath::IndexEq { index, .. } => format!("INDEX EQ (ix{})", index.0),
            AccessPath::IndexRange { index, .. } => format!("INDEX RANGE (ix{})", index.0),
        }
    }
}

/// Physical join methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinMethod {
    /// Materialized block nested loop; the right side may be an indexed
    /// probe or a correlated (lateral) re-execution.
    NestedLoop,
    /// Build the right side into a hash table, probe with the left.
    Hash,
    /// Sort both sides on the equi-key and merge.
    Merge,
}

/// Join semantics at a join node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanJoinKind {
    Inner,
    /// Left rows with at least one match (stop-at-first-match).
    Semi,
    /// Left rows with no match; `null_aware` selects NOT IN semantics.
    Anti {
        null_aware: bool,
    },
    LeftOuter,
}

/// A node of the join tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Produces exactly one zero-width row (FROM-less SELECT).
    OneRow,
    ScanBase {
        table: TableId,
        refid: RefId,
        /// Output width including the virtual ROWID column.
        width: usize,
        access: AccessPath,
        /// Residual filter conjuncts evaluated per fetched row.
        filter: Vec<QExpr>,
        /// Estimated output rows (for EXPLAIN).
        rows: f64,
    },
    ScanView {
        block: BlockId,
        refid: RefId,
        width: usize,
        plan: Box<BlockPlan>,
        /// True when the view references columns bound outside it
        /// (correlated / JPPD lateral view): it is re-executed per outer
        /// row with result caching on the correlation values.
        correlated: bool,
        filter: Vec<QExpr>,
        /// Estimated output rows (for EXPLAIN).
        rows: f64,
    },
    Join {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        kind: PlanJoinKind,
        method: JoinMethod,
        /// Equi-join pairs `(left_expr, right_expr)`.
        equi: Vec<(QExpr, QExpr)>,
        /// Other join conjuncts evaluated on the concatenated row.
        residual: Vec<QExpr>,
        /// Right side is re-evaluated per left row (index NL probe or
        /// lateral view).
        lateral: bool,
        /// Estimated output rows (for EXPLAIN).
        rows: f64,
    },
}

impl PlanNode {
    pub fn width(&self) -> usize {
        match self {
            PlanNode::OneRow => 0,
            PlanNode::ScanBase { width, .. } | PlanNode::ScanView { width, .. } => *width,
            PlanNode::Join {
                left, right, kind, ..
            } => match kind {
                PlanJoinKind::Semi | PlanJoinKind::Anti { .. } => left.width(),
                _ => left.width() + right.width(),
            },
        }
    }

    /// Leaf refids in join order (left-deep: the order tables appear in
    /// the output row).
    pub fn leaf_refs(&self, out: &mut Vec<(RefId, usize)>) {
        match self {
            PlanNode::OneRow => {}
            PlanNode::ScanBase { refid, width, .. } | PlanNode::ScanView { refid, width, .. } => {
                out.push((*refid, *width));
            }
            PlanNode::Join {
                left, right, kind, ..
            } => {
                left.leaf_refs(out);
                if !matches!(kind, PlanJoinKind::Semi | PlanJoinKind::Anti { .. }) {
                    right.leaf_refs(out);
                }
            }
        }
    }
}

/// Maps table references to their slice of the concatenated executor row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Layout {
    /// `(refid, offset, width)`.
    pub slots: Vec<(RefId, usize, usize)>,
    pub width: usize,
}

impl Layout {
    pub fn from_node(node: &PlanNode) -> Layout {
        let mut leaves = Vec::new();
        node.leaf_refs(&mut leaves);
        let mut slots = Vec::new();
        let mut off = 0;
        for (r, w) in leaves {
            slots.push((r, off, w));
            off += w;
        }
        Layout { slots, width: off }
    }

    pub fn offset_of(&self, refid: RefId) -> Option<(usize, usize)> {
        self.slots
            .iter()
            .find(|(r, _, _)| *r == refid)
            .map(|(_, o, w)| (*o, *w))
    }
}

/// Plan for a SELECT block: join tree plus the post-join pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectPlan {
    pub join: PlanNode,
    pub layout: Layout,
    /// Conjuncts evaluated on the joined row (subquery filters — the
    /// tuple-iteration-semantics operator — and predicates on outer-join
    /// results).
    pub post_filter: Vec<QExpr>,
    /// Canonical list of aggregate expressions computed by this block;
    /// the executor appends their values after the wide row.
    pub aggs: Vec<QExpr>,
    pub group_by: Vec<QExpr>,
    pub grouping_sets: Option<Vec<Vec<usize>>>,
    pub having: Vec<QExpr>,
    /// Canonical list of window expressions, appended after aggregates.
    pub windows: Vec<QExpr>,
    pub select: Vec<QExpr>,
    pub distinct: bool,
    pub distinct_keys: Option<Vec<QExpr>>,
    pub order_by: Vec<QOrder>,
    pub rownum_limit: Option<u64>,
    /// Plans for non-unnested subqueries referenced by this block's
    /// expressions.
    pub subplans: Vec<(BlockId, BlockPlan)>,
}

/// Plan for a set-operation block.
#[derive(Debug, Clone, PartialEq)]
pub struct SetOpPlan {
    pub op: SetOp,
    pub inputs: Vec<BlockPlan>,
}

/// A fully-costed plan for one query block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPlan {
    pub block: BlockId,
    pub root: PlanRoot,
    /// Estimated cost of one execution of this block.
    pub cost: f64,
    /// Estimated output cardinality.
    pub rows: f64,
    /// Estimated number of distinct values per output column.
    pub out_ndv: Vec<f64>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum PlanRoot {
    Select(Box<SelectPlan>),
    SetOp(SetOpPlan),
}

/// A plan element handed to an EXPLAIN annotator: either one block root
/// or one node of a join tree. The borrowed reference is into the plan
/// being explained; side tables (runtime metrics) key elements by their
/// [`PlanNodeId`] through a [`PlanIndex`] built over the same plan.
#[derive(Clone, Copy)]
pub enum PlanEntity<'a> {
    Block(&'a BlockPlan),
    Node(&'a PlanNode),
}

impl PlanEntity<'_> {
    /// Address of the referenced element, valid only for the lifetime of
    /// this plan allocation. Used internally by [`PlanIndex`] to
    /// translate borrowed elements into stable ids; never use it as a
    /// cross-execution key directly — a reused allocation can alias.
    pub fn addr(&self) -> usize {
        match self {
            PlanEntity::Block(b) => *b as *const BlockPlan as usize,
            PlanEntity::Node(n) => *n as *const PlanNode as usize,
        }
    }

    /// Estimated output rows of this element (what EXPLAIN prints).
    pub fn est_rows(&self) -> f64 {
        match self {
            PlanEntity::Block(b) => b.rows,
            PlanEntity::Node(n) => match n {
                PlanNode::OneRow => 1.0,
                PlanNode::ScanBase { rows, .. }
                | PlanNode::ScanView { rows, .. }
                | PlanNode::Join { rows, .. } => *rows,
            },
        }
    }
}

/// Stable identity of one plan element within its plan: the ordinal of
/// the element in the canonical traversal (the order EXPLAIN prints).
/// Unlike a raw address, the id survives cloning the plan and can never
/// alias an element of a different live plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanNodeId(pub u32);

impl std::fmt::Display for PlanNodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Maps the elements of one plan allocation to their [`PlanNodeId`]s,
/// plus a structural fingerprint of the whole plan. Metrics recorded
/// against one plan carry the fingerprint, so applying them to a
/// structurally different plan is detected instead of silently
/// attributing counters to the wrong operator (the failure mode of
/// address keying when an allocation is reused).
#[derive(Debug, Clone)]
pub struct PlanIndex {
    by_addr: std::collections::HashMap<usize, PlanNodeId>,
    fingerprint: u64,
}

impl PlanIndex {
    /// Walks `plan` in canonical (EXPLAIN) order, assigning ordinals.
    pub fn build(plan: &BlockPlan) -> PlanIndex {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut by_addr = std::collections::HashMap::new();
        let mut hasher = DefaultHasher::new();
        let mut next = 0u32;
        plan.visit_entities(&mut |e| {
            by_addr.insert(e.addr(), PlanNodeId(next));
            next.hash(&mut hasher);
            match e {
                PlanEntity::Block(b) => {
                    0u8.hash(&mut hasher);
                    b.block.0.hash(&mut hasher);
                }
                PlanEntity::Node(n) => match n {
                    PlanNode::OneRow => 1u8.hash(&mut hasher),
                    PlanNode::ScanBase {
                        table,
                        refid,
                        access,
                        filter,
                        ..
                    } => {
                        2u8.hash(&mut hasher);
                        table.0.hash(&mut hasher);
                        refid.0.hash(&mut hasher);
                        filter.len().hash(&mut hasher);
                        match access {
                            AccessPath::FullScan => 0u8.hash(&mut hasher),
                            AccessPath::IndexEq { index, .. } => {
                                1u8.hash(&mut hasher);
                                index.0.hash(&mut hasher);
                            }
                            AccessPath::IndexRange { index, .. } => {
                                2u8.hash(&mut hasher);
                                index.0.hash(&mut hasher);
                            }
                        }
                    }
                    PlanNode::ScanView { block, refid, .. } => {
                        3u8.hash(&mut hasher);
                        block.0.hash(&mut hasher);
                        refid.0.hash(&mut hasher);
                    }
                    PlanNode::Join {
                        kind,
                        method,
                        lateral,
                        ..
                    } => {
                        4u8.hash(&mut hasher);
                        join_kind_tag(*kind).hash(&mut hasher);
                        join_method_tag(*method).hash(&mut hasher);
                        lateral.hash(&mut hasher);
                    }
                },
            }
            next += 1;
        });
        PlanIndex {
            by_addr,
            fingerprint: hasher.finish(),
        }
    }

    /// The id of a borrowed element of the indexed plan; `None` when the
    /// element belongs to a different plan allocation.
    pub fn id_of(&self, e: PlanEntity<'_>) -> Option<PlanNodeId> {
        self.id_of_addr(e.addr())
    }

    pub fn id_of_addr(&self, addr: usize) -> Option<PlanNodeId> {
        self.by_addr.get(&addr).copied()
    }

    /// Structural fingerprint of the indexed plan. Two indexes over
    /// clones of the same plan share it; structurally different plans
    /// (with overwhelming probability) do not.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of indexed elements.
    pub fn len(&self) -> usize {
        self.by_addr.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_addr.is_empty()
    }
}

fn join_kind_tag(k: PlanJoinKind) -> u8 {
    match k {
        PlanJoinKind::Inner => 0,
        PlanJoinKind::Semi => 1,
        PlanJoinKind::Anti { null_aware: false } => 2,
        PlanJoinKind::Anti { null_aware: true } => 3,
        PlanJoinKind::LeftOuter => 4,
    }
}

fn join_method_tag(m: JoinMethod) -> u8 {
    match m {
        JoinMethod::NestedLoop => 0,
        JoinMethod::Hash => 1,
        JoinMethod::Merge => 2,
    }
}

/// Callback appending per-element detail (e.g. actual row counts) to
/// EXPLAIN lines; return `None` for no annotation.
pub type Annotator<'a> = dyn FnMut(PlanEntity<'_>) -> Option<String> + 'a;

impl BlockPlan {
    pub fn as_select(&self) -> Option<&SelectPlan> {
        match &self.root {
            PlanRoot::Select(s) => Some(s),
            PlanRoot::SetOp(_) => None,
        }
    }

    /// Indented EXPLAIN text.
    pub fn explain(&self) -> String {
        self.explain_annotated(&mut |_| None)
    }

    /// Visits every plan element (block roots and join-tree nodes) in
    /// canonical order — the exact order EXPLAIN prints them, which is
    /// also the ordinal order [`PlanIndex`] assigns [`PlanNodeId`]s in.
    pub fn visit_entities<'a>(&'a self, f: &mut impl FnMut(PlanEntity<'a>)) {
        f(PlanEntity::Block(self));
        match &self.root {
            PlanRoot::Select(sp) => {
                visit_node(&sp.join, f);
                for (_, p) in &sp.subplans {
                    p.visit_entities(f);
                }
            }
            PlanRoot::SetOp(sp) => {
                for i in &sp.inputs {
                    i.visit_entities(f);
                }
            }
        }
    }

    /// Indented EXPLAIN text with a per-element annotation appended to
    /// each line — the single formatter behind both plain `EXPLAIN` and
    /// `EXPLAIN ANALYZE`.
    pub fn explain_annotated(&self, annotate: &mut Annotator<'_>) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0, annotate);
        s
    }

    fn explain_into(&self, out: &mut String, depth: usize, annotate: &mut Annotator<'_>) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        let note = note_for(annotate(PlanEntity::Block(self)));
        match &self.root {
            PlanRoot::Select(sp) => {
                writeln!(
                    out,
                    "{pad}SELECT {} (cost={:.0} rows={:.0}{}{}{}){note}",
                    self.block,
                    self.cost,
                    self.rows,
                    if sp.group_by.is_empty() && sp.aggs.is_empty() {
                        ""
                    } else {
                        " agg"
                    },
                    if sp.distinct || sp.distinct_keys.is_some() {
                        " distinct"
                    } else {
                        ""
                    },
                    match sp.rownum_limit {
                        Some(_) => " limit",
                        None => "",
                    },
                )
                .unwrap();
                explain_node(&sp.join, out, depth + 1, annotate);
                for (b, p) in &sp.subplans {
                    writeln!(out, "{pad}  SUBQUERY {b}:").unwrap();
                    p.explain_into(out, depth + 2, annotate);
                }
            }
            PlanRoot::SetOp(sp) => {
                writeln!(
                    out,
                    "{pad}{:?} (cost={:.0} rows={:.0}){note}",
                    sp.op, self.cost, self.rows
                )
                .unwrap();
                for i in &sp.inputs {
                    i.explain_into(out, depth + 1, annotate);
                }
            }
        }
    }
}

impl BlockPlan {
    /// Estimated deep size of this plan in bytes (stems plus heap
    /// allocations), the currency the plan cache's memory bound is
    /// expressed in. An estimate, not an exact measurement: shared
    /// `Arc<str>` literals are counted once per reference.
    pub fn estimated_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut n = size_of::<BlockPlan>() + self.out_ndv.capacity() * size_of::<f64>();
        match &self.root {
            PlanRoot::Select(sp) => {
                n += size_of::<SelectPlan>();
                n += node_bytes(&sp.join);
                n += sp.layout.slots.capacity() * size_of::<(RefId, usize, usize)>();
                for e in sp
                    .post_filter
                    .iter()
                    .chain(&sp.aggs)
                    .chain(&sp.group_by)
                    .chain(&sp.having)
                    .chain(&sp.windows)
                    .chain(&sp.select)
                    .chain(sp.distinct_keys.iter().flatten())
                {
                    n += qexpr_bytes(e);
                }
                if let Some(sets) = &sp.grouping_sets {
                    n += sets
                        .iter()
                        .map(|s| s.capacity() * size_of::<usize>())
                        .sum::<usize>();
                }
                for o in &sp.order_by {
                    n += size_of::<QOrder>() + qexpr_bytes(&o.expr);
                }
                for (_, p) in &sp.subplans {
                    n += p.estimated_bytes();
                }
            }
            PlanRoot::SetOp(sp) => {
                n += sp
                    .inputs
                    .iter()
                    .map(BlockPlan::estimated_bytes)
                    .sum::<usize>();
            }
        }
        n
    }
}

fn node_bytes(node: &PlanNode) -> usize {
    use std::mem::size_of;
    let stem = size_of::<PlanNode>();
    stem + match node {
        PlanNode::OneRow => 0,
        PlanNode::ScanBase { access, filter, .. } => {
            access_bytes(access) + filter.iter().map(qexpr_bytes).sum::<usize>()
        }
        PlanNode::ScanView { plan, filter, .. } => {
            plan.estimated_bytes() + filter.iter().map(qexpr_bytes).sum::<usize>()
        }
        PlanNode::Join {
            left,
            right,
            equi,
            residual,
            ..
        } => {
            node_bytes(left)
                + node_bytes(right)
                + equi
                    .iter()
                    .map(|(l, r)| qexpr_bytes(l) + qexpr_bytes(r))
                    .sum::<usize>()
                + residual.iter().map(qexpr_bytes).sum::<usize>()
        }
    }
}

fn access_bytes(access: &AccessPath) -> usize {
    match access {
        AccessPath::FullScan => 0,
        AccessPath::IndexEq { key, .. } => key.iter().map(qexpr_bytes).sum(),
        AccessPath::IndexRange { lo, hi, .. } => lo
            .iter()
            .chain(hi.iter())
            .map(|(e, _)| qexpr_bytes(e))
            .sum(),
    }
}

fn qexpr_bytes(e: &QExpr) -> usize {
    use cbqt_common::Value;
    use std::mem::size_of;
    let stem = size_of::<QExpr>();
    stem + match e {
        QExpr::Col { .. } | QExpr::Subq { .. } => 0,
        QExpr::Lit(v) => match v {
            Value::Str(s) => s.len(),
            _ => 0,
        },
        QExpr::Param { peek, .. } => match peek {
            Value::Str(s) => s.len(),
            _ => 0,
        },
        QExpr::Bin { left, right, .. } => qexpr_bytes(left) + qexpr_bytes(right),
        QExpr::Not(x) | QExpr::Neg(x) => qexpr_bytes(x),
        QExpr::IsNull { expr, .. } => qexpr_bytes(expr),
        QExpr::InList { expr, list, .. } => {
            qexpr_bytes(expr) + list.iter().map(qexpr_bytes).sum::<usize>()
        }
        QExpr::Like { expr, pattern, .. } => qexpr_bytes(expr) + qexpr_bytes(pattern),
        QExpr::Case {
            operand,
            branches,
            else_expr,
        } => {
            operand.as_deref().map(qexpr_bytes).unwrap_or(0)
                + branches
                    .iter()
                    .map(|(c, v)| qexpr_bytes(c) + qexpr_bytes(v))
                    .sum::<usize>()
                + else_expr.as_deref().map(qexpr_bytes).unwrap_or(0)
        }
        QExpr::Func { name, args } => name.len() + args.iter().map(qexpr_bytes).sum::<usize>(),
        QExpr::Agg { arg, .. } => arg.as_deref().map(qexpr_bytes).unwrap_or(0),
        QExpr::Win {
            arg,
            partition_by,
            order_by,
            ..
        } => {
            arg.as_deref().map(qexpr_bytes).unwrap_or(0)
                + partition_by.iter().map(qexpr_bytes).sum::<usize>()
                + order_by
                    .iter()
                    .map(|o| size_of::<QOrder>() + qexpr_bytes(&o.expr))
                    .sum::<usize>()
        }
    }
}

fn visit_node<'a>(n: &'a PlanNode, f: &mut impl FnMut(PlanEntity<'a>)) {
    f(PlanEntity::Node(n));
    match n {
        PlanNode::OneRow | PlanNode::ScanBase { .. } => {}
        PlanNode::ScanView { plan, .. } => plan.visit_entities(f),
        PlanNode::Join { left, right, .. } => {
            visit_node(left, f);
            visit_node(right, f);
        }
    }
}

fn note_for(a: Option<String>) -> String {
    match a {
        Some(a) => format!(" {a}"),
        None => String::new(),
    }
}

fn explain_node(n: &PlanNode, out: &mut String, depth: usize, annotate: &mut Annotator<'_>) {
    use std::fmt::Write;
    let pad = "  ".repeat(depth);
    let note = note_for(annotate(PlanEntity::Node(n)));
    match n {
        PlanNode::OneRow => {
            writeln!(out, "{pad}ONE ROW{note}").unwrap();
        }
        PlanNode::ScanBase {
            table,
            refid,
            access,
            filter,
            rows,
            ..
        } => {
            writeln!(
                out,
                "{pad}SCAN t{} (r{}) {} (rows={rows:.0}){}{note}",
                table.0,
                refid.0,
                access.describe(),
                if filter.is_empty() {
                    String::new()
                } else {
                    format!(" filter x{}", filter.len())
                }
            )
            .unwrap();
        }
        PlanNode::ScanView {
            block,
            refid,
            correlated,
            plan,
            rows,
            ..
        } => {
            writeln!(
                out,
                "{pad}VIEW {block} (r{}){} (rows={rows:.0}){note}",
                refid.0,
                if *correlated { " LATERAL" } else { "" }
            )
            .unwrap();
            plan.explain_into(out, depth + 1, annotate);
        }
        PlanNode::Join {
            left,
            right,
            kind,
            method,
            lateral,
            rows,
            ..
        } => {
            writeln!(
                out,
                "{pad}{:?} {:?} JOIN{} (rows={rows:.0}){note}",
                method,
                kind,
                if *lateral { " LATERAL" } else { "" }
            )
            .unwrap();
            explain_node(left, out, depth + 1, annotate);
            explain_node(right, out, depth + 1, annotate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(r: u32, w: usize) -> PlanNode {
        PlanNode::ScanBase {
            table: TableId(0),
            refid: RefId(r),
            width: w,
            access: AccessPath::FullScan,
            filter: vec![],
            rows: 0.0,
        }
    }

    #[test]
    fn layout_from_left_deep_tree() {
        let j = PlanNode::Join {
            left: Box::new(PlanNode::Join {
                left: Box::new(scan(0, 3)),
                right: Box::new(scan(1, 2)),
                kind: PlanJoinKind::Inner,
                method: JoinMethod::Hash,
                equi: vec![],
                residual: vec![],
                lateral: false,
                rows: 0.0,
            }),
            right: Box::new(scan(2, 4)),
            kind: PlanJoinKind::Inner,
            method: JoinMethod::Hash,
            equi: vec![],
            residual: vec![],
            lateral: false,
            rows: 0.0,
        };
        let l = Layout::from_node(&j);
        assert_eq!(l.width, 9);
        assert_eq!(l.offset_of(RefId(0)), Some((0, 3)));
        assert_eq!(l.offset_of(RefId(1)), Some((3, 2)));
        assert_eq!(l.offset_of(RefId(2)), Some((5, 4)));
        assert_eq!(l.offset_of(RefId(9)), None);
    }

    #[test]
    fn semi_join_does_not_widen() {
        let j = PlanNode::Join {
            left: Box::new(scan(0, 3)),
            right: Box::new(scan(1, 2)),
            kind: PlanJoinKind::Semi,
            method: JoinMethod::Hash,
            equi: vec![],
            residual: vec![],
            lateral: false,
            rows: 0.0,
        };
        assert_eq!(j.width(), 3);
        let l = Layout::from_node(&j);
        assert_eq!(l.slots.len(), 1);
    }

    #[test]
    fn estimated_bytes_counts_the_tree() {
        let leaf = BlockPlan {
            block: BlockId(0),
            root: PlanRoot::Select(Box::new(SelectPlan {
                join: scan(0, 3),
                layout: Layout::default(),
                post_filter: vec![],
                aggs: vec![],
                group_by: vec![],
                grouping_sets: None,
                having: vec![],
                windows: vec![],
                select: vec![QExpr::Col {
                    table: RefId(0),
                    column: 1,
                }],
                distinct: false,
                distinct_keys: None,
                order_by: vec![],
                rownum_limit: None,
                subplans: vec![],
            })),
            cost: 1.0,
            rows: 1.0,
            out_ndv: vec![],
        };
        let small = leaf.estimated_bytes();
        assert!(small > 0);
        // a set-op over two copies is strictly bigger than one copy
        let bigger = BlockPlan {
            block: BlockId(1),
            root: PlanRoot::SetOp(SetOpPlan {
                op: SetOp::Union,
                inputs: vec![leaf.clone(), leaf],
            }),
            cost: 2.0,
            rows: 2.0,
            out_ndv: vec![],
        };
        assert!(bigger.estimated_bytes() > 2 * small);
    }

    fn block_over(join: PlanNode) -> BlockPlan {
        BlockPlan {
            block: BlockId(0),
            root: PlanRoot::Select(Box::new(SelectPlan {
                join,
                layout: Layout::default(),
                post_filter: vec![],
                aggs: vec![],
                group_by: vec![],
                grouping_sets: None,
                having: vec![],
                windows: vec![],
                select: vec![],
                distinct: false,
                distinct_keys: None,
                order_by: vec![],
                rownum_limit: None,
                subplans: vec![],
            })),
            cost: 1.0,
            rows: 1.0,
            out_ndv: vec![],
        }
    }

    #[test]
    fn plan_index_ids_are_stable_across_clones() {
        let plan = block_over(PlanNode::Join {
            left: Box::new(scan(0, 3)),
            right: Box::new(scan(1, 2)),
            kind: PlanJoinKind::Inner,
            method: JoinMethod::Hash,
            equi: vec![],
            residual: vec![],
            lateral: false,
            rows: 0.0,
        });
        let clone = plan.clone();
        let ix_a = PlanIndex::build(&plan);
        let ix_b = PlanIndex::build(&clone);
        // same structure: same fingerprint, same ordinal for each
        // element position — even though every address differs
        assert_eq!(ix_a.fingerprint(), ix_b.fingerprint());
        assert_eq!(ix_a.len(), ix_b.len());
        let mut ids_a = Vec::new();
        plan.visit_entities(&mut |e| ids_a.push(ix_a.id_of(e).unwrap()));
        let mut ids_b = Vec::new();
        clone.visit_entities(&mut |e| ids_b.push(ix_b.id_of(e).unwrap()));
        assert_eq!(ids_a, ids_b);
        assert_eq!(
            ids_a,
            (0..ids_a.len() as u32).map(PlanNodeId).collect::<Vec<_>>()
        );
        // an element of a different allocation does not resolve
        clone.visit_entities(&mut |e| assert!(ix_a.id_of(e).is_none()));
    }

    #[test]
    fn plan_index_fingerprint_distinguishes_structures() {
        let hash = block_over(PlanNode::Join {
            left: Box::new(scan(0, 3)),
            right: Box::new(scan(1, 2)),
            kind: PlanJoinKind::Inner,
            method: JoinMethod::Hash,
            equi: vec![],
            residual: vec![],
            lateral: false,
            rows: 0.0,
        });
        let nl = block_over(PlanNode::Join {
            left: Box::new(scan(0, 3)),
            right: Box::new(scan(1, 2)),
            kind: PlanJoinKind::Inner,
            method: JoinMethod::NestedLoop,
            equi: vec![],
            residual: vec![],
            lateral: false,
            rows: 0.0,
        });
        let single = block_over(scan(0, 3));
        assert_ne!(
            PlanIndex::build(&hash).fingerprint(),
            PlanIndex::build(&nl).fingerprint()
        );
        assert_ne!(
            PlanIndex::build(&hash).fingerprint(),
            PlanIndex::build(&single).fingerprint()
        );
    }

    #[test]
    fn outer_join_widens() {
        let j = PlanNode::Join {
            left: Box::new(scan(0, 3)),
            right: Box::new(scan(1, 2)),
            kind: PlanJoinKind::LeftOuter,
            method: JoinMethod::Hash,
            equi: vec![],
            residual: vec![],
            lateral: false,
            rows: 0.0,
        };
        assert_eq!(j.width(), 5);
    }
}
