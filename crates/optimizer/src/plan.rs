//! Physical plan structures produced by the optimizer and interpreted by
//! the execution engine.

use cbqt_catalog::{IndexId, TableId};
use cbqt_qgm::{BlockId, QExpr, QOrder, RefId, SetOp};

/// Cost-model constants. The execution engine counts *work units* with
/// the same weights, so estimated cost and measured work are in the same
/// currency; estimation error then comes from cardinality estimation —
/// exactly the error source the paper attributes degradations to (§4.2).
pub mod weights {
    /// Touching one row in a scan or join output.
    pub const ROW: f64 = 1.0;
    /// Evaluating one predicate conjunct on one row.
    pub const PRED: f64 = 0.2;
    /// Descending a B-tree index once.
    pub const INDEX_PROBE: f64 = 8.0;
    /// Fetching one row through an index entry.
    pub const INDEX_FETCH: f64 = 1.5;
    /// Inserting one row into a hash table.
    pub const HASH_BUILD: f64 = 1.5;
    /// Probing a hash table once.
    pub const HASH_PROBE: f64 = 1.2;
    /// Per-row sort weight; total sort cost is `SORT * n * log2(n)`.
    pub const SORT: f64 = 2.0;
    /// Per-row aggregation weight.
    pub const AGG: f64 = 2.0;
    /// Per-row projection/distinct hashing weight.
    pub const DEDUP: f64 = 1.2;
    /// Default per-call cost of the EXPENSIVE() stand-in UDF when the
    /// call site does not pass an explicit unit count.
    pub const EXPENSIVE_DEFAULT: f64 = 50.0;
}

/// How a base-table scan locates its rows.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    FullScan,
    /// Equality probe on an index; `key` expressions are evaluated
    /// against bindings available at probe time (literals, correlated
    /// outer columns, or left-side join columns).
    IndexEq {
        index: IndexId,
        key: Vec<QExpr>,
    },
    /// Single-column range scan on the index's leading column.
    IndexRange {
        index: IndexId,
        lo: Option<(QExpr, bool)>,
        hi: Option<(QExpr, bool)>,
    },
}

impl AccessPath {
    pub fn describe(&self) -> String {
        match self {
            AccessPath::FullScan => "FULL SCAN".to_string(),
            AccessPath::IndexEq { index, .. } => format!("INDEX EQ (ix{})", index.0),
            AccessPath::IndexRange { index, .. } => format!("INDEX RANGE (ix{})", index.0),
        }
    }
}

/// Physical join methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinMethod {
    /// Materialized block nested loop; the right side may be an indexed
    /// probe or a correlated (lateral) re-execution.
    NestedLoop,
    /// Build the right side into a hash table, probe with the left.
    Hash,
    /// Sort both sides on the equi-key and merge.
    Merge,
}

/// Join semantics at a join node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanJoinKind {
    Inner,
    /// Left rows with at least one match (stop-at-first-match).
    Semi,
    /// Left rows with no match; `null_aware` selects NOT IN semantics.
    Anti {
        null_aware: bool,
    },
    LeftOuter,
}

/// A node of the join tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Produces exactly one zero-width row (FROM-less SELECT).
    OneRow,
    ScanBase {
        table: TableId,
        refid: RefId,
        /// Output width including the virtual ROWID column.
        width: usize,
        access: AccessPath,
        /// Residual filter conjuncts evaluated per fetched row.
        filter: Vec<QExpr>,
        /// Estimated output rows (for EXPLAIN).
        rows: f64,
    },
    ScanView {
        block: BlockId,
        refid: RefId,
        width: usize,
        plan: Box<BlockPlan>,
        /// True when the view references columns bound outside it
        /// (correlated / JPPD lateral view): it is re-executed per outer
        /// row with result caching on the correlation values.
        correlated: bool,
        filter: Vec<QExpr>,
        /// Estimated output rows (for EXPLAIN).
        rows: f64,
    },
    Join {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        kind: PlanJoinKind,
        method: JoinMethod,
        /// Equi-join pairs `(left_expr, right_expr)`.
        equi: Vec<(QExpr, QExpr)>,
        /// Other join conjuncts evaluated on the concatenated row.
        residual: Vec<QExpr>,
        /// Right side is re-evaluated per left row (index NL probe or
        /// lateral view).
        lateral: bool,
        /// Estimated output rows (for EXPLAIN).
        rows: f64,
    },
}

impl PlanNode {
    pub fn width(&self) -> usize {
        match self {
            PlanNode::OneRow => 0,
            PlanNode::ScanBase { width, .. } | PlanNode::ScanView { width, .. } => *width,
            PlanNode::Join {
                left, right, kind, ..
            } => match kind {
                PlanJoinKind::Semi | PlanJoinKind::Anti { .. } => left.width(),
                _ => left.width() + right.width(),
            },
        }
    }

    /// Leaf refids in join order (left-deep: the order tables appear in
    /// the output row).
    pub fn leaf_refs(&self, out: &mut Vec<(RefId, usize)>) {
        match self {
            PlanNode::OneRow => {}
            PlanNode::ScanBase { refid, width, .. } | PlanNode::ScanView { refid, width, .. } => {
                out.push((*refid, *width));
            }
            PlanNode::Join {
                left, right, kind, ..
            } => {
                left.leaf_refs(out);
                if !matches!(kind, PlanJoinKind::Semi | PlanJoinKind::Anti { .. }) {
                    right.leaf_refs(out);
                }
            }
        }
    }
}

/// Maps table references to their slice of the concatenated executor row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Layout {
    /// `(refid, offset, width)`.
    pub slots: Vec<(RefId, usize, usize)>,
    pub width: usize,
}

impl Layout {
    pub fn from_node(node: &PlanNode) -> Layout {
        let mut leaves = Vec::new();
        node.leaf_refs(&mut leaves);
        let mut slots = Vec::new();
        let mut off = 0;
        for (r, w) in leaves {
            slots.push((r, off, w));
            off += w;
        }
        Layout { slots, width: off }
    }

    pub fn offset_of(&self, refid: RefId) -> Option<(usize, usize)> {
        self.slots
            .iter()
            .find(|(r, _, _)| *r == refid)
            .map(|(_, o, w)| (*o, *w))
    }
}

/// Plan for a SELECT block: join tree plus the post-join pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectPlan {
    pub join: PlanNode,
    pub layout: Layout,
    /// Conjuncts evaluated on the joined row (subquery filters — the
    /// tuple-iteration-semantics operator — and predicates on outer-join
    /// results).
    pub post_filter: Vec<QExpr>,
    /// Canonical list of aggregate expressions computed by this block;
    /// the executor appends their values after the wide row.
    pub aggs: Vec<QExpr>,
    pub group_by: Vec<QExpr>,
    pub grouping_sets: Option<Vec<Vec<usize>>>,
    pub having: Vec<QExpr>,
    /// Canonical list of window expressions, appended after aggregates.
    pub windows: Vec<QExpr>,
    pub select: Vec<QExpr>,
    pub distinct: bool,
    pub distinct_keys: Option<Vec<QExpr>>,
    pub order_by: Vec<QOrder>,
    pub rownum_limit: Option<u64>,
    /// Plans for non-unnested subqueries referenced by this block's
    /// expressions.
    pub subplans: Vec<(BlockId, BlockPlan)>,
}

/// Plan for a set-operation block.
#[derive(Debug, Clone, PartialEq)]
pub struct SetOpPlan {
    pub op: SetOp,
    pub inputs: Vec<BlockPlan>,
}

/// A fully-costed plan for one query block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPlan {
    pub block: BlockId,
    pub root: PlanRoot,
    /// Estimated cost of one execution of this block.
    pub cost: f64,
    /// Estimated output cardinality.
    pub rows: f64,
    /// Estimated number of distinct values per output column.
    pub out_ndv: Vec<f64>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum PlanRoot {
    Select(Box<SelectPlan>),
    SetOp(SetOpPlan),
}

/// A plan element handed to an EXPLAIN annotator: either one block root
/// or one node of a join tree. The borrowed reference is into the plan
/// being explained, so annotators can key side tables (e.g. runtime
/// metrics collected during execution of the *same* plan value) by the
/// element's address.
#[derive(Clone, Copy)]
pub enum PlanEntity<'a> {
    Block(&'a BlockPlan),
    Node(&'a PlanNode),
}

impl PlanEntity<'_> {
    /// Stable address key of the referenced element for the lifetime of
    /// the plan. Blocks and nodes are distinct allocations, so the two
    /// namespaces never collide.
    pub fn addr(&self) -> usize {
        match self {
            PlanEntity::Block(b) => *b as *const BlockPlan as usize,
            PlanEntity::Node(n) => *n as *const PlanNode as usize,
        }
    }
}

/// Callback appending per-element detail (e.g. actual row counts) to
/// EXPLAIN lines; return `None` for no annotation.
pub type Annotator<'a> = dyn FnMut(PlanEntity<'_>) -> Option<String> + 'a;

impl BlockPlan {
    pub fn as_select(&self) -> Option<&SelectPlan> {
        match &self.root {
            PlanRoot::Select(s) => Some(s),
            PlanRoot::SetOp(_) => None,
        }
    }

    /// Indented EXPLAIN text.
    pub fn explain(&self) -> String {
        self.explain_annotated(&mut |_| None)
    }

    /// Indented EXPLAIN text with a per-element annotation appended to
    /// each line — the single formatter behind both plain `EXPLAIN` and
    /// `EXPLAIN ANALYZE`.
    pub fn explain_annotated(&self, annotate: &mut Annotator<'_>) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0, annotate);
        s
    }

    fn explain_into(&self, out: &mut String, depth: usize, annotate: &mut Annotator<'_>) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        let note = note_for(annotate(PlanEntity::Block(self)));
        match &self.root {
            PlanRoot::Select(sp) => {
                writeln!(
                    out,
                    "{pad}SELECT {} (cost={:.0} rows={:.0}{}{}{}){note}",
                    self.block,
                    self.cost,
                    self.rows,
                    if sp.group_by.is_empty() && sp.aggs.is_empty() {
                        ""
                    } else {
                        " agg"
                    },
                    if sp.distinct || sp.distinct_keys.is_some() {
                        " distinct"
                    } else {
                        ""
                    },
                    match sp.rownum_limit {
                        Some(_) => " limit",
                        None => "",
                    },
                )
                .unwrap();
                explain_node(&sp.join, out, depth + 1, annotate);
                for (b, p) in &sp.subplans {
                    writeln!(out, "{pad}  SUBQUERY {b}:").unwrap();
                    p.explain_into(out, depth + 2, annotate);
                }
            }
            PlanRoot::SetOp(sp) => {
                writeln!(
                    out,
                    "{pad}{:?} (cost={:.0} rows={:.0}){note}",
                    sp.op, self.cost, self.rows
                )
                .unwrap();
                for i in &sp.inputs {
                    i.explain_into(out, depth + 1, annotate);
                }
            }
        }
    }
}

impl BlockPlan {
    /// Estimated deep size of this plan in bytes (stems plus heap
    /// allocations), the currency the plan cache's memory bound is
    /// expressed in. An estimate, not an exact measurement: shared
    /// `Arc<str>` literals are counted once per reference.
    pub fn estimated_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut n = size_of::<BlockPlan>() + self.out_ndv.capacity() * size_of::<f64>();
        match &self.root {
            PlanRoot::Select(sp) => {
                n += size_of::<SelectPlan>();
                n += node_bytes(&sp.join);
                n += sp.layout.slots.capacity() * size_of::<(RefId, usize, usize)>();
                for e in sp
                    .post_filter
                    .iter()
                    .chain(&sp.aggs)
                    .chain(&sp.group_by)
                    .chain(&sp.having)
                    .chain(&sp.windows)
                    .chain(&sp.select)
                    .chain(sp.distinct_keys.iter().flatten())
                {
                    n += qexpr_bytes(e);
                }
                if let Some(sets) = &sp.grouping_sets {
                    n += sets
                        .iter()
                        .map(|s| s.capacity() * size_of::<usize>())
                        .sum::<usize>();
                }
                for o in &sp.order_by {
                    n += size_of::<QOrder>() + qexpr_bytes(&o.expr);
                }
                for (_, p) in &sp.subplans {
                    n += p.estimated_bytes();
                }
            }
            PlanRoot::SetOp(sp) => {
                n += sp
                    .inputs
                    .iter()
                    .map(BlockPlan::estimated_bytes)
                    .sum::<usize>();
            }
        }
        n
    }
}

fn node_bytes(node: &PlanNode) -> usize {
    use std::mem::size_of;
    let stem = size_of::<PlanNode>();
    stem + match node {
        PlanNode::OneRow => 0,
        PlanNode::ScanBase { access, filter, .. } => {
            access_bytes(access) + filter.iter().map(qexpr_bytes).sum::<usize>()
        }
        PlanNode::ScanView { plan, filter, .. } => {
            plan.estimated_bytes() + filter.iter().map(qexpr_bytes).sum::<usize>()
        }
        PlanNode::Join {
            left,
            right,
            equi,
            residual,
            ..
        } => {
            node_bytes(left)
                + node_bytes(right)
                + equi
                    .iter()
                    .map(|(l, r)| qexpr_bytes(l) + qexpr_bytes(r))
                    .sum::<usize>()
                + residual.iter().map(qexpr_bytes).sum::<usize>()
        }
    }
}

fn access_bytes(access: &AccessPath) -> usize {
    match access {
        AccessPath::FullScan => 0,
        AccessPath::IndexEq { key, .. } => key.iter().map(qexpr_bytes).sum(),
        AccessPath::IndexRange { lo, hi, .. } => lo
            .iter()
            .chain(hi.iter())
            .map(|(e, _)| qexpr_bytes(e))
            .sum(),
    }
}

fn qexpr_bytes(e: &QExpr) -> usize {
    use cbqt_common::Value;
    use std::mem::size_of;
    let stem = size_of::<QExpr>();
    stem + match e {
        QExpr::Col { .. } | QExpr::Subq { .. } => 0,
        QExpr::Lit(v) => match v {
            Value::Str(s) => s.len(),
            _ => 0,
        },
        QExpr::Param { peek, .. } => match peek {
            Value::Str(s) => s.len(),
            _ => 0,
        },
        QExpr::Bin { left, right, .. } => qexpr_bytes(left) + qexpr_bytes(right),
        QExpr::Not(x) | QExpr::Neg(x) => qexpr_bytes(x),
        QExpr::IsNull { expr, .. } => qexpr_bytes(expr),
        QExpr::InList { expr, list, .. } => {
            qexpr_bytes(expr) + list.iter().map(qexpr_bytes).sum::<usize>()
        }
        QExpr::Like { expr, pattern, .. } => qexpr_bytes(expr) + qexpr_bytes(pattern),
        QExpr::Case {
            operand,
            branches,
            else_expr,
        } => {
            operand.as_deref().map(qexpr_bytes).unwrap_or(0)
                + branches
                    .iter()
                    .map(|(c, v)| qexpr_bytes(c) + qexpr_bytes(v))
                    .sum::<usize>()
                + else_expr.as_deref().map(qexpr_bytes).unwrap_or(0)
        }
        QExpr::Func { name, args } => name.len() + args.iter().map(qexpr_bytes).sum::<usize>(),
        QExpr::Agg { arg, .. } => arg.as_deref().map(qexpr_bytes).unwrap_or(0),
        QExpr::Win {
            arg,
            partition_by,
            order_by,
            ..
        } => {
            arg.as_deref().map(qexpr_bytes).unwrap_or(0)
                + partition_by.iter().map(qexpr_bytes).sum::<usize>()
                + order_by
                    .iter()
                    .map(|o| size_of::<QOrder>() + qexpr_bytes(&o.expr))
                    .sum::<usize>()
        }
    }
}

fn note_for(a: Option<String>) -> String {
    match a {
        Some(a) => format!(" {a}"),
        None => String::new(),
    }
}

fn explain_node(n: &PlanNode, out: &mut String, depth: usize, annotate: &mut Annotator<'_>) {
    use std::fmt::Write;
    let pad = "  ".repeat(depth);
    let note = note_for(annotate(PlanEntity::Node(n)));
    match n {
        PlanNode::OneRow => {
            writeln!(out, "{pad}ONE ROW{note}").unwrap();
        }
        PlanNode::ScanBase {
            table,
            refid,
            access,
            filter,
            rows,
            ..
        } => {
            writeln!(
                out,
                "{pad}SCAN t{} (r{}) {} (rows={rows:.0}){}{note}",
                table.0,
                refid.0,
                access.describe(),
                if filter.is_empty() {
                    String::new()
                } else {
                    format!(" filter x{}", filter.len())
                }
            )
            .unwrap();
        }
        PlanNode::ScanView {
            block,
            refid,
            correlated,
            plan,
            rows,
            ..
        } => {
            writeln!(
                out,
                "{pad}VIEW {block} (r{}){} (rows={rows:.0}){note}",
                refid.0,
                if *correlated { " LATERAL" } else { "" }
            )
            .unwrap();
            plan.explain_into(out, depth + 1, annotate);
        }
        PlanNode::Join {
            left,
            right,
            kind,
            method,
            lateral,
            rows,
            ..
        } => {
            writeln!(
                out,
                "{pad}{:?} {:?} JOIN{} (rows={rows:.0}){note}",
                method,
                kind,
                if *lateral { " LATERAL" } else { "" }
            )
            .unwrap();
            explain_node(left, out, depth + 1, annotate);
            explain_node(right, out, depth + 1, annotate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(r: u32, w: usize) -> PlanNode {
        PlanNode::ScanBase {
            table: TableId(0),
            refid: RefId(r),
            width: w,
            access: AccessPath::FullScan,
            filter: vec![],
            rows: 0.0,
        }
    }

    #[test]
    fn layout_from_left_deep_tree() {
        let j = PlanNode::Join {
            left: Box::new(PlanNode::Join {
                left: Box::new(scan(0, 3)),
                right: Box::new(scan(1, 2)),
                kind: PlanJoinKind::Inner,
                method: JoinMethod::Hash,
                equi: vec![],
                residual: vec![],
                lateral: false,
                rows: 0.0,
            }),
            right: Box::new(scan(2, 4)),
            kind: PlanJoinKind::Inner,
            method: JoinMethod::Hash,
            equi: vec![],
            residual: vec![],
            lateral: false,
            rows: 0.0,
        };
        let l = Layout::from_node(&j);
        assert_eq!(l.width, 9);
        assert_eq!(l.offset_of(RefId(0)), Some((0, 3)));
        assert_eq!(l.offset_of(RefId(1)), Some((3, 2)));
        assert_eq!(l.offset_of(RefId(2)), Some((5, 4)));
        assert_eq!(l.offset_of(RefId(9)), None);
    }

    #[test]
    fn semi_join_does_not_widen() {
        let j = PlanNode::Join {
            left: Box::new(scan(0, 3)),
            right: Box::new(scan(1, 2)),
            kind: PlanJoinKind::Semi,
            method: JoinMethod::Hash,
            equi: vec![],
            residual: vec![],
            lateral: false,
            rows: 0.0,
        };
        assert_eq!(j.width(), 3);
        let l = Layout::from_node(&j);
        assert_eq!(l.slots.len(), 1);
    }

    #[test]
    fn estimated_bytes_counts_the_tree() {
        let leaf = BlockPlan {
            block: BlockId(0),
            root: PlanRoot::Select(Box::new(SelectPlan {
                join: scan(0, 3),
                layout: Layout::default(),
                post_filter: vec![],
                aggs: vec![],
                group_by: vec![],
                grouping_sets: None,
                having: vec![],
                windows: vec![],
                select: vec![QExpr::Col {
                    table: RefId(0),
                    column: 1,
                }],
                distinct: false,
                distinct_keys: None,
                order_by: vec![],
                rownum_limit: None,
                subplans: vec![],
            })),
            cost: 1.0,
            rows: 1.0,
            out_ndv: vec![],
        };
        let small = leaf.estimated_bytes();
        assert!(small > 0);
        // a set-op over two copies is strictly bigger than one copy
        let bigger = BlockPlan {
            block: BlockId(1),
            root: PlanRoot::SetOp(SetOpPlan {
                op: SetOp::Union,
                inputs: vec![leaf.clone(), leaf],
            }),
            cost: 2.0,
            rows: 2.0,
            out_ndv: vec![],
        };
        assert!(bigger.estimated_bytes() > 2 * small);
    }

    #[test]
    fn outer_join_widens() {
        let j = PlanNode::Join {
            left: Box::new(scan(0, 3)),
            right: Box::new(scan(1, 2)),
            kind: PlanJoinKind::LeftOuter,
            method: JoinMethod::Hash,
            equi: vec![],
            residual: vec![],
            lateral: false,
            rows: 0.0,
        };
        assert_eq!(j.width(), 5);
    }
}
